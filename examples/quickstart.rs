//! Quickstart: run ShadowTutor end-to-end on a short synthetic video.
//!
//! The example pre-trains a tiny student ("public education"), generates a
//! people-scene video, runs the virtual-time runtime with the paper's
//! parameters, and prints the headline quantities the paper reports:
//! throughput, key-frame ratio, per-key-frame payload, and accuracy versus
//! the teacher — alongside the same stream served by the untrained student
//! and by naive offloading.
//!
//! Run with: `cargo run --release --example quickstart`

use shadowtutor::baseline::{run_naive, run_wild};
use shadowtutor::config::DistillationMode;
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use st_net::LinkModel;
use st_nn::student::StudentConfig;
use st_sim::LatencyProfile;
use st_teacher::OracleTeacher;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn main() {
    let frames = 240;
    println!("== ShadowTutor quickstart ==");
    println!("pre-training the student (public education)...");
    let (student, report) =
        pretrain_student(StudentConfig::tiny(), &PretrainConfig::quick()).expect("pre-training");
    println!(
        "  pre-trained for {} steps, final loss {:.3}, generic mIoU {:.1}%",
        report.steps,
        report.final_loss,
        report.final_miou * 100.0
    );

    let category = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::People,
    };
    let config = VideoConfig::for_category(category, 32, 24, 42);

    println!(
        "\nrunning ShadowTutor (partial distillation) on {frames} frames of {}...",
        category.label()
    );
    let runtime = SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Timing);
    let mut video = VideoGenerator::new(config).expect("video config");
    let record = runtime
        .run(
            &category.label(),
            &mut video,
            frames,
            student.clone(),
            OracleTeacher::perfect(1),
        )
        .expect("sim run");

    println!("\nrunning the wild (no distillation) and naive-offloading baselines...");
    let mut wild_video = VideoGenerator::new(config).expect("video config");
    let wild = run_wild(
        &category.label(),
        &mut wild_video,
        frames,
        &student,
        OracleTeacher::perfect(1),
        &LatencyProfile::paper(),
    )
    .expect("wild run");
    let mut naive_video = VideoGenerator::new(config).expect("video config");
    let naive = run_naive(
        &category.label(),
        &mut naive_video,
        frames,
        OracleTeacher::perfect(1),
        &LatencyProfile::paper(),
        &LinkModel::paper_default(),
    )
    .expect("naive run");

    println!("\n== results ({} frames, virtual time) ==", record.frames);
    println!(
        "{:<14} {:>8} {:>8} {:>10} {:>12} {:>12}",
        "variant", "FPS", "mIoU %", "key fr. %", "MB/keyframe", "total MB"
    );
    for r in [&record, &wild, &naive] {
        let (_, _, per_key) = r.per_key_frame_mb();
        println!(
            "{:<14} {:>8.2} {:>8.1} {:>10.2} {:>12.3} {:>12.3}",
            r.variant,
            r.fps(),
            r.mean_miou_percent(),
            r.key_frame_ratio_percent(),
            per_key,
            r.total_data_mb()
        );
    }
    println!(
        "\nShadowTutor used {} key frames ({} distillation steps), mean {:.2} steps/key frame.",
        record.key_frame_count(),
        record.total_distill_steps(),
        record.mean_distill_steps()
    );
    println!(
        "Data transferred per frame: {:.4} MB vs {:.4} MB for naive offloading ({:.1}% reduction).",
        record.data_per_frame_mb(),
        naive.data_per_frame_mb(),
        100.0 * (1.0 - record.data_per_frame_mb() / naive.data_per_frame_mb())
    );
}
