//! Real-time feasibility at 7 FPS (the paper's §6.5 experiment).
//!
//! Every video is resampled so that adjacent frames are four times further
//! apart in time, emulating a camera whose frame rate matches ShadowTutor's
//! throughput. Temporal coherence is weaker, so the student must be
//! re-distilled more often — the experiment measures how much accuracy is
//! lost and how much the key-frame ratio rises compared to the native-rate
//! stream.
//!
//! Run with: `cargo run --release --example realtime_7fps`

use shadowtutor::config::DistillationMode;
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use st_nn::student::StudentConfig;
use st_teacher::OracleTeacher;
use st_video::resample::Resampler;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn main() {
    let frames = 200;
    println!("== ShadowTutor at 7 FPS (real-time feasibility) ==");
    let (student, _) =
        pretrain_student(StudentConfig::tiny(), &PretrainConfig::quick()).expect("pre-training");

    let categories = [
        VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        },
        VideoCategory {
            camera: CameraMotion::Moving,
            scene: SceneKind::Animals,
        },
        VideoCategory {
            camera: CameraMotion::Moving,
            scene: SceneKind::Street,
        },
    ];

    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10}",
        "video", "mIoU native", "mIoU 7FPS", "KF% native", "KF% 7FPS"
    );
    for (i, category) in categories.iter().enumerate() {
        let config = VideoConfig::for_category(*category, 32, 24, 100 + i as u64);
        let runtime =
            SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));

        // Native-rate stream.
        let mut native_video = VideoGenerator::new(config).expect("video config");
        let native = runtime
            .run(
                &category.label(),
                &mut native_video,
                frames,
                student.clone(),
                OracleTeacher::perfect(3),
            )
            .expect("native run");

        // 7 FPS resampled stream (28 FPS source -> keep every 4th frame).
        let source = VideoGenerator::new(config).expect("video config");
        let mut resampled_video = Resampler::to_fps(source, config.fps, 7.0).expect("resampler");
        let resampled = runtime
            .run(
                &category.label(),
                &mut resampled_video,
                frames,
                student.clone(),
                OracleTeacher::perfect(3),
            )
            .expect("resampled run");

        println!(
            "{:<16} {:>12.1} {:>12.1} {:>10.2} {:>10.2}",
            category.label(),
            native.mean_miou_percent(),
            resampled.mean_miou_percent(),
            native.key_frame_ratio_percent(),
            resampled.key_frame_ratio_percent()
        );
    }
    println!("\nAs in the paper, stretching the temporal distance 4x costs only a modest");
    println!("accuracy drop and a small increase in key-frame ratio, so matching the input");
    println!("rate to the system's throughput (i.e. real-time camera inference) is feasible.");
}
