//! Two real OS processes over a shared-memory ring: the client in a child
//! process, the server pool in this one, every message a byte sequence
//! produced by the versioned wire codec.
//!
//! The in-process examples exchange messages over channels, so nothing
//! stops a payload from being a pointer. Here the only link is a
//! file-backed lock-free ring (`st_net::ShmTransport`), which forces every
//! key frame, weight update, and even the child's final run record through
//! `st_net::wire::encode_frame` — and lets us print *measured* traffic.
//!
//! The example re-executes itself for the child role: `current_exe()` with
//! a `client <segment> <record-out>` argument.
//!
//! Run with: `cargo run --release --example two_process_shm`
//! (x86_64 Linux; other targets print a note and exit.)

use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::report::ExperimentRecord;
use shadowtutor::runtime::shm_live::{host_stream_over_shm, run_shm_client};
use shadowtutor::serve::PoolConfig;
use st_net::ShmConfig;
use st_nn::student::{StudentConfig, StudentNet};
use st_teacher::OracleTeacher;
use st_video::{CameraMotion, Frame, SceneKind, VideoCategory, VideoConfig, VideoGenerator};
use std::path::{Path, PathBuf};
use std::time::Duration;

const FRAMES: usize = 48;
const SEED: u64 = 17;

/// Both processes derive the identical stream from this deterministic spec,
/// so no frame content needs a side channel beyond the pool's ordinary
/// connect-time pre-share.
fn stream() -> Vec<Frame> {
    let category = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::People,
    };
    let config = VideoConfig::for_category(category, 64, 48, SEED);
    VideoGenerator::new(config)
        .expect("video config")
        .take_frames(FRAMES)
}

fn client_role(segment: &Path, record_out: &Path) {
    let record = run_shm_client(
        ShadowTutorConfig::paper(),
        &stream(),
        StudentNet::new(StudentConfig::tiny()).expect("student init"),
        "fixed/people",
        segment,
        Duration::from_secs(20),
    )
    .expect("shm client session");
    // The run record leaves the process the same way every key frame did:
    // as one framed blob of the versioned wire codec.
    std::fs::write(record_out, st_net::wire::encode_frame(&record)).expect("write record");
}

fn main() {
    if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        println!("two_process_shm: shared-memory transport needs x86_64 Linux; skipping");
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("client") {
        let [_, segment, record_out] = &args[..] else {
            eprintln!("usage: two_process_shm client <segment> <record-out>");
            std::process::exit(2);
        };
        client_role(Path::new(segment), Path::new(record_out));
        return;
    }

    println!("== ShadowTutor over two OS processes (shared-memory ring) ==");
    let pid = std::process::id();
    let segment = st_net::shm::default_segment_path(&format!("example-{pid}"));
    let record_out: PathBuf = std::env::temp_dir().join(format!("st-example-record-{pid}.bin"));
    let exe = std::env::current_exe().expect("current_exe");
    let mut child = std::process::Command::new(exe)
        .arg("client")
        .arg(&segment)
        .arg(&record_out)
        .spawn()
        .expect("spawn client process");
    println!(
        "host pid {pid}, client pid {}, segment {}",
        child.id(),
        segment.display()
    );

    let host = host_stream_over_shm(
        ShadowTutorConfig::paper(),
        PoolConfig::with_shards(1),
        StudentNet::new(StudentConfig::tiny()).expect("student init"),
        0.013,
        |_| OracleTeacher::perfect(7),
        0,
        &stream(),
        &segment,
        ShmConfig::default(),
    )
    .expect("host side");
    let status = child.wait().expect("wait for client");
    assert!(status.success(), "client process failed: {status}");

    let record: ExperimentRecord =
        st_net::wire::decode_frame(&std::fs::read(&record_out).expect("read record"))
            .expect("decode record");
    let _ = std::fs::remove_file(&record_out);

    println!("\nclient processed {} frames", record.frames);
    println!(
        "key frames offloaded   : {} (pool served {})",
        record.key_frames.len(),
        host.pool.total_key_frames()
    );
    println!(
        "measured uplink bytes  : {} (client endpoint) + {} stream prefixes = {} on the ring",
        record.uplink_bytes,
        4 * host.messages_up,
        host.wire_bytes_up
    );
    println!(
        "measured downlink bytes: {} (client endpoint) + {} stream prefixes = {} on the ring",
        record.downlink_bytes,
        4 * host.messages_down,
        host.wire_bytes_down
    );
    let conserved = host.wire_bytes_up == record.uplink_bytes + 4 * host.messages_up
        && host.wire_bytes_down == record.downlink_bytes + 4 * host.messages_down;
    println!(
        "byte conservation across the process boundary: {}",
        if conserved { "exact" } else { "VIOLATED" }
    );
    assert!(conserved);
}
