//! Exploring the student design space: width, freeze point, and payload.
//!
//! The paper freezes the student through SB4 and trains 21.4% of its
//! parameters. This example sweeps the freeze point of a paper-scale student
//! and reports, for each choice, the trainable fraction and the bytes that
//! would cross the network per key frame — the trade-off §4.2 discusses —
//! and then compares two freeze points end-to-end on a short stream.
//!
//! Run with: `cargo run --release --example custom_student`

use shadowtutor::config::{DistillationMode, ShadowTutorConfig};
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use st_nn::snapshot::PayloadSizes;
use st_nn::student::{FreezePoint, Stage, StudentConfig, StudentNet};
use st_teacher::OracleTeacher;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn main() {
    println!("== Student freeze-point design space (paper-scale widths) ==");
    let mut paper_student = StudentNet::new(StudentConfig::paper()).expect("paper student");
    println!("total parameters: {}", paper_student.param_count());
    println!(
        "{:<22} {:>14} {:>16}",
        "train from stage", "trainable %", "update KB/keyfr."
    );
    for stage in [
        Stage::Sb3,
        Stage::Sb4,
        Stage::Sb5,
        Stage::Sb6,
        Stage::Out1,
        Stage::Out3,
    ] {
        paper_student.freeze = FreezePoint::TrainFrom(stage);
        let sizes = PayloadSizes::of(&mut paper_student);
        println!(
            "{:<22} {:>13.1}% {:>16.1}",
            format!("{stage:?}"),
            100.0 * sizes.trainable_fraction(),
            sizes.partial_bytes as f64 / 1e3
        );
    }
    paper_student.freeze = FreezePoint::None;
    let full = PayloadSizes::of(&mut paper_student);
    println!(
        "{:<22} {:>13.1}% {:>16.1}",
        "None (full distill)",
        100.0,
        full.full_bytes as f64 / 1e3
    );

    println!("\n== End-to-end comparison of two freeze points (tiny student) ==");
    let frames = 160;
    let (student, _) =
        pretrain_student(StudentConfig::tiny(), &PretrainConfig::quick()).expect("pre-training");
    let category = VideoCategory {
        camera: CameraMotion::Moving,
        scene: SceneKind::People,
    };
    let video_config = VideoConfig::for_category(category, 32, 24, 21);

    for (label, mode) in [
        ("partial (freeze through SB4)", DistillationMode::Partial),
        ("full distillation", DistillationMode::Full),
    ] {
        let config = match mode {
            DistillationMode::Partial => ShadowTutorConfig::paper(),
            DistillationMode::Full => ShadowTutorConfig::paper_full(),
        };
        let runtime = SimRuntime {
            config,
            ..SimRuntime::paper(mode)
        }
        .with_delay_model(DelayModel::Frames(1));
        let mut video = VideoGenerator::new(video_config).expect("video config");
        let record = runtime
            .run(
                &category.label(),
                &mut video,
                frames,
                student.clone(),
                OracleTeacher::perfect(8),
            )
            .expect("sim run");
        println!(
            "{:<30} mIoU {:>5.1}%  key frames {:>5.2}%  mean steps {:>4.2}  update {:>7.1} KB",
            label,
            record.mean_miou_percent(),
            record.key_frame_ratio_percent(),
            record.mean_distill_steps(),
            record.update_bytes as f64 / 1e3
        );
    }
    println!("\nPartial distillation ships a fraction of the weights per key frame and, with");
    println!("a limited step budget, matches or beats full distillation — the paper's §4.2 claim.");
}
