//! Robustness to network conditions (the paper's §6.4 / Figure 4 scenario).
//!
//! One street-CCTV-like video is processed once to collect its distillation
//! trace, and the trace's timing is then replayed at shrinking bandwidths
//! (90 down to 8 Mbps) at paper-scale payload sizes, for both a
//! fully-concurrent client (ShadowTutor's asynchronous inference) and a
//! client with no concurrency, next to the naive-offloading baseline. The
//! asynchronous client retains throughput until the link becomes the
//! bottleneck — the paper's robustness claim.
//!
//! Run with: `cargo run --release --example robustness_sweep`

use shadowtutor::config::DistillationMode;
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use st_net::{LinkModel, NaiveTraffic};
use st_nn::student::StudentConfig;
use st_sim::{Concurrency, LatencyProfile};
use st_teacher::OracleTeacher;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn main() {
    let frames = 240;
    let bandwidths = [90.0, 80.0, 60.0, 40.0, 20.0, 12.0, 8.0];

    println!("== ShadowTutor robustness sweep ==");
    let (student, _) =
        pretrain_student(StudentConfig::tiny(), &PretrainConfig::quick()).expect("pre-training");

    let category = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::Street,
    };
    let config = VideoConfig::for_category(category, 32, 24, 7);
    println!(
        "collecting the distillation trace on {frames} frames of {}...",
        category.label()
    );
    let runtime = SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Timing);
    let mut video = VideoGenerator::new(config).expect("video config");
    let record = runtime
        .run(
            &category.label(),
            &mut video,
            frames,
            student,
            OracleTeacher::perfect(2),
        )
        .expect("sim run");
    println!(
        "trace: {} key frames ({:.1}% of frames), {:.2} mean distillation steps",
        record.key_frame_count(),
        record.key_frame_ratio_percent(),
        record.mean_distill_steps()
    );

    // Replay the trace at paper-scale payload sizes per bandwidth.
    let paper = record.with_payload_sizes(2_637_000, 395_000);
    let latency = LatencyProfile::paper();
    println!(
        "\n{:>6} {:>16} {:>16} {:>12}",
        "Mbps", "async client FPS", "no-concurrency", "naive FPS"
    );
    for mbps in bandwidths {
        let link = LinkModel::symmetric_mbps(mbps);
        let async_fps = paper.replay_fps(&link, Concurrency::Full);
        let blocking_fps = paper.replay_fps(&link, Concurrency::None);
        let naive_traffic = NaiveTraffic::for_frame(1280, 720);
        let naive_fps = 1.0
            / (link.uplink_time(naive_traffic.to_server_bytes)
                + latency.teacher_inference
                + link.downlink_time(naive_traffic.to_client_bytes));
        println!("{mbps:>6.0} {async_fps:>16.2} {blocking_fps:>16.2} {naive_fps:>12.2}");
    }
    println!("\nThe asynchronous client hides the key-frame round trip behind MIN_STRIDE");
    println!("frames of on-device inference, so its throughput barely moves until the");
    println!("round trip exceeds that budget; naive offloading degrades immediately.");
}
