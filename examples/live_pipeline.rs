//! Live threaded pipeline: client and server as real OS threads.
//!
//! The virtual-time runtime used by the benches models asynchrony; this
//! example demonstrates the same protocol with *real* concurrency — the
//! server thread trains the student while the client thread keeps serving
//! frames, exchanging key frames and weight updates over in-process channels
//! (the reproduction's stand-in for the paper's OpenMPI ranks).
//!
//! Run with: `cargo run --release --example live_pipeline`

use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::live::run_live;
use st_nn::student::StudentConfig;
use st_teacher::OracleTeacher;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn main() {
    let frames = 120;
    println!("== ShadowTutor live pipeline (two real threads) ==");
    let (student, _) =
        pretrain_student(StudentConfig::tiny(), &PretrainConfig::quick()).expect("pre-training");

    let category = VideoCategory {
        camera: CameraMotion::Moving,
        scene: SceneKind::Animals,
    };
    let config = VideoConfig::for_category(category, 32, 24, 11);
    let mut generator = VideoGenerator::new(config).expect("video config");
    let stream = generator.take_frames(frames);

    println!(
        "processing {frames} frames of {} with a live client/server pair...",
        category.label()
    );
    let outcome = run_live(
        ShadowTutorConfig::paper(),
        stream,
        student,
        OracleTeacher::perfect(5),
        &category.label(),
    )
    .expect("live run");

    let record = &outcome.record;
    println!(
        "\nclient wall-clock time : {:.2} s ({:.1} frames/s of real compute)",
        record.total_time,
        record.fps()
    );
    println!(
        "mean IoU vs teacher    : {:.1}%",
        record.mean_miou_percent()
    );
    println!(
        "key frames sent        : {} ({:.1}% of frames)",
        record.key_frame_count(),
        record.key_frame_ratio_percent()
    );
    println!("server key frames      : {}", outcome.server_key_frames);
    println!("server distill steps   : {}", outcome.server_distill_steps);
    println!(
        "uplink / downlink bytes: {} / {}",
        record.uplink_bytes, record.downlink_bytes
    );
    println!("\nThe client never blocked on the server except when an update was still in");
    println!("flight MIN_STRIDE frames after its key frame — the paper's asynchronous");
    println!("inference in action, now with genuine thread-level concurrency.");
}
