//! Property-based and analytic-consistency integration tests.
//!
//! These tests check the invariants the paper's §4.4 analysis relies on —
//! measured values stay inside the closed-form bounds, the stride rule stays
//! clamped, snapshots round-trip — using proptest for the pure functions and
//! targeted runs for the end-to-end properties.

use proptest::prelude::*;
use shadowtutor::bounds::{throughput_bounds, traffic_bounds, BoundInputs};
use shadowtutor::config::{DistillationMode, ShadowTutorConfig};
use shadowtutor::next_stride;
use shadowtutor::runtime::sim::SimRuntime;
use st_net::LinkModel;
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::Concurrency;
use st_teacher::OracleTeacher;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Algorithm 2 output always stays within [MIN_STRIDE, MAX_STRIDE] and is
    /// monotone in the metric.
    #[test]
    fn stride_is_clamped_and_monotone(stride in 1usize..200, m1 in 0.0f64..1.0, m2 in 0.0f64..1.0) {
        let config = ShadowTutorConfig::paper();
        let s1 = next_stride(&config, stride, m1);
        let s2 = next_stride(&config, stride, m2);
        prop_assert!(s1 >= config.min_stride && s1 <= config.max_stride);
        prop_assert!(s2 >= config.min_stride && s2 <= config.max_stride);
        if m1 <= m2 {
            prop_assert!(s1 <= s2, "stride must be monotone in the metric");
        }
    }

    /// The closed-form lower bounds never exceed the upper bounds, for any
    /// reasonable latency/payload combination.
    #[test]
    fn analytic_bounds_are_ordered(
        t_si in 0.01f64..0.5,
        t_sd in 0.001f64..0.1,
        t_ti in 0.005f64..0.2,
        t_net in 0.01f64..3.0,
        s_net in 10_000usize..10_000_000,
    ) {
        let config = ShadowTutorConfig::paper();
        let inputs = BoundInputs { t_si, t_sd, t_ti, t_net, s_net };
        let tp = throughput_bounds(&config, &inputs);
        let tr = traffic_bounds(&config, &inputs);
        prop_assert!(tp.lower_fps <= tp.upper_fps + 1e-12);
        prop_assert!(tr.lower_bps <= tr.upper_bps + 1e-12);
        prop_assert!(tp.lower_fps > 0.0 && tr.lower_bps > 0.0);
    }

    /// Deficit-round-robin batching never hands the teacher more than
    /// `max_batch` key frames per forward, conserves every queued job, and
    /// drains without stalling — for any mix of stream backlogs, quantum,
    /// and window size.
    #[test]
    fn drr_batches_respect_the_cap_and_conserve_jobs(
        jobs_per_stream in prop::collection::vec(0usize..12, 1..8),
        max_batch in 1usize..9,
        quantum in 1usize..4,
    ) {
        use shadowtutor::serve::FairScheduler;
        use std::time::Instant;
        let mut scheduler = FairScheduler::new(quantum);
        let now = Instant::now();
        let total: usize = jobs_per_stream.iter().sum();
        for (stream, &jobs) in jobs_per_stream.iter().enumerate() {
            for frame in 0..jobs {
                scheduler.push(stream as u64, frame, now);
            }
        }
        prop_assert_eq!(scheduler.len(), total);
        let streams = jobs_per_stream.len();
        let mut drained = 0usize;
        let mut batches = 0usize;
        let mut first_served: Vec<Option<usize>> = vec![None; streams];
        while !scheduler.is_empty() {
            let batch = scheduler.next_batch(max_batch);
            prop_assert!(batch.len() <= max_batch, "batch exceeded max_batch");
            prop_assert!(!batch.is_empty(), "non-empty scheduler made no progress");
            for scheduled in &batch {
                let stream = scheduled.job.stream_id as usize;
                first_served[stream].get_or_insert(batches);
            }
            drained += batch.len();
            batches += 1;
            prop_assert!(batches <= total + 1, "drain did not terminate");
        }
        prop_assert_eq!(drained, total, "jobs lost or invented by the scheduler");
        prop_assert!(scheduler.is_empty());
        // No starvation: every stream with jobs is first served within a
        // bounded number of batches of the drain's start (each batch serves
        // the ring head and rotates spent turns to the back).
        let bound = streams * quantum;
        for (stream, &jobs) in jobs_per_stream.iter().enumerate() {
            if jobs > 0 {
                let first = first_served[stream];
                prop_assert!(first.is_some(), "stream {} never served", stream);
                prop_assert!(
                    first.unwrap() <= bound,
                    "stream {} first served only at batch {} (bound {})",
                    stream, first.unwrap(), bound
                );
            }
        }
    }

    /// Weight snapshots encode/decode losslessly for any freeze scope.
    #[test]
    fn snapshot_encoding_round_trips(seed in 0u64..1000, partial in any::<bool>()) {
        let mut net = StudentNet::new(StudentConfig { seed, ..StudentConfig::tiny() }).unwrap();
        net.freeze = if partial {
            DistillationMode::Partial.freeze_point()
        } else {
            DistillationMode::Full.freeze_point()
        };
        let scope = if partial { SnapshotScope::TrainableOnly } else { SnapshotScope::Full };
        let snap = WeightSnapshot::capture(&mut net, scope);
        let decoded = WeightSnapshot::decode(&snap.encode(), scope).unwrap();
        prop_assert_eq!(decoded.entry_count(), snap.entry_count());
        prop_assert_eq!(decoded.scalar_count(), snap.scalar_count());
    }

    /// The execution-time replay is monotone: more bandwidth never lowers
    /// throughput; a fully-concurrent client is never slower than a
    /// non-concurrent one.
    #[test]
    fn replay_is_monotone_in_bandwidth(mbps_lo in 2.0f64..40.0, extra in 1.0f64..60.0) {
        let record = synthetic_trace();
        let lo = record.replay_fps(&LinkModel::symmetric_mbps(mbps_lo), Concurrency::Full);
        let hi = record.replay_fps(&LinkModel::symmetric_mbps(mbps_lo + extra), Concurrency::Full);
        prop_assert!(hi + 1e-9 >= lo, "more bandwidth lowered throughput: {lo} -> {hi}");
        let none = record.replay_fps(&LinkModel::symmetric_mbps(mbps_lo), Concurrency::None);
        prop_assert!(lo + 1e-9 >= none);
    }
}

fn synthetic_trace() -> shadowtutor::ExperimentRecord {
    use shadowtutor::report::{FrameRecord, KeyFrameRecord};
    use st_sim::LatencyProfile;
    let frames = 2000usize;
    let key_every = 20usize;
    shadowtutor::ExperimentRecord {
        label: "synthetic".into(),
        variant: "partial".into(),
        frames,
        frame_records: (0..frames)
            .map(|i| FrameRecord {
                index: i,
                is_key_frame: i % key_every == 0,
                miou: 0.7,
                waited: false,
            })
            .collect(),
        key_frames: (0..frames / key_every)
            .map(|i| KeyFrameRecord {
                frame_index: i * key_every,
                steps: 4,
                initial_metric: 0.6,
                metric: 0.85,
                stride_after: key_every,
            })
            .collect(),
        frame_bytes: 2_637_000,
        update_bytes: 395_000,
        uplink_bytes: 0,
        downlink_bytes: 0,
        total_time: 0.0,
        config: ShadowTutorConfig::paper(),
        latency: LatencyProfile::paper(),
    }
}

#[test]
fn measured_traffic_and_throughput_respect_the_paper_bounds() {
    // Run a real (small) stream, replay it at paper scale, and check the
    // measured values stay inside the analytic bounds — the reproduction of
    // the paper's own §6.2/§6.4 validation.
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let cat = VideoCategory {
        camera: CameraMotion::Moving,
        scene: SceneKind::Street,
    };
    let mut video = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, 55)).unwrap();
    let runtime = SimRuntime::paper(DistillationMode::Partial);
    let record = runtime
        .run("street", &mut video, 96, student, OracleTeacher::perfect(5))
        .unwrap();

    let config = ShadowTutorConfig::paper();
    let link = LinkModel::paper_default();
    let frame_bytes = 2_637_000;
    let update_bytes = 395_000;
    let scaled = record.with_payload_sizes(frame_bytes, update_bytes);
    let t_net = link.key_frame_round_trip(frame_bytes, update_bytes);
    let inputs = BoundInputs::new(
        &st_sim::LatencyProfile::paper(),
        true,
        t_net,
        frame_bytes + update_bytes,
    );

    let fps = scaled.replay_fps(&link, Concurrency::Full);
    let tp_bounds = throughput_bounds(&config, &inputs);
    assert!(
        tp_bounds.contains_fps(fps),
        "throughput {fps:.2} outside [{:.2}, {:.2}]",
        tp_bounds.lower_fps,
        tp_bounds.upper_fps
    );

    let time = scaled.replay_total_time(&link, Concurrency::Full);
    let mbps = (scaled.uplink_bytes + scaled.downlink_bytes) as f64 * 8.0 / 1e6 / time;
    let tr_bounds = traffic_bounds(&config, &inputs);
    assert!(
        tr_bounds.contains_mbps(mbps),
        "traffic {mbps:.2} Mbps outside [{:.2}, {:.2}]",
        tr_bounds.lower_mbps(),
        tr_bounds.upper_mbps()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The batched CnnTeacher forward must label co-scheduled frames
    /// *bit-for-bit* identically to per-frame forwards — the server pool's
    /// amortization is only free if batching never changes an answer. The
    /// packed GEMM keeps per-element accumulation order independent of the
    /// batch width, so exact equality (not tolerance) is the contract.
    #[test]
    fn pseudo_label_batch_equals_per_frame_bit_for_bit(
        batch in 1usize..5, seed in 0u64..1000, scene_pick in 0usize..3
    ) {
        use st_teacher::{CnnTeacher, Teacher};
        let scene = [SceneKind::People, SceneKind::Animals, SceneKind::Street][scene_pick];
        let cat = VideoCategory { camera: CameraMotion::Fixed, scene };
        let mut gen = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap();
        let frames: Vec<_> = (0..batch).map(|_| gen.next_frame()).collect();
        let refs: Vec<&_> = frames.iter().collect();
        let mut teacher = CnnTeacher::untrained(1, seed.wrapping_add(13)).unwrap();
        let batched = teacher.pseudo_label_batch(&refs).unwrap();
        prop_assert_eq!(batched.len(), frames.len());
        for (frame, batched_labels) in frames.iter().zip(&batched) {
            let solo = teacher.pseudo_label(frame).unwrap();
            prop_assert_eq!(&solo, batched_labels, "frame {} diverged", frame.index);
        }
    }
}

#[test]
fn partial_distillation_ships_a_minority_of_the_parameters() {
    use st_nn::snapshot::PayloadSizes;
    let mut student = StudentNet::new(StudentConfig::paper()).unwrap();
    student.freeze = DistillationMode::Partial.freeze_point();
    let sizes = PayloadSizes::of(&mut student);
    // The paper trains 21.4% of the student; the reproduction's widths land
    // in the same minority range.
    assert!(
        sizes.trainable_fraction() > 0.10 && sizes.trainable_fraction() < 0.45,
        "trainable fraction {:.3}",
        sizes.trainable_fraction()
    );
    // And the partial payload is correspondingly smaller than the full one.
    assert!(sizes.partial_bytes * 2 < sizes.full_bytes);
}

// ---- Versioned wire format properties ----
//
// The codec's contract (see `st_net::wire`): encode/decode are exact
// inverses bit for bit, `encoded_len` is exact, and corrupted bytes always
// come back as a typed `WireError`, never a panic or a wrong value.

use bytes::Bytes;
use st_net::wire::{decode_frame, encode_frame, frame_len, FRAME_HEADER_BYTES, WIRE_VERSION};
use st_net::{ClientToServer, DropReason, Payload, ServerToClient, StreamTagged, WireError};

fn arb_payload() -> impl Strategy<Value = Payload> {
    // Alternate between size-only payloads (the virtual-time runtime's
    // shape) and content-carrying payloads with arbitrary bytes.
    (
        any::<bool>(),
        0usize..10_000_000,
        prop::collection::vec(0usize..256, 0..512),
    )
        .prop_map(|(sized, content_bytes, content)| {
            if sized {
                Payload::sized(content_bytes)
            } else {
                let bytes: Vec<u8> = content.into_iter().map(|b| b as u8).collect();
                Payload::with_data(Bytes::from(bytes))
            }
        })
}

fn arb_client_to_server() -> impl Strategy<Value = ClientToServer> {
    (0usize..4, any::<usize>(), arb_payload()).prop_map(|(variant, frame_index, payload)| {
        match variant {
            0 => ClientToServer::Register,
            1 => ClientToServer::Shutdown,
            2 => ClientToServer::KeyFrame {
                frame_index,
                payload,
            },
            _ => ClientToServer::ReShare {
                frame_index,
                payload,
            },
        }
    })
}

fn arb_server_to_client() -> impl Strategy<Value = ServerToClient> {
    (
        0usize..6,
        any::<usize>(),
        0.0f64..1.0,
        0usize..10_000,
        arb_payload(),
    )
        .prop_map(
            |(variant, frame_index, metric, distill_steps, payload)| match variant {
                0 => ServerToClient::InitialStudent { payload },
                1 => ServerToClient::StudentUpdate {
                    frame_index,
                    metric,
                    distill_steps,
                    payload,
                },
                2 => ServerToClient::Throttle { frame_index },
                3 => ServerToClient::NeedFrame { frame_index },
                4 => ServerToClient::Dropped {
                    frame_index,
                    reason: DropReason::UnknownStream,
                },
                _ => ServerToClient::Dropped {
                    frame_index,
                    reason: DropReason::UnknownFrame,
                },
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every client → server variant round-trips through the framed codec
    /// bit for bit, and `frame_len` predicts the framed size exactly.
    #[test]
    fn wire_round_trips_every_client_to_server_variant(message in arb_client_to_server()) {
        let encoded = encode_frame(&message);
        prop_assert_eq!(encoded.len(), frame_len(&message));
        let decoded: ClientToServer = decode_frame(&encoded).unwrap();
        prop_assert_eq!(&decoded, &message);
        prop_assert_eq!(encode_frame(&decoded), encoded, "re-encode diverged");
    }

    /// Every server → client variant round-trips through the framed codec
    /// bit for bit.
    #[test]
    fn wire_round_trips_every_server_to_client_variant(message in arb_server_to_client()) {
        let encoded = encode_frame(&message);
        prop_assert_eq!(encoded.len(), frame_len(&message));
        let decoded: ServerToClient = decode_frame(&encoded).unwrap();
        prop_assert_eq!(&decoded, &message);
        prop_assert_eq!(encode_frame(&decoded), encoded, "re-encode diverged");
    }

    /// The pool's multiplexing envelope preserves the stream id and the
    /// inner message through the codec.
    #[test]
    fn wire_round_trips_stream_tagged_messages(
        stream_id in any::<u64>(),
        message in arb_client_to_server(),
    ) {
        let tagged = StreamTagged::new(stream_id, message);
        let encoded = encode_frame(&tagged);
        prop_assert_eq!(encoded.len(), frame_len(&tagged));
        let decoded: StreamTagged<ClientToServer> = decode_frame(&encoded).unwrap();
        prop_assert_eq!(&decoded, &tagged);
    }

    /// Corrupting a valid frame in any of the classic ways yields the
    /// matching typed error — never a panic, never a silently wrong value.
    #[test]
    fn corrupted_frames_fail_with_typed_errors(
        message in arb_client_to_server(),
        cut in any::<usize>(),
        extra in 1usize..8,
    ) {
        let encoded = encode_frame(&message);

        // Truncation anywhere in the frame.
        let cut = cut % encoded.len();
        prop_assert!(matches!(
            decode_frame::<ClientToServer>(&encoded[..cut]).unwrap_err(),
            WireError::Truncated { .. }
        ));

        // A flipped magic byte.
        let mut bad = encoded.clone();
        bad[0] ^= 0xFF;
        prop_assert!(matches!(
            decode_frame::<ClientToServer>(&bad).unwrap_err(),
            WireError::BadMagic { .. }
        ));

        // A frame from a future protocol version.
        let mut bad = encoded.clone();
        bad[4] = WIRE_VERSION + 1;
        let err = decode_frame::<ClientToServer>(&bad).unwrap_err();
        prop_assert!(
            matches!(err, WireError::UnsupportedVersion { found } if found == WIRE_VERSION + 1)
        );

        // Bytes appended after the body.
        let mut bad = encoded.clone();
        bad.extend(std::iter::repeat_n(0u8, extra));
        prop_assert!(matches!(
            decode_frame::<ClientToServer>(&bad).unwrap_err(),
            WireError::TrailingBytes { .. }
        ));

        // An enum tag byte that names no variant (the tag is the first body
        // byte; 0xEE is far outside every variant range). The body length
        // stays consistent, so this must surface as UnknownVariant.
        let mut bad = encoded;
        bad[FRAME_HEADER_BYTES] = 0xEE;
        prop_assert!(matches!(
            decode_frame::<ClientToServer>(&bad).unwrap_err(),
            WireError::UnknownVariant { .. }
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A real weight snapshot survives the trip inside a `StudentUpdate`
    /// frame: the re-encoded frame is bit-identical and the decoded
    /// snapshot equals the captured one. Snapshot equality is `PartialEq`
    /// over f32 tensors, so a NaN anywhere would fail the assertion
    /// (NaN != NaN) — the decoded weights are provably NaN-free.
    #[test]
    fn student_update_weights_cross_the_wire_bit_identical_and_nan_free(
        seed in 0u64..1000,
        partial in any::<bool>(),
    ) {
        let mut net = StudentNet::new(StudentConfig { seed, ..StudentConfig::tiny() }).unwrap();
        net.freeze = if partial {
            DistillationMode::Partial.freeze_point()
        } else {
            DistillationMode::Full.freeze_point()
        };
        let scope = if partial { SnapshotScope::TrainableOnly } else { SnapshotScope::Full };
        let snapshot = WeightSnapshot::capture(&mut net, scope);
        let message = ServerToClient::StudentUpdate {
            frame_index: seed as usize,
            metric: 0.5,
            distill_steps: 3,
            payload: Payload::with_data(snapshot.encode()),
        };
        let encoded = encode_frame(&message);
        let decoded: ServerToClient = decode_frame(&encoded).unwrap();
        prop_assert_eq!(encode_frame(&decoded), encoded, "re-encode diverged");
        let ServerToClient::StudentUpdate { payload, .. } = decoded else {
            panic!("variant changed in flight");
        };
        let bytes = payload.data.expect("payload content");
        let decoded_snapshot = WeightSnapshot::decode(&bytes, scope).unwrap();
        // Decoding flattens tensor shapes (apply() restores them by name),
        // so compare the canonical encoding and the values, not the structs.
        prop_assert_eq!(decoded_snapshot.entry_count(), snapshot.entry_count());
        prop_assert_eq!(decoded_snapshot.scalar_count(), snapshot.scalar_count());
        prop_assert_eq!(decoded_snapshot.encode(), snapshot.encode());
        // distance() folds every weight pair; a NaN anywhere poisons it, so
        // an exact zero between two decodes of the same bytes proves the
        // decoded weights are NaN-free (NaN - NaN != 0).
        let again = WeightSnapshot::decode(&bytes, scope).unwrap();
        let distance = decoded_snapshot.distance(&again).unwrap();
        prop_assert!(distance == 0.0, "decoded weights contain NaN: distance {distance}");
    }
}

/// The run record (with its nested config, frame records, and latency
/// profile) round-trips through the same framed codec the messages use —
/// this is how the two-process runtime ships results between processes.
#[test]
fn experiment_record_round_trips_through_the_wire_codec() {
    let record = synthetic_trace();
    let encoded = encode_frame(&record);
    assert_eq!(encoded.len(), frame_len(&record));
    let decoded: shadowtutor::ExperimentRecord = decode_frame(&encoded).unwrap();
    assert_eq!(decoded, record);
    assert_eq!(encode_frame(&decoded), encoded);
}

// ---- Content-keyed weight store & delta-update properties ----
//
// The delta protocol's contract (see `st_nn::delta`): applying the delta of
// an update against the base the client holds reproduces the update bit for
// bit, digests stay in lockstep without ever crossing the wire, corrupted
// payloads come back as typed `WireError`s, and the weight store's chunk
// refcounts always equal the live references — including under the
// deliberately buggy `release_skipping` mutant, which the invariant check
// must catch.

use st_net::Wire;
use st_nn::delta::{CheckpointDigest, WeightDelta, WeightPayload};
use st_nn::store::{CheckpointRef, WeightStore};
use st_nn::student::StudentNet as DeltaNet;

fn partial_net(seed: u64) -> DeltaNet {
    let mut net = StudentNet::new(StudentConfig {
        seed,
        ..StudentConfig::tiny()
    })
    .unwrap();
    net.freeze = DistillationMode::Partial.freeze_point();
    net
}

fn train_step(net: &mut DeltaNet, seed: u64) {
    let x = st_tensor::random::uniform(st_tensor::Shape::nchw(1, 3, 16, 16), 0.0, 1.0, seed);
    let y = net.forward_train(&x).unwrap();
    net.backward(&y).unwrap();
    st_nn::optim::Adam::new(0.01).step(net);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any training trajectory, shipping every update as a sparse delta
    /// reproduces the server's weights on the client bit for bit, and the
    /// two digests stay synchronized without ever being exchanged. A final
    /// no-op update reduces to an empty delta (the converged-key-frame wire
    /// saving `table13_weight_dedup` measures).
    #[test]
    fn delta_stream_reproduces_the_server_bit_for_bit(seed in 0u64..500, rounds in 1usize..4) {
        let mut server = partial_net(seed);
        let mut client = partial_net(seed);
        let mut server_digest =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut server, SnapshotScope::Full));
        let mut client_digest =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut client, SnapshotScope::Full));
        let mut previous = None;
        for round in 0..rounds {
            train_step(&mut server, seed.wrapping_mul(31).wrapping_add(round as u64));
            let update = WeightSnapshot::capture(&mut server, SnapshotScope::TrainableOnly);
            let delta = WeightDelta::compute(&update, &server_digest);
            prop_assert!(delta.entry_count() <= update.entry_count());
            server_digest.patch(&update);

            let encoded = Wire::encode(&WeightPayload::Delta(delta));
            let WeightPayload::Delta(delta) =
                <WeightPayload as Wire>::decode(&mut &encoded[..]).unwrap()
            else {
                panic!("envelope variant changed in flight")
            };
            prop_assert!(delta.check_base(&client_digest, previous).is_ok());
            previous = Some(client_digest.combined());
            let (sparse, chunks) = delta.into_parts().unwrap();
            sparse.apply(&mut client).unwrap();
            client_digest.patch_chunks(&chunks);
            prop_assert_eq!(server_digest.combined(), client_digest.combined());
        }
        // An update with no training in between is an empty delta: envelope
        // bytes only, and applying it changes nothing.
        let update = WeightSnapshot::capture(&mut server, SnapshotScope::TrainableOnly);
        let delta = WeightDelta::compute(&update, &server_digest);
        prop_assert_eq!(delta.entry_count(), 0);
        prop_assert!(delta.check_base(&client_digest, previous).is_ok());
        let (sparse, _) = delta.into_parts().unwrap();
        sparse.apply(&mut client).unwrap();

        let server_state = WeightSnapshot::capture(&mut server, SnapshotScope::Full);
        let client_state = WeightSnapshot::capture(&mut client, SnapshotScope::Full);
        prop_assert_eq!(server_state.encode(), client_state.encode());
    }

    /// Corrupting a delta payload in each of the protocol's failure modes
    /// yields the matching typed `WireError` — truncation anywhere, an
    /// unknown envelope tag, an unknown scope tag, and base-checkpoint
    /// mismatches (stale vs unknown) — never a panic or a silent
    /// mis-apply.
    #[test]
    fn corrupted_delta_payloads_fail_with_typed_errors(seed in 0u64..500, cut in any::<usize>()) {
        let mut server = partial_net(seed);
        let base =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut server, SnapshotScope::Full));
        train_step(&mut server, seed.wrapping_add(7));
        let update = WeightSnapshot::capture(&mut server, SnapshotScope::TrainableOnly);
        let delta = WeightDelta::compute(&update, &base);
        prop_assert!(delta.entry_count() > 0, "training must change something");
        let encoded = Wire::encode(&WeightPayload::Delta(delta.clone()));

        // Truncation anywhere in the envelope fails as Truncated.
        let cut = cut % encoded.len();
        prop_assert!(matches!(
            <WeightPayload as Wire>::decode(&mut &encoded[..cut]).unwrap_err(),
            WireError::Truncated { .. }
        ));

        // An envelope tag naming no payload variant.
        let mut bad = encoded.clone();
        bad[0] = 9;
        prop_assert!(matches!(
            <WeightPayload as Wire>::decode(&mut &bad[..]).unwrap_err(),
            WireError::UnknownVariant { type_name: "WeightPayload", .. }
        ));

        // A scope byte naming no snapshot scope (envelope tag, u64 base,
        // then the scope byte).
        let mut bad = encoded;
        bad[1 + 8] = 7;
        prop_assert!(matches!(
            <WeightPayload as Wire>::decode(&mut &bad[..]).unwrap_err(),
            WireError::UnknownVariant { type_name: "SnapshotScope", .. }
        ));

        // A client that advanced past the delta's base classifies it as
        // stale when the base is its previous checkpoint, unknown otherwise.
        let mut advanced = base.clone();
        advanced.patch(&update);
        prop_assert!(advanced.combined() != base.combined());
        prop_assert!(matches!(
            delta.check_base(&advanced, Some(base.combined())).unwrap_err(),
            WireError::StaleBaseCheckpoint { base: b } if b == base.combined()
        ));
        prop_assert!(matches!(
            delta.check_base(&advanced, None).unwrap_err(),
            WireError::UnknownBaseCheckpoint { .. }
        ));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under any interleaving of session lifecycle events — intern (create
    /// a session / publish a replica), retain (replicate/adopt), release
    /// (drop), resolve_release (failover restore) — every chunk's stored
    /// refcount equals the number of live references, restores come back
    /// bit-identical to what was interned, and draining every reference
    /// frees every byte.
    #[test]
    fn weight_store_refcounts_match_live_refs_under_any_interleaving(
        seeds in prop::collection::vec(0u64..6, 1..3),
        ops in prop::collection::vec((0usize..4, any::<usize>()), 1..32),
    ) {
        let store = WeightStore::new();
        let snapshots: Vec<WeightSnapshot> = seeds
            .iter()
            .enumerate()
            .map(|(i, &seed)| {
                let mut net = partial_net(seed);
                let scope = if i % 2 == 0 { SnapshotScope::Full } else { SnapshotScope::TrainableOnly };
                WeightSnapshot::capture(&mut net, scope)
            })
            .collect();
        // Live references, each tagged with the snapshot it was interned
        // from so restores can be checked for aliasing corruption.
        let mut live: Vec<(usize, CheckpointRef)> = Vec::new();
        for (op, pick) in ops {
            match op {
                0 => {
                    let source = pick % snapshots.len();
                    let (r, _) = store.intern(&snapshots[source]);
                    live.push((source, r));
                }
                1 if !live.is_empty() => {
                    let (_, r) = live.remove(pick % live.len());
                    store.release(r);
                }
                2 if !live.is_empty() => {
                    let (source, r) = &live[pick % live.len()];
                    let copy = store.retain(r);
                    live.push((*source, copy));
                }
                3 if !live.is_empty() => {
                    let (source, r) = live.remove(pick % live.len());
                    let restored = store.resolve_release(r).unwrap();
                    prop_assert_eq!(
                        restored.encode(),
                        snapshots[source].encode(),
                        "restore corrupted by chunk aliasing"
                    );
                }
                _ => {}
            }
            let refs: Vec<&CheckpointRef> = live.iter().map(|(_, r)| r).collect();
            if let Err(violation) = store.verify_refcounts(&refs) {
                prop_assert!(false, "refcount invariant broken: {}", violation);
            }
        }
        for (_, r) in live.drain(..) {
            store.release(r);
        }
        prop_assert_eq!(store.chunk_count(), 0);
        prop_assert_eq!(store.resident_bytes(), 0);
    }

    /// The mutant: a release that "forgets" to decrement the last `skip`
    /// chunks must be caught by the refcount invariant — proof the check
    /// actually pins the accounting and would catch a real leak.
    #[test]
    fn skipped_decref_mutant_is_caught(seed in 0u64..100, skip in 1usize..6) {
        let store = WeightStore::new();
        let mut net = partial_net(seed);
        let snapshot = WeightSnapshot::capture(&mut net, SnapshotScope::Full);
        let (a, _) = store.intern(&snapshot);
        let (b, _) = store.intern(&snapshot);
        store.release_skipping(b, skip);
        prop_assert!(
            store.verify_refcounts(&[&a]).is_err(),
            "a skipped decref went unnoticed"
        );
    }
}
