//! Cross-crate integration tests: the full pipeline from video generation
//! through the teacher, the student, the runtimes, and the report layer.

use shadowtutor::baseline::{run_naive, run_wild};
use shadowtutor::config::{DistillationMode, ShadowTutorConfig};
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::live::run_live;
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use st_net::LinkModel;
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::LatencyProfile;
use st_teacher::OracleTeacher;
use st_video::dataset::{category_videos, Resolution};
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn people_video(seed: u64) -> VideoGenerator {
    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::People,
    };
    VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap()
}

#[test]
fn shadow_education_recovers_most_of_the_teacher_accuracy() {
    // The paper's central accuracy claim in miniature: a pre-trained student
    // that fails on its own gets close(r) to the teacher once it is
    // intermittently distilled on the target stream.
    let (student, _) = pretrain_student(
        StudentConfig::tiny(),
        &PretrainConfig {
            steps: 40,
            ..PretrainConfig::quick()
        },
    )
    .unwrap();

    let frames = 120;
    let runtime =
        SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
    let mut shadow_video = people_video(3);
    let shadow = runtime
        .run("people", &mut shadow_video, frames, student.clone(), OracleTeacher::perfect(9))
        .unwrap();

    let mut wild_video = people_video(3);
    let wild = run_wild(
        "people",
        &mut wild_video,
        frames,
        &student,
        OracleTeacher::perfect(9),
        &LatencyProfile::paper(),
    )
    .unwrap();

    // Compare over the second half of the stream, where the student has had
    // several shadow-education rounds; the wild student has no mechanism to
    // improve at all.
    let tail_mean = |records: &[shadowtutor::FrameRecord]| {
        let tail = &records[records.len() / 2..];
        100.0 * tail.iter().map(|f| f.miou).sum::<f64>() / tail.len() as f64
    };
    let shadow_tail = tail_mean(&shadow.frame_records);
    let wild_tail = tail_mean(&wild.frame_records);
    assert!(
        shadow_tail > wild_tail + 1.0,
        "distillation should beat the wild student on the stream tail: {shadow_tail:.1}% vs {wild_tail:.1}%"
    );
    assert!(
        shadow.mean_miou_percent() > wild.mean_miou_percent(),
        "distillation should beat the wild student overall: {:.1}% vs {:.1}%",
        shadow.mean_miou_percent(),
        wild.mean_miou_percent()
    );
}

#[test]
fn shadowtutor_transfers_far_less_data_than_naive_offloading() {
    let (student, _) = pretrain_student(
        StudentConfig::tiny(),
        &PretrainConfig {
            steps: 20,
            ..PretrainConfig::quick()
        },
    )
    .unwrap();
    let frames = 96;
    let runtime = SimRuntime::paper(DistillationMode::Partial);
    let mut shadow_video = people_video(5);
    let shadow = runtime
        .run("people", &mut shadow_video, frames, student, OracleTeacher::perfect(2))
        .unwrap();
    let mut naive_video = people_video(5);
    let naive = run_naive(
        "people",
        &mut naive_video,
        frames,
        OracleTeacher::perfect(2),
        &LatencyProfile::paper(),
        &LinkModel::paper_default(),
    )
    .unwrap();

    // The paper reports a ~95% average reduction in data per frame at 720p,
    // where the partial student update (0.395 MB) is smaller than a frame
    // (2.637 MB). Compare at those paper-scale payload sizes: the reduction
    // comes from ShadowTutor communicating only on sparse key frames.
    let shadow_paper = shadow.with_payload_sizes(2_637_000, 395_000);
    let naive_per_frame_mb = (3.0 * 1280.0 * 720.0 + 1280.0 * 720.0) / 1e6;
    let shadow_per_frame_mb = shadow_paper.total_data_mb() / shadow_paper.frames as f64;
    let reduction = 1.0 - shadow_per_frame_mb / naive_per_frame_mb;
    assert!(
        reduction > 0.5,
        "expected a large per-frame data reduction at paper scale, got {:.1}% ({shadow_per_frame_mb:.3} MB vs {naive_per_frame_mb:.3} MB)",
        100.0 * reduction
    );
    // And the key-frame ratio is far below 100% at any scale.
    assert!(shadow.key_frame_ratio_percent() < 20.0);
    let _ = naive;
}

#[test]
fn throughput_ordering_matches_the_paper_at_paper_scale_replay() {
    // Partial >= Full > Naive in FPS when replayed at paper payload sizes.
    let (student, _) = pretrain_student(
        StudentConfig::tiny(),
        &PretrainConfig {
            steps: 20,
            ..PretrainConfig::quick()
        },
    )
    .unwrap();
    let frames = 96;
    let link = LinkModel::paper_default();

    let run = |mode: DistillationMode, seed: u64| {
        let runtime = SimRuntime::paper(mode).with_delay_model(DelayModel::Frames(8));
        let mut video = people_video(seed);
        runtime
            .run("people", &mut video, frames, student.clone(), OracleTeacher::perfect(4))
            .unwrap()
    };
    let partial = run(DistillationMode::Partial, 6);
    let full = run(DistillationMode::Full, 6);

    let partial_fps = partial
        .with_payload_sizes(2_637_000, 395_000)
        .replay_fps(&link, st_sim::Concurrency::Full);
    let full_fps = full
        .with_payload_sizes(2_637_000, 1_846_000)
        .replay_fps(&link, st_sim::Concurrency::Full);
    // Naive at paper scale: ~0.36 s network + 0.044 s teacher per frame.
    let naive_fps = {
        let traffic = st_net::NaiveTraffic::for_frame(1280, 720);
        1.0 / (link.uplink_time(traffic.to_server_bytes)
            + LatencyProfile::paper().teacher_inference
            + link.downlink_time(traffic.to_client_bytes))
    };

    assert!(partial_fps > naive_fps * 2.0, "partial {partial_fps:.2} vs naive {naive_fps:.2}");
    assert!(full_fps > naive_fps, "full {full_fps:.2} vs naive {naive_fps:.2}");
    assert!(partial_fps >= full_fps * 0.95, "partial {partial_fps:.2} vs full {full_fps:.2}");
}

#[test]
fn live_and_sim_runtimes_agree_on_protocol_behaviour() {
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let frames = 40;
    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::Animals,
    };
    let config = VideoConfig::for_category(cat, 32, 24, 77);

    // Sim runtime.
    let runtime = SimRuntime::paper(DistillationMode::Partial);
    let mut sim_video = VideoGenerator::new(config).unwrap();
    let sim = runtime
        .run("animals", &mut sim_video, frames, student.clone(), OracleTeacher::perfect(7))
        .unwrap();

    // Live runtime over the same frames.
    let mut live_video = VideoGenerator::new(config).unwrap();
    let stream = live_video.take_frames(frames);
    let live = run_live(
        ShadowTutorConfig::paper(),
        stream,
        student,
        OracleTeacher::perfect(7),
        "animals",
    )
    .unwrap();

    // Both process every frame, both start with a key frame, and both send a
    // comparable number of key frames (the live run's timing-dependent update
    // arrival can shift the schedule slightly).
    assert_eq!(sim.frames, frames);
    assert_eq!(live.record.frames, frames);
    assert!(sim.frame_records[0].is_key_frame);
    assert!(live.record.frame_records[0].is_key_frame);
    let diff = (sim.key_frame_count() as i64 - live.record.key_frame_count() as i64).abs();
    assert!(diff <= 3, "sim {} vs live {} key frames", sim.key_frame_count(), live.record.key_frame_count());
    assert_eq!(live.server_key_frames, live.record.key_frame_count());
}

#[test]
fn all_seven_categories_run_and_report_valid_metrics() {
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let runtime =
        SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
    for descriptor in category_videos(Resolution::Tiny, 123) {
        let mut video = VideoGenerator::new(descriptor.config).unwrap();
        let record = runtime
            .run(&descriptor.name, &mut video, 24, student.clone(), OracleTeacher::perfect(11))
            .unwrap();
        assert_eq!(record.frames, 24, "{}", descriptor.name);
        assert!(record.key_frame_count() >= 1);
        assert!(record.mean_miou_percent() >= 0.0 && record.mean_miou_percent() <= 100.0);
        assert!(record.fps() > 0.0);
        assert!(record.total_data_mb() > 0.0);
    }
}
