//! Cross-crate integration tests: the full pipeline from video generation
//! through the teacher, the student, the runtimes (including the
//! multi-stream server pool), and the report layer.

use shadowtutor::baseline::{run_naive, run_wild};
use shadowtutor::config::{DistillationMode, PlacementPolicy, ShadowTutorConfig};
use shadowtutor::loadgen::{run_skewed_load, PacedTeacher, SkewedLoadSpec};
use shadowtutor::runtime::live::{run_live, run_live_multi, StreamSpec};
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use shadowtutor::serve::{FrameStore, PoolConfig, ServerPool, StreamClient};
use shadowtutor_repro::testsupport::pretrained_student;
use st_net::transport::ClientEndpoint;
use st_net::LinkModel;
use st_net::{ClientToServer, DropReason, Payload, ServerToClient};
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::{Concurrency, ContentionModel, LatencyProfile};
use st_teacher::OracleTeacher;
use st_video::dataset::{category_videos, tiny_stream as frames_for, Resolution};
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};
use std::time::{Duration, Instant};

fn people_video(seed: u64) -> VideoGenerator {
    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::People,
    };
    VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap()
}

#[test]
fn shadow_education_recovers_most_of_the_teacher_accuracy() {
    // The paper's central accuracy claim in miniature: a pre-trained student
    // that fails on its own gets close(r) to the teacher once it is
    // intermittently distilled on the target stream.
    let (student, _) = pretrained_student();

    let frames = 120;
    let runtime =
        SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
    let mut shadow_video = people_video(3);
    let shadow = runtime
        .run(
            "people",
            &mut shadow_video,
            frames,
            student.clone(),
            OracleTeacher::perfect(9),
        )
        .unwrap();

    let mut wild_video = people_video(3);
    let wild = run_wild(
        "people",
        &mut wild_video,
        frames,
        &student,
        OracleTeacher::perfect(9),
        &LatencyProfile::paper(),
    )
    .unwrap();

    // Compare over the second half of the stream, where the student has had
    // several shadow-education rounds; the wild student has no mechanism to
    // improve at all.
    let tail_mean = |records: &[shadowtutor::FrameRecord]| {
        let tail = &records[records.len() / 2..];
        100.0 * tail.iter().map(|f| f.miou).sum::<f64>() / tail.len() as f64
    };
    let shadow_tail = tail_mean(&shadow.frame_records);
    let wild_tail = tail_mean(&wild.frame_records);
    assert!(
        shadow_tail > wild_tail + 1.0,
        "distillation should beat the wild student on the stream tail: {shadow_tail:.1}% vs {wild_tail:.1}%"
    );
    assert!(
        shadow.mean_miou_percent() > wild.mean_miou_percent(),
        "distillation should beat the wild student overall: {:.1}% vs {:.1}%",
        shadow.mean_miou_percent(),
        wild.mean_miou_percent()
    );
}

#[test]
fn shadowtutor_transfers_far_less_data_than_naive_offloading() {
    let (student, _) = pretrained_student();
    let frames = 96;
    let runtime = SimRuntime::paper(DistillationMode::Partial);
    let mut shadow_video = people_video(5);
    let shadow = runtime
        .run(
            "people",
            &mut shadow_video,
            frames,
            student,
            OracleTeacher::perfect(2),
        )
        .unwrap();
    let mut naive_video = people_video(5);
    let naive = run_naive(
        "people",
        &mut naive_video,
        frames,
        OracleTeacher::perfect(2),
        &LatencyProfile::paper(),
        &LinkModel::paper_default(),
    )
    .unwrap();

    // The paper reports a ~95% average reduction in data per frame at 720p,
    // where the partial student update (0.395 MB) is smaller than a frame
    // (2.637 MB). Compare at those paper-scale payload sizes: the reduction
    // comes from ShadowTutor communicating only on sparse key frames.
    let shadow_paper = shadow.with_payload_sizes(2_637_000, 395_000);
    let naive_per_frame_mb = (3.0 * 1280.0 * 720.0 + 1280.0 * 720.0) / 1e6;
    let shadow_per_frame_mb = shadow_paper.total_data_mb() / shadow_paper.frames as f64;
    let reduction = 1.0 - shadow_per_frame_mb / naive_per_frame_mb;
    assert!(
        reduction > 0.5,
        "expected a large per-frame data reduction at paper scale, got {:.1}% ({shadow_per_frame_mb:.3} MB vs {naive_per_frame_mb:.3} MB)",
        100.0 * reduction
    );
    // And the key-frame ratio is far below 100% at any scale.
    assert!(shadow.key_frame_ratio_percent() < 20.0);
    let _ = naive;
}

#[test]
fn throughput_ordering_matches_the_paper_at_paper_scale_replay() {
    // Partial >= Full > Naive in FPS when replayed at paper payload sizes.
    let (student, _) = pretrained_student();
    let frames = 96;
    let link = LinkModel::paper_default();

    let run = |mode: DistillationMode, seed: u64| {
        let runtime = SimRuntime::paper(mode).with_delay_model(DelayModel::Frames(8));
        let mut video = people_video(seed);
        runtime
            .run(
                "people",
                &mut video,
                frames,
                student.clone(),
                OracleTeacher::perfect(4),
            )
            .unwrap()
    };
    let partial = run(DistillationMode::Partial, 6);
    let full = run(DistillationMode::Full, 6);

    let partial_fps = partial
        .with_payload_sizes(2_637_000, 395_000)
        .replay_fps(&link, st_sim::Concurrency::Full);
    let full_fps = full
        .with_payload_sizes(2_637_000, 1_846_000)
        .replay_fps(&link, st_sim::Concurrency::Full);
    // Naive at paper scale: ~0.36 s network + 0.044 s teacher per frame.
    let naive_fps = {
        let traffic = st_net::NaiveTraffic::for_frame(1280, 720);
        1.0 / (link.uplink_time(traffic.to_server_bytes)
            + LatencyProfile::paper().teacher_inference
            + link.downlink_time(traffic.to_client_bytes))
    };

    assert!(
        partial_fps > naive_fps * 2.0,
        "partial {partial_fps:.2} vs naive {naive_fps:.2}"
    );
    assert!(
        full_fps > naive_fps,
        "full {full_fps:.2} vs naive {naive_fps:.2}"
    );
    assert!(
        partial_fps >= full_fps * 0.95,
        "partial {partial_fps:.2} vs full {full_fps:.2}"
    );
}

#[test]
fn live_and_sim_runtimes_agree_on_protocol_behaviour() {
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let frames = 40;
    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::Animals,
    };
    let config = VideoConfig::for_category(cat, 32, 24, 77);

    // Sim runtime.
    let runtime = SimRuntime::paper(DistillationMode::Partial);
    let mut sim_video = VideoGenerator::new(config).unwrap();
    let sim = runtime
        .run(
            "animals",
            &mut sim_video,
            frames,
            student.clone(),
            OracleTeacher::perfect(7),
        )
        .unwrap();

    // Live runtime over the same frames.
    let mut live_video = VideoGenerator::new(config).unwrap();
    let stream = live_video.take_frames(frames);
    let live = run_live(
        ShadowTutorConfig::paper(),
        stream,
        student,
        OracleTeacher::perfect(7),
        "animals",
    )
    .unwrap();

    // Both process every frame, both start with a key frame, and both send a
    // comparable number of key frames (the live run's timing-dependent update
    // arrival can shift the schedule slightly).
    assert_eq!(sim.frames, frames);
    assert_eq!(live.record.frames, frames);
    assert!(sim.frame_records[0].is_key_frame);
    assert!(live.record.frame_records[0].is_key_frame);
    let diff = (sim.key_frame_count() as i64 - live.record.key_frame_count() as i64).abs();
    assert!(
        diff <= 3,
        "sim {} vs live {} key frames",
        sim.key_frame_count(),
        live.record.key_frame_count()
    );
    assert_eq!(live.server_key_frames, live.record.key_frame_count());
}

fn multi_specs(frames_per_stream: usize) -> Vec<StreamSpec> {
    // Four concurrent streams with deliberately different scene content, so
    // any cross-stream weight bleed would be visible in the checkpoints.
    vec![
        StreamSpec {
            stream_id: 0,
            label: "people-a".into(),
            frames: frames_for(SceneKind::People, 51, frames_per_stream),
        },
        StreamSpec {
            stream_id: 1,
            label: "animals".into(),
            frames: frames_for(SceneKind::Animals, 52, frames_per_stream),
        },
        StreamSpec {
            stream_id: 2,
            label: "street".into(),
            frames: frames_for(SceneKind::Street, 53, frames_per_stream),
        },
        StreamSpec {
            stream_id: 3,
            label: "people-b".into(),
            frames: frames_for(SceneKind::People, 54, frames_per_stream),
        },
    ]
}

#[test]
fn multi_stream_pool_isolates_streams_and_matches_single_stream_runs() {
    let (student, _) = pretrained_student();
    let config = ShadowTutorConfig::paper();
    let specs = multi_specs(32);

    // Four concurrent clients against a two-shard pool: two streams per
    // shard, so teacher batching and per-shard multiplexing are exercised.
    let multi = run_live_multi(
        config,
        specs.clone(),
        student.clone(),
        PoolConfig::with_shards(2),
        |shard| OracleTeacher::perfect(700 + shard as u64),
    )
    .unwrap();
    assert_eq!(multi.streams.len(), 4);
    for (outcome, spec) in multi.streams.iter().zip(&specs) {
        assert_eq!(outcome.record.frames, spec.frames.len(), "{}", spec.label);
        assert!(outcome.server_key_frames >= 1, "{}", spec.label);
    }

    // Per-stream isolation: serve each stream alone (same pool machinery,
    // one stream, one shard) as its baseline. Exact checkpoint equality
    // cannot be asserted on a wall-clock runtime — whether an update lands
    // one frame earlier or later can shift the key-frame schedule — so the
    // bleed check is relative: a stream's pooled checkpoint must stay far
    // closer to its own solo baseline than to any *other* scene's baseline,
    // and accuracy/key-frame counts must agree within a small tolerance.
    // (Exact, deterministic isolation is asserted at the `ServeShard` layer
    // in `shadowtutor::serve`'s unit tests.)
    let solos: Vec<_> = specs
        .iter()
        .map(|spec| {
            run_live_multi(
                config,
                vec![spec.clone()],
                student.clone(),
                PoolConfig::with_shards(1),
                |_| OracleTeacher::perfect(900),
            )
            .unwrap()
        })
        .collect();
    let scene_of = |label: &str| label.split('-').next().unwrap().to_string();
    for (outcome, spec) in multi.streams.iter().zip(&specs) {
        let solo = &solos[spec.stream_id as usize];
        let solo_outcome = &solo.streams[0];
        let multi_ckpt = &multi.pool.final_checkpoints[&spec.stream_id];
        let own_distance = multi_ckpt
            .distance(&solo.pool.final_checkpoints[&spec.stream_id])
            .unwrap();
        for (other, other_solo) in specs.iter().zip(&solos) {
            if scene_of(&other.label) == scene_of(&spec.label) {
                continue;
            }
            let cross_distance = multi_ckpt
                .distance(&other_solo.pool.final_checkpoints[&other.stream_id])
                .unwrap();
            assert!(
                own_distance < cross_distance,
                "{}: pooled checkpoint is closer to {}'s baseline ({own_distance} vs {cross_distance}) — cross-stream weight bleed",
                spec.label,
                other.label
            );
        }
        let miou_multi = outcome.record.mean_miou_percent();
        let miou_solo = solo_outcome.record.mean_miou_percent();
        assert!(
            (miou_multi - miou_solo).abs() < 5.0,
            "{}: pooled {miou_multi:.1}% vs solo {miou_solo:.1}%",
            spec.label
        );
        let key_diff =
            (outcome.server_key_frames as i64 - solo_outcome.server_key_frames as i64).abs();
        assert!(
            key_diff <= 2,
            "{}: pooled {} vs solo {} server key frames",
            spec.label,
            outcome.server_key_frames,
            solo_outcome.server_key_frames
        );
    }

    // And the pool topology agrees with the paper's one-client topology: the
    // same stream through the classic thread-per-role runtime lands on the
    // same accuracy.
    let classic = run_live(
        config,
        specs[0].frames.clone(),
        student.clone(),
        OracleTeacher::perfect(1000),
        "classic-baseline",
    )
    .unwrap();
    let miou_classic = classic.record.mean_miou_percent();
    let miou_pooled = multi.streams[0].record.mean_miou_percent();
    assert!(
        (miou_pooled - miou_classic).abs() < 5.0,
        "pooled {miou_pooled:.1}% vs classic {miou_classic:.1}%"
    );

    // Teacher batching across co-scheduled streams actually happened and
    // saved virtual teacher time.
    assert!(multi.pool.mean_batch_size() >= 1.0);
    assert!(multi.pool.teacher_time_saved() >= 0.0);
}

#[test]
fn live_server_contention_is_sane_against_the_sim_concurrency_model() {
    let (student, _) = pretrained_student();
    let config = ShadowTutorConfig::paper();

    // The same four streams against one worker (maximum contention) and
    // four workers (no sharing).
    let run = |shards: usize| {
        run_live_multi(
            config,
            multi_specs(24),
            student.clone(),
            PoolConfig::with_shards(shards),
            |shard| OracleTeacher::perfect(800 + shard as u64),
        )
        .unwrap()
    };
    let contended = run(1);
    let spread = run(4);
    for outcome in contended.streams.iter().chain(spread.streams.iter()) {
        assert_eq!(outcome.record.frames, 24);
    }
    assert!(contended.aggregate_fps() > 0.0);
    assert!(spread.aggregate_fps() > 0.0);

    // st-sim's contention model, fed with what the live run measured (mean
    // distillation steps, mean co-scheduled batch), predicts longer queueing
    // on one worker than on four...
    let profile = LatencyProfile::paper();
    let key_frames = contended.pool.total_key_frames().max(1);
    let mean_steps = contended.pool.total_distill_steps() as f64 / key_frames as f64;
    let mean_batch = contended.pool.mean_batch_size().max(1.0);
    let inter_arrival = config.min_stride as f64 * profile.student_inference;
    let m1 = ContentionModel::with_workers(1);
    let m4 = ContentionModel::with_workers(4);
    let service = m1.service_time(&profile, true, mean_steps, mean_batch);
    let predicted_contended = m1.queueing_delay(4, service, inter_arrival);
    let predicted_spread = m4.queueing_delay(4, service, inter_arrival);
    assert!(
        predicted_contended >= predicted_spread,
        "model: {predicted_contended} vs {predicted_spread}"
    );

    // ...and the live pool's measured wall-clock waits point the same way
    // (a small epsilon absorbs scheduler noise when both are ~zero).
    let measured_contended = contended.mean_queue_wait_secs();
    let measured_spread = spread.mean_queue_wait_secs();
    assert!(
        measured_contended + 1e-4 >= measured_spread,
        "measured: {measured_contended}s vs {measured_spread}s"
    );

    // Plugging the contended round trip into the §4.4 concurrency bounds
    // keeps their ordering: no overlap is never faster than full overlap.
    let t_net = 0.05;
    let t_c_none = m1.t_c(
        Concurrency::None,
        &profile,
        true,
        config.min_stride,
        mean_steps,
        mean_batch,
        4,
        inter_arrival,
        t_net,
    );
    let t_c_full = m1.t_c(
        Concurrency::Full,
        &profile,
        true,
        config.min_stride,
        mean_steps,
        mean_batch,
        4,
        inter_arrival,
        t_net,
    );
    assert!(t_c_none >= t_c_full);
}

#[test]
fn hot_stream_cannot_starve_cold_streams() {
    // A 4-stream, one-shard pool where stream 0 sends 8x the key-frame rate
    // of the others. Deficit-round-robin batching plus the per-stream
    // in-flight cap must keep the well-behaved streams fully serviced and
    // their waits bounded, pushing the cost of the burstiness onto the hot
    // stream itself.
    let (student, _) = pretrained_student();
    let run = |streams: usize, hot_multiplier: usize| {
        run_skewed_load(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 1,
                recv_timeout: Duration::from_millis(200),
                ..PoolConfig::default_pool()
            },
            student.clone(),
            0.013,
            |shard| {
                // The 16 ms wall-clock pause per teacher forward makes the
                // throttle assertion machine-independent: even with free
                // distillation, a full batch (4 jobs) takes at least
                // 16 * 1.6 = 25.6 ms, so the shard drains at most one hot
                // job per 6.4 ms while the 8x hot stream sends one every
                // 5 ms — its in-flight cap must fill within the run.
                PacedTeacher::new(
                    OracleTeacher::perfect(500 + shard as u64),
                    Duration::from_millis(16),
                )
            },
            SkewedLoadSpec {
                streams,
                hot_multiplier,
                key_frames_per_stream: 5,
                send_interval: Duration::from_millis(40),
                seed: 7000 + hot_multiplier as u64,
            },
        )
        .unwrap()
    };

    // Solo baseline: one well-behaved stream with the pool to itself. Every
    // cold stream is statistically identical to it.
    let solo = run(1, 1);
    let solo_wait = solo.pool.streams[&0].mean_queue_wait_secs();

    let skewed = run(4, 8);
    // Every cold stream was fully serviced: each of its key frames got a
    // StudentUpdate — none starved, none throttled, none dropped.
    for cold in skewed.cold() {
        assert_eq!(
            cold.updates, cold.sent,
            "cold stream {} starved: {} of {} key frames serviced",
            cold.stream_id, cold.updates, cold.sent
        );
        assert_eq!(
            cold.throttled, 0,
            "cold stream {} throttled",
            cold.stream_id
        );
        assert_eq!(cold.dropped, 0, "cold stream {} dropped", cold.stream_id);
    }
    // Nothing was silently lost in this non-adversarial scenario.
    assert_eq!(skewed.pool.dropped_jobs(), 0);

    // Bounded waits: no cold stream's mean server-side queue wait exceeds
    // 3x its solo-run wait, up to the deficit-round-robin service bound as
    // slack — one DRR cycle is the in-flight batch (`max_batch` jobs) plus
    // one ring round (one job per stream), each costing the run's measured
    // mean per-key-frame service time, and an arriving envelope can sit
    // through a full cycle in the uplink channel before the worker's next
    // drain pass even sees it, so allow two cycles. (An idle pool's solo
    // waits are near zero, so a pure ratio would measure OS scheduling
    // jitter rather than fairness; a FIFO drain without the in-flight cap
    // would instead let the hot backlog — dozens of jobs — pile up in
    // front of cold arrivals, blowing far past this bound.)
    let streams = 4usize;
    let mean_service = {
        let busy: f64 = skewed
            .pool
            .shards
            .iter()
            .map(|s| s.busy_time.as_secs_f64())
            .sum();
        busy / skewed.pool.total_key_frames().max(1) as f64
    };
    let drr_cycle = (PoolConfig::default_pool().max_batch + streams) as f64 * mean_service;
    // The extra 100 ms absorbs a preempted-CI-runner stall of the worker
    // thread; a FIFO drain without the in-flight cap would queue the hot
    // stream's dozens of jobs ahead of cold arrivals and overshoot this by
    // hundreds of milliseconds, so the bound still discriminates.
    let drr_bound = 2.0 * drr_cycle + 0.1;
    for cold in skewed.cold() {
        let wait = skewed.pool.streams[&cold.stream_id].mean_queue_wait_secs();
        assert!(
            wait <= 3.0 * solo_wait + drr_bound,
            "cold stream {} mean wait {:.4}s vs solo {:.4}s (DRR bound {:.4}s)",
            cold.stream_id,
            wait,
            solo_wait,
            drr_bound
        );
    }

    // The hot stream bore its own excess: at 8x the base rate against a
    // paced teacher its in-flight cap had to engage.
    assert!(
        skewed.hot().throttled > 0,
        "admission control never engaged on the hot stream ({} sent)",
        skewed.hot().sent
    );
    // And everything the hot stream sent was still answered explicitly.
    let hot = skewed.hot();
    assert_eq!(hot.updates + hot.throttled + hot.dropped, hot.sent);
}

#[test]
fn key_frame_after_shutdown_is_acked_and_counted_not_silently_lost() {
    // The shutdown race from the silent-drop bug: a key frame that reaches
    // the shard after its stream's Shutdown (here: sent after Shutdown on
    // the same FIFO uplink) cannot be served — the session is retired — but
    // it must be *accounted*: dropped_jobs increments and the client gets an
    // explicit Dropped ack so its frame bookkeeping cannot skew.
    let pool = ServerPool::spawn(
        ShadowTutorConfig::paper(),
        PoolConfig {
            shards: 1,
            recv_timeout: Duration::from_millis(200),
            ..PoolConfig::default_pool()
        },
        StudentNet::new(StudentConfig::tiny()).unwrap(),
        0.013,
        |_| OracleTeacher::perfect(77),
    )
    .unwrap();
    let frames = frames_for(SceneKind::People, 88, 2);
    let mut client = pool.connect(3, &frames).unwrap();
    let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(matches!(initial, ServerToClient::InitialStudent { .. }));

    let send_key = |client: &mut shadowtutor::serve::StreamClient, index: usize| {
        let payload = Payload::sized(frames[0].raw_rgb_bytes());
        let bytes = payload.bytes;
        client
            .send(
                ClientToServer::KeyFrame {
                    frame_index: index,
                    payload,
                },
                bytes,
            )
            .unwrap();
    };
    send_key(&mut client, frames[0].index);
    client.send(ClientToServer::Shutdown, 1).unwrap();
    send_key(&mut client, frames[1].index);

    // The key frame queued ahead of the Shutdown is flushed, not lost...
    let update = client.recv_timeout(Duration::from_secs(10)).unwrap();
    match update {
        ServerToClient::StudentUpdate { frame_index, .. } => {
            assert_eq!(frame_index, frames[0].index)
        }
        other => panic!("expected StudentUpdate, got {other:?}"),
    }
    // ...and the late one gets an explicit drop ack instead of vanishing.
    let ack = client.recv_timeout(Duration::from_secs(10)).unwrap();
    match ack {
        ServerToClient::Dropped {
            frame_index,
            reason,
        } => {
            assert_eq!(frame_index, frames[1].index);
            assert_eq!(reason, DropReason::UnknownStream);
        }
        other => panic!("expected Dropped, got {other:?}"),
    }
    drop(client);
    let stats = pool.join().unwrap();
    assert_eq!(stats.dropped_jobs(), 1, "the drop must be counted");
    assert_eq!(stats.total_key_frames(), 1);
    assert_eq!(stats.streams[&3].key_frames, 1);
    // The drop is attributed to the stream even though it was already
    // retired when the late frame arrived.
    assert_eq!(stats.streams[&3].dropped, 1);
    assert_eq!(stats.streams[&3].throttled, 0);
}

/// The batched-teacher tentpole, measured end to end on a real CnnTeacher:
/// a 4-stream pool whose co-scheduled key frames are labelled by one
/// genuinely batched forward, plus a deterministic batch-8 vs batch-1
/// comparison on the shard (the exact state machine the pool workers
/// drive). The assertion is on *measured* wall-clock teacher cost —
/// `ShardStats::teacher_wall_time` — not the virtual amortization model.
#[test]
fn batched_cnn_teacher_amortizes_measured_cost_in_the_pool() {
    use shadowtutor::serve::{ServeShard, ShardJob};
    use st_teacher::CnnTeacher;

    let config = ShadowTutorConfig::paper();
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();

    // --- Deterministic shard measurement: batch 8 vs batch 1. -------------
    // Four streams, two pre-shared frames each => 8 co-schedulable jobs.
    let mut shard = ServeShard::new(
        config,
        student.clone(),
        CnnTeacher::untrained(1, 7).unwrap(),
        0.013,
    );
    let specs = multi_specs(2);
    let mut jobs: Vec<ShardJob> = Vec::new();
    for spec in &specs {
        shard.register(
            spec.stream_id,
            shadowtutor::serve::FrameStore::from_frames(&spec.frames, None),
            false,
        );
        for frame in &spec.frames {
            jobs.push(ShardJob {
                stream_id: spec.stream_id,
                frame_index: frame.index,
            });
        }
    }
    assert_eq!(jobs.len(), 8);
    // Warm up both code paths (first-call effects: allocator, lazy init).
    shard.process_batch(&jobs).unwrap();
    shard.process_batch(&jobs[..1]).unwrap();

    let teacher_wall = |shard: &ServeShard<CnnTeacher>| shard.stats().teacher_wall_time;
    let mut batched_per_frame = Vec::new();
    let mut solo_per_frame = Vec::new();
    for _ in 0..3 {
        // One co-scheduled batch of 8: a single batched teacher forward.
        let before = teacher_wall(&shard);
        shard.process_batch(&jobs).unwrap();
        batched_per_frame.push((teacher_wall(&shard) - before).as_secs_f64() / jobs.len() as f64);
        // The same 8 jobs served one at a time: 8 solo forwards.
        let before = teacher_wall(&shard);
        for job in &jobs {
            shard.process_batch(std::slice::from_ref(job)).unwrap();
        }
        solo_per_frame.push((teacher_wall(&shard) - before).as_secs_f64() / jobs.len() as f64);
    }
    batched_per_frame.sort_by(|a, b| a.partial_cmp(b).unwrap());
    solo_per_frame.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let batched_median = batched_per_frame[batched_per_frame.len() / 2];
    let solo_median = solo_per_frame[solo_per_frame.len() / 2];
    assert!(
        batched_median < solo_median,
        "measured per-frame teacher cost must fall with batching: \
         batch 8 {batched_median:.6}s/frame vs batch 1 {solo_median:.6}s/frame"
    );
    // The shard's measured cost profile saw both batch sizes, so the
    // adaptive window's growth gate now runs on measured marginal-cost data
    // (a CnnTeacher forward is far above the measurability floor) instead
    // of falling back to the virtual model. The verdict's *direction* is
    // EMA-smoothed wall clock and may wobble with scheduler noise; the
    // robust median comparison above is the amortization claim.
    assert!(shard.measured_costs().estimate(1).is_some());
    assert!(shard.measured_costs().estimate(8).is_some());
    assert!(
        shard.measured_costs().growth_pays(8).is_some(),
        "growth gating must run on measured data once both sizes are observed"
    );

    // --- Live 4-stream pool run over the same teacher. --------------------
    // One shard so all four streams co-schedule; quantum 2 and a pinned
    // window of 8 let a full backlog drain in one batched forward.
    let pool = ServerPool::spawn(
        config,
        PoolConfig {
            shards: 1,
            max_batch: 8,
            max_in_flight: 2,
            quantum: 2,
            adaptive_batch: false,
            recv_timeout: Duration::from_millis(200),
            ..PoolConfig::default_pool()
        },
        student,
        0.013,
        |_| CnnTeacher::untrained(1, 7).unwrap(),
    )
    .unwrap();
    let specs = multi_specs(2);
    let mut clients: Vec<_> = specs
        .iter()
        .map(|spec| pool.connect(spec.stream_id, &spec.frames).unwrap())
        .collect();
    for (client, spec) in clients.iter_mut().zip(&specs) {
        let initial = client.recv_timeout(Duration::from_secs(30)).unwrap();
        assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
        for frame in &spec.frames {
            let payload = Payload::sized(frame.raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
        }
    }
    for (client, spec) in clients.iter_mut().zip(&specs) {
        for _ in &spec.frames {
            let update = client.recv_timeout(Duration::from_secs(30)).unwrap();
            assert!(matches!(update, ServerToClient::StudentUpdate { .. }));
        }
        client.send(ClientToServer::Shutdown, 1).unwrap();
    }
    drop(clients);
    let stats = pool.join().unwrap();
    assert_eq!(stats.total_key_frames(), 8);
    assert_eq!(stats.dropped_jobs(), 0);
    assert_eq!(stats.throttled(), 0);
    // Real compute was measured, and the live run's measured amortized
    // per-frame teacher cost beats the deterministic solo baseline whenever
    // any co-scheduling happened (and can only tie it when every batch
    // degenerated to size 1, which the timing race makes possible but rare).
    assert!(stats.teacher_wall_time() > Duration::ZERO);
    // How deep the live batches actually got depends on an arrival race
    // (clients push while the worker drains), so the wall-cost comparison
    // against the deterministic solo baseline only binds when genuine
    // co-scheduling happened; the margin absorbs scheduler jitter from the
    // concurrent client threads. The strict batch-8 < batch-1 claim is the
    // deterministic shard measurement above.
    let shard_stats = &stats.shards[0];
    if shard_stats.mean_batch_size() >= 2.0 {
        assert!(
            stats.mean_teacher_wall_secs() < solo_median * 1.10,
            "live pool amortized cost {:.6}s/frame vs solo baseline {solo_median:.6}s/frame \
             (mean batch {:.2})",
            stats.mean_teacher_wall_secs(),
            shard_stats.mean_batch_size()
        );
    }
}

/// Open-loop client driver for the elastic-pool tests: waits for the
/// initial checkpoint, sleeps `start_delay`, sends every frame on a fixed
/// schedule, answers `NeedFrame` recovery requests by re-uploading the
/// frame, drains until every send is answered, and shuts down. Returns
/// `(updates, throttled, dropped)`.
fn drive_stream(
    mut client: StreamClient,
    frames: Vec<st_video::Frame>,
    start_delay: Duration,
    interval: Duration,
) -> (usize, usize, usize) {
    use std::collections::HashMap;
    client
        .recv_timeout(Duration::from_secs(30))
        .expect("initial checkpoint");
    std::thread::sleep(start_delay);
    let by_index: HashMap<usize, &st_video::Frame> = frames.iter().map(|f| (f.index, f)).collect();
    let (mut updates, mut throttled, mut dropped) = (0usize, 0usize, 0usize);
    let mut outstanding = 0usize;
    let mut reshare_queue: Vec<usize> = Vec::new();
    let absorb = |message: ServerToClient,
                  updates: &mut usize,
                  throttled: &mut usize,
                  dropped: &mut usize,
                  outstanding: &mut usize,
                  reshare_queue: &mut Vec<usize>| {
        match message {
            ServerToClient::StudentUpdate { .. } => {
                *updates += 1;
                *outstanding = outstanding.saturating_sub(1);
            }
            ServerToClient::Throttle { .. } => {
                *throttled += 1;
                *outstanding = outstanding.saturating_sub(1);
            }
            ServerToClient::Dropped { .. } => {
                *dropped += 1;
                *outstanding = outstanding.saturating_sub(1);
            }
            ServerToClient::NeedFrame { frame_index } => reshare_queue.push(frame_index),
            ServerToClient::InitialStudent { .. } => {}
        }
    };
    for frame in &frames {
        let payload = Payload::sized(frame.raw_rgb_bytes());
        let bytes = payload.bytes;
        client
            .send(
                ClientToServer::KeyFrame {
                    frame_index: frame.index,
                    payload,
                },
                bytes,
            )
            .expect("uplink send");
        outstanding += 1;
        while let Ok(Some(message)) = client.try_recv() {
            absorb(
                message,
                &mut updates,
                &mut throttled,
                &mut dropped,
                &mut outstanding,
                &mut reshare_queue,
            );
        }
        for index in reshare_queue.drain(..) {
            client.reshare(by_index[&index]).expect("reshare send");
        }
        std::thread::sleep(interval);
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    while outstanding > 0 && Instant::now() < deadline {
        match client.recv_timeout(Duration::from_millis(200)) {
            Ok(message) => absorb(
                message,
                &mut updates,
                &mut throttled,
                &mut dropped,
                &mut outstanding,
                &mut reshare_queue,
            ),
            Err(st_net::TransportError::Timeout) => continue,
            Err(_) => break,
        }
        for index in reshare_queue.drain(..) {
            client.reshare(by_index[&index]).expect("reshare send");
        }
    }
    client.send(ClientToServer::Shutdown, 1).ok();
    (updates, throttled, dropped)
}

/// The elastic-pool tentpole, measured end to end: an 8×-rate hot stream on
/// a 4-shard pool, run identically with work stealing off
/// (`PlacementPolicy::LeastLoaded`) and on (`Rebalance`), under a
/// per-stream LRU frame budget.
///
/// Acceptance (ISSUE 5): with stealing enabled, cold-shard idle time and
/// p99 cold-stream wait are strictly below the stealing-off baseline
/// measured in the same test; `dropped_jobs == 0`; frame-cache bytes never
/// exceed the configured budget.
///
/// Topology (connect order is id order, least-loaded ties to the lowest
/// shard, so placement is identical in both runs): hot stream 0 → shard 0;
/// three short-lived colds 1–3 → shards 1–3, each sending one frame and
/// retiring — which leaves their shards *empty* and patient; mate stream
/// 4 → shard 0, starting only after the steal must have happened. Without
/// stealing, every mate key frame waits behind the hot stream's in-service
/// forwards; with stealing, the idle shards pull the hot backlog over
/// (and, once its host has no shard-mates left, the hot stream pins there),
/// so the mate arrives to a quiet shard.
#[test]
fn work_stealing_relieves_a_hot_shard_and_bounds_frame_memory() {
    let (student, _) = pretrained_student();
    let hot_frames = frames_for(SceneKind::People, 9100, 30);
    let budget = 12 * FrameStore::frame_cost(&hot_frames[0]);
    let run = |placement: PlacementPolicy| {
        let pool = ServerPool::spawn(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 4,
                placement,
                max_in_flight: 64,
                // One forward per batch: co-scheduling would amortize the
                // hot stream's excess away and hide the imbalance.
                max_batch: 1,
                adaptive_batch: false,
                frame_budget_bytes: Some(budget),
                steal_poll: Duration::from_millis(1),
                steal_patience: Duration::from_millis(100),
                recv_timeout: Duration::from_millis(200),
                ..PoolConfig::default_pool()
            },
            student.clone(),
            0.013,
            // A real wall-clock pause per teacher forward so the hot
            // backlog is physical.
            |shard| {
                PacedTeacher::new(
                    OracleTeacher::perfect(7200 + shard as u64),
                    Duration::from_millis(8),
                )
            },
        )
        .unwrap();
        // (frames, start delay, send interval) per stream, in id order.
        let specs: Vec<(Vec<st_video::Frame>, Duration, Duration)> = vec![
            (
                hot_frames.clone(),
                Duration::ZERO,
                Duration::from_millis(30),
            ),
            (
                frames_for(SceneKind::Animals, 9101, 1),
                Duration::ZERO,
                Duration::from_millis(1),
            ),
            (
                frames_for(SceneKind::Street, 9102, 1),
                Duration::ZERO,
                Duration::from_millis(1),
            ),
            (
                frames_for(SceneKind::Animals, 9103, 1),
                Duration::ZERO,
                Duration::from_millis(1),
            ),
            (
                frames_for(SceneKind::People, 9104, 8),
                // Starts well after the steal must have happened, with
                // margin for a CI runner serving sibling tests: the idle
                // shards get patient ~100 ms after the one-frame colds
                // retire (~100-250 ms even under 3x slowdown), and the
                // donation follows within a couple of shard-0 passes.
                Duration::from_millis(800),
                Duration::from_millis(100),
            ),
        ];
        let clients: Vec<StreamClient> = specs
            .iter()
            .enumerate()
            .map(|(id, (frames, _, _))| pool.connect(id as u64, frames).unwrap())
            .collect();
        // Hot + mate share shard 0; one cold per remaining shard.
        assert_eq!(pool.shard_loads(), vec![2, 1, 1, 1]);
        let started = Instant::now();
        let mut results: Vec<(usize, usize, usize)> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (client, (frames, start_delay, interval)) in clients.into_iter().zip(&specs) {
                let frames = frames.clone();
                let (start_delay, interval) = (*start_delay, *interval);
                handles
                    .push(scope.spawn(move || drive_stream(client, frames, start_delay, interval)));
            }
            for handle in handles {
                results.push(handle.join().unwrap());
            }
        });
        let wall = started.elapsed().as_secs_f64();
        let stats = pool.join().unwrap();
        // Every key frame of every stream was answered and served: no
        // throttles (cap 64), no drops, updates == sent.
        for (id, ((updates, throttled, dropped), (frames, _, _))) in
            results.iter().zip(&specs).enumerate()
        {
            assert_eq!(
                *updates,
                frames.len(),
                "stream {id}: {updates} updates, {throttled} throttled, {dropped} dropped"
            );
        }
        (stats, wall)
    };

    let (off, off_wall) = run(PlacementPolicy::LeastLoaded);
    let (on, on_wall) = run(PlacementPolicy::Rebalance);

    // Nothing lost in either mode.
    assert_eq!(off.dropped_jobs(), 0);
    assert_eq!(on.dropped_jobs(), 0);
    assert_eq!(off.streams_stolen(), 0, "LeastLoaded must never migrate");
    assert!(
        on.streams_stolen() >= 1,
        "stealing never engaged: {:?}",
        on.snapshot().to_json()
    );

    // p99 cold-stream wait strictly below the stealing-off baseline. At
    // these per-stream sample counts the 99th percentile is the worst
    // sample, so compare the worst cold stream's worst wall-clock wait.
    let cold_p99 = |stats: &shadowtutor::serve::PoolStats| {
        (1u64..=4)
            .map(|id| stats.streams[&id].queue_wait_max)
            .max()
            .unwrap()
    };
    let off_cold_wait = cold_p99(&off);
    let on_cold_wait = cold_p99(&on);
    assert!(
        on_cold_wait < off_cold_wait,
        "cold p99 wait must drop with stealing: {on_cold_wait:?} vs {off_cold_wait:?}"
    );

    // Cold-shard idle time strictly below the baseline: the shards that
    // idled while shard 0 drowned (shards 1-3) spend more of the run busy
    // once they can steal the hot backlog. Compare idle *fractions* so the
    // two runs' wall clocks normalize out.
    let cold_idle_fraction = |stats: &shadowtutor::serve::PoolStats, wall: f64| {
        let busy: f64 = stats.shards[1..]
            .iter()
            .map(|s| s.busy_time.as_secs_f64())
            .sum();
        1.0 - busy / (3.0 * wall)
    };
    let off_idle = cold_idle_fraction(&off, off_wall);
    let on_idle = cold_idle_fraction(&on, on_wall);
    assert!(
        on_idle < off_idle,
        "cold shards must idle less with stealing: {on_idle:.3} vs {off_idle:.3}"
    );

    // The frame budget held at every point of both runs, and the recovery
    // path really ran (the hot stream pre-shares 30 frames against a
    // 12-frame budget).
    assert!(off.frame_bytes_peak() <= budget);
    assert!(on.frame_bytes_peak() <= budget);
    assert!(on.frame_evictions() > 0);
    assert!(on.reshared_frames() > 0);
}

/// Steal-vs-shutdown races: streams finish (or abandon) while migrations
/// are in flight, and nothing may be lost or double-counted — every
/// connected stream reports a final checkpoint and stats, and every key
/// frame is either served or explicitly acked.
#[test]
fn stream_finishing_mid_migration_is_never_lost() {
    // Cheap distillation so service is shorter than the cold send interval
    // (the regime where donation windows exist at all).
    let config = ShadowTutorConfig {
        max_updates: 2,
        ..ShadowTutorConfig::paper()
    };
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let pool_config = PoolConfig {
        shards: 2,
        placement: PlacementPolicy::Rebalance,
        max_in_flight: 12,
        max_batch: 1,
        adaptive_batch: false,
        steal_poll: Duration::from_millis(1),
        steal_patience: Duration::from_millis(3),
        recv_timeout: Duration::from_millis(200),
        ..PoolConfig::default_pool()
    };

    // Part 1 — cooperative endings: open-loop skewed runs where the cold
    // streams retire early while the hot backlog keeps migrating. Every
    // stream's answers must conserve across however many hops its session
    // took.
    let mut total_steals = 0usize;
    for seed in [5508u64, 5509, 5510] {
        let outcome = run_skewed_load(
            config,
            pool_config,
            student.clone(),
            0.013,
            |shard| {
                PacedTeacher::new(
                    OracleTeacher::perfect(seed * 10 + shard as u64),
                    Duration::from_millis(6),
                )
            },
            SkewedLoadSpec {
                streams: 3,
                hot_multiplier: 8,
                key_frames_per_stream: 2,
                send_interval: Duration::from_millis(40),
                seed,
            },
        )
        .unwrap();
        for report in &outcome.streams {
            assert_eq!(
                report.updates + report.throttled + report.dropped,
                report.sent,
                "seed {seed}: stream {} lost answers",
                report.stream_id
            );
        }
        assert_eq!(outcome.pool.dropped_jobs(), 0, "seed {seed}");
        assert_eq!(outcome.pool.streams.len(), 3, "seed {seed}");
        assert_eq!(outcome.pool.final_checkpoints.len(), 3, "seed {seed}");
        // Conservation across migration: steals and donations pair up.
        let donated: usize = outcome.pool.shards.iter().map(|s| s.streams_donated).sum();
        assert_eq!(donated, outcome.pool.streams_stolen(), "seed {seed}");
        total_steals += outcome.pool.streams_stolen();
    }

    // Part 2 — abrupt endings: the hot stream walks away (Shutdown + drop)
    // with most of its backlog still queued, racing the migration machinery.
    // The flushed backlog must be processed-or-acked and the session
    // retired with a checkpoint, wherever it lives by then.
    for seed in [31u64, 32] {
        let pool = ServerPool::spawn(config, pool_config, student.clone(), 0.013, |shard| {
            PacedTeacher::new(
                OracleTeacher::perfect(seed * 100 + shard as u64),
                Duration::from_millis(6),
            )
        })
        .unwrap();
        let hot_frames = frames_for(SceneKind::People, seed, 12);
        let helper_frames = frames_for(SceneKind::Animals, seed + 40, 2);
        let mate_frames = frames_for(SceneKind::Street, seed + 80, 2);
        let mut hot = pool.connect(0, &hot_frames).unwrap();
        let helper = pool.connect(1, &helper_frames).unwrap();
        let mate = pool.connect(2, &mate_frames).unwrap();
        // Helper and mate run cooperatively on their own threads; the hot
        // client blasts its backlog, takes a few updates, and vanishes.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                drive_stream(
                    helper,
                    helper_frames.clone(),
                    Duration::ZERO,
                    Duration::from_millis(20),
                )
            });
            scope.spawn(|| {
                drive_stream(
                    mate,
                    mate_frames.clone(),
                    Duration::ZERO,
                    Duration::from_millis(20),
                )
            });
            hot.recv_timeout(Duration::from_secs(10)).unwrap();
            for frame in &hot_frames {
                let payload = Payload::sized(frame.raw_rgb_bytes());
                let bytes = payload.bytes;
                hot.send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
            }
            let mut seen = 0;
            while seen < 4 {
                if let Ok(ServerToClient::StudentUpdate { .. }) =
                    hot.recv_timeout(Duration::from_secs(10))
                {
                    seen += 1;
                }
            }
            hot.send(ClientToServer::Shutdown, 1).unwrap();
            drop(hot);
        });
        let stats = pool.join().unwrap();
        // All three sessions retired with checkpoints and stats, wherever
        // the migrations put them.
        assert_eq!(stats.streams.len(), 3, "seed {seed}");
        assert_eq!(stats.final_checkpoints.len(), 3, "seed {seed}");
        // The hot stream's queued backlog was flushed on Shutdown: every
        // one of its 12 key frames was served (none were throttled — cap
        // 12 — and none silently vanished).
        assert_eq!(stats.streams[&0].key_frames, 12, "seed {seed}");
        assert_eq!(stats.dropped_jobs(), 0, "seed {seed}");
        total_steals += stats.streams_stolen();
    }
    // Migrations really interleaved with the endings somewhere across the
    // runs. Part 2's steal is structurally robust even on a loaded CI
    // runner: the helper retires early, its shard goes patient-idle, and
    // the victim keeps the mate session, so the relaxed donation rule
    // fires independently of arrival timing; Part 1's steals additionally
    // need idle gaps between cold arrivals, which heavy host load can
    // erase — hence one pooled assertion, not one per part.
    assert!(
        total_steals >= 1,
        "no migration happened across any seed — the race never ran"
    );
}

/// The eviction-recovery protocol, deterministically: a key frame whose
/// content was evicted from the bounded cache is parked and recovered via
/// `NeedFrame` → `ReShare`, never dropped — while frames that were never
/// shared still get the explicit `Dropped` ack.
#[test]
fn lru_eviction_needframe_reshare_round_trip() {
    let frames = frames_for(SceneKind::People, 93, 4);
    let budget = 2 * FrameStore::frame_cost(&frames[0]);
    let pool = ServerPool::spawn(
        ShadowTutorConfig::paper(),
        PoolConfig {
            shards: 1,
            frame_budget_bytes: Some(budget),
            recv_timeout: Duration::from_millis(200),
            ..PoolConfig::default_pool()
        },
        StudentNet::new(StudentConfig::tiny()).unwrap(),
        0.013,
        |_| OracleTeacher::perfect(93),
    )
    .unwrap();
    let mut client = pool.connect(5, &frames).unwrap();
    let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
    assert!(matches!(initial, ServerToClient::InitialStudent { .. }));

    // Frames are pre-shared in index order, so with room for two the first
    // two are already evicted. Asking for frame 0 must yield a NeedFrame,
    // not a drop.
    let payload = Payload::sized(frames[0].raw_rgb_bytes());
    let bytes = payload.bytes;
    client
        .send(
            ClientToServer::KeyFrame {
                frame_index: frames[0].index,
                payload,
            },
            bytes,
        )
        .unwrap();
    match client.recv_timeout(Duration::from_secs(10)).unwrap() {
        ServerToClient::NeedFrame { frame_index } => assert_eq!(frame_index, frames[0].index),
        other => panic!("expected NeedFrame, got {other:?}"),
    }
    // Re-uploading the frame resumes the parked job and produces the
    // update the original key frame was owed.
    client.reshare(&frames[0]).unwrap();
    match client.recv_timeout(Duration::from_secs(10)).unwrap() {
        ServerToClient::StudentUpdate { frame_index, .. } => {
            assert_eq!(frame_index, frames[0].index)
        }
        other => panic!("expected StudentUpdate, got {other:?}"),
    }

    // A client may legally re-send a key frame. Two sends for the same
    // evicted index must yield two updates — the parked jobs may not
    // collapse into one (the regression this guards: a map keyed by frame
    // index silently swallowing the duplicate).
    for _ in 0..2 {
        let payload = Payload::sized(frames[1].raw_rgb_bytes());
        let bytes = payload.bytes;
        client
            .send(
                ClientToServer::KeyFrame {
                    frame_index: frames[1].index,
                    payload,
                },
                bytes,
            )
            .unwrap();
    }
    let mut duplicate_updates = 0;
    while duplicate_updates < 2 {
        match client.recv_timeout(Duration::from_secs(10)).unwrap() {
            // Depending on how the two sends batch, the server may ask for
            // the frame once or twice; answer every request.
            ServerToClient::NeedFrame { frame_index } => {
                assert_eq!(frame_index, frames[1].index);
                client.reshare(&frames[1]).unwrap();
            }
            ServerToClient::StudentUpdate { frame_index, .. } => {
                assert_eq!(frame_index, frames[1].index);
                duplicate_updates += 1;
            }
            other => panic!("expected NeedFrame/StudentUpdate, got {other:?}"),
        }
    }

    // A frame that was never shared is a protocol error, not a recovery
    // case: explicit drop ack.
    let payload = Payload::sized(frames[0].raw_rgb_bytes());
    let bytes = payload.bytes;
    client
        .send(
            ClientToServer::KeyFrame {
                frame_index: 999,
                payload,
            },
            bytes,
        )
        .unwrap();
    match client.recv_timeout(Duration::from_secs(10)).unwrap() {
        ServerToClient::Dropped {
            frame_index,
            reason,
        } => {
            assert_eq!(frame_index, 999);
            assert_eq!(reason, DropReason::UnknownFrame);
        }
        other => panic!("expected Dropped, got {other:?}"),
    }
    // An unsolicited re-share of a never-shared frame is refused the same
    // way (a re-share restores content, it does not add frames).
    let foreign = frames_for(SceneKind::Street, 94, 6).pop().unwrap();
    client.reshare(&foreign).unwrap();
    match client.recv_timeout(Duration::from_secs(10)).unwrap() {
        ServerToClient::Dropped { reason, .. } => assert_eq!(reason, DropReason::UnknownFrame),
        other => panic!("expected Dropped, got {other:?}"),
    }

    client.send(ClientToServer::Shutdown, 1).unwrap();
    drop(client);
    let stats = pool.join().unwrap();
    // Three key frames served end to end (one recovered, plus the
    // duplicate pair); the recoveries and the two protocol errors all
    // accounted; the budget held throughout.
    assert_eq!(stats.total_key_frames(), 3);
    assert_eq!(stats.streams[&5].key_frames, 3);
    assert_eq!(stats.dropped_jobs(), 2);
    let shard = &stats.shards[0];
    assert!(shard.frame_evictions >= 2);
    assert!(shard.need_frame_requests >= 2);
    assert!(shard.reshared_frames >= 2);
    assert!(shard.frame_bytes_peak > 0 && shard.frame_bytes_peak <= budget);
}

#[test]
fn all_seven_categories_run_and_report_valid_metrics() {
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let runtime =
        SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
    for descriptor in category_videos(Resolution::Tiny, 123) {
        let mut video = VideoGenerator::new(descriptor.config).unwrap();
        let record = runtime
            .run(
                &descriptor.name,
                &mut video,
                24,
                student.clone(),
                OracleTeacher::perfect(11),
            )
            .unwrap();
        assert_eq!(record.frames, 24, "{}", descriptor.name);
        assert!(record.key_frame_count() >= 1);
        assert!(record.mean_miou_percent() >= 0.0 && record.mean_miou_percent() <= 100.0);
        assert!(record.fps() > 0.0);
        assert!(record.total_data_mb() > 0.0);
    }
}

/// The API redesign's compatibility contract: the `connect()` builder's
/// default in-process channel backend is exactly the raw transport pair —
/// same delivery, same distillation output bit for bit, same measured wire
/// bytes. A scripted lockstep session (client endpoint and server half
/// pumped alternately from one thread, real distillation on the server
/// side) removes timing from the picture, so any divergence would be the
/// builder's fault, not the scheduler's.
#[test]
fn channel_backend_distillation_output_is_bit_identical_to_raw_pair() {
    use shadowtutor::server::ServerState;
    use st_net::transport::{DuplexTransport, Endpoint, ServerChannel};
    use st_net::{Codec, WireCodec};
    use st_video::Frame;

    /// Drive the fixed script over whichever endpoint/server pair we were
    /// handed; return the concatenated downlink payload bytes (initial
    /// checkpoint + every weight update + metrics) and the endpoint's
    /// measured wire counters.
    fn scripted_run<C, T>(
        mut endpoint: Endpoint<C, T>,
        mut server_side: ServerChannel,
        frames: &[Frame],
        key_indices: &[usize],
        student: StudentNet,
    ) -> (Vec<u8>, usize, usize)
    where
        C: Codec,
        T: st_net::Transport<ClientToServer, ServerToClient>,
    {
        let timeout = Duration::from_secs(5);
        let mut server = ServerState::new(
            ShadowTutorConfig::paper(),
            student,
            OracleTeacher::perfect(7),
            0.013,
        );
        let mut output: Vec<u8> = Vec::new();

        let init = server.initial_checkpoint();
        server_side
            .send(
                ServerToClient::InitialStudent {
                    payload: Payload::with_data(init.encode()),
                },
                0,
            )
            .unwrap();
        match endpoint.recv_timeout(timeout).unwrap() {
            ServerToClient::InitialStudent { payload } => {
                output.extend_from_slice(payload.data.as_ref().expect("initial payload"));
            }
            other => panic!("expected InitialStudent, got {other:?}"),
        }

        for &index in key_indices {
            let content: Vec<u8> = (0..frames[index].raw_rgb_bytes())
                .map(|i| (i % 251) as u8)
                .collect();
            endpoint
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: index,
                        payload: Payload::with_data(bytes::Bytes::from(content)),
                    },
                    0,
                )
                .unwrap();
            let frame_index = match server_side.recv_timeout(timeout).unwrap() {
                ClientToServer::KeyFrame { frame_index, .. } => frame_index,
                other => panic!("expected KeyFrame, got {other:?}"),
            };
            let response = server.handle_key_frame(&frames[frame_index]).unwrap();
            server_side
                .send(
                    ServerToClient::StudentUpdate {
                        frame_index,
                        metric: response.metric,
                        distill_steps: response.outcome.steps,
                        payload: Payload::with_data(response.update.encode()),
                    },
                    0,
                )
                .unwrap();
            match endpoint.recv_timeout(timeout).unwrap() {
                ServerToClient::StudentUpdate {
                    metric,
                    distill_steps,
                    payload,
                    ..
                } => {
                    output.extend_from_slice(payload.data.as_ref().expect("update payload"));
                    output.extend_from_slice(&metric.to_le_bytes());
                    output.extend_from_slice(&(distill_steps as u64).to_le_bytes());
                }
                other => panic!("expected StudentUpdate, got {other:?}"),
            }
        }
        endpoint.send(ClientToServer::Shutdown, 0).unwrap();
        assert!(matches!(
            server_side.recv_timeout(timeout).unwrap(),
            ClientToServer::Shutdown
        ));
        (
            output,
            endpoint.wire_sent_bytes(),
            endpoint.wire_received_bytes(),
        )
    }

    let (student, _) = pretrained_student();
    let frames = frames_for(SceneKind::People, 5, 24);
    let key_indices = [0usize, 6, 12, 18];

    // Backend A: the builder's default channel backend.
    let (built_client, built_server) = st_net::connect().channel();
    let built = scripted_run(
        built_client,
        built_server,
        &frames,
        &key_indices,
        student.clone(),
    );

    // Backend B: a raw transport pair wrapped by hand — what the code looked
    // like before the builder existed.
    let (client_side, server_side) = DuplexTransport::pair();
    let raw = scripted_run(
        Endpoint::new(WireCodec, client_side),
        server_side,
        &frames,
        &key_indices,
        student,
    );

    assert_eq!(
        built.0, raw.0,
        "distillation output diverged between the channel builder and the raw pair"
    );
    assert!(!built.0.is_empty());
    assert_eq!(built.1, raw.1, "measured uplink wire bytes diverged");
    assert_eq!(built.2, raw.2, "measured downlink wire bytes diverged");
}
