//! Self-validation of the model checker: classic litmus shapes must behave
//! exactly as the C11 model says — weak orderings admit the weak outcomes
//! (the checker *finds* the bug) and strong orderings forbid them (the
//! checker *exhausts* without one).
#![cfg(feature = "model-check")]

use std::sync::Arc;

use st_check::model::{check_with, Config, Report};
use st_check::sync::thread;
use st_check::sync::{fence, AtomicUsize, Mutex, Ordering};

fn cfg() -> Config {
    Config {
        max_schedules: 5_000,
        max_steps: 5_000,
        preemption_bound: Some(2),
        seed: 7,
    }
}

fn assert_caught(report: &Report, what: &str) {
    let cx = report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("checker failed to catch {what}"));
    assert!(!cx.trace.is_empty(), "counterexample trace is empty");
    assert!(!cx.schedule.is_empty(), "counterexample schedule is empty");
}

fn assert_clean(report: &Report, what: &str) {
    if let Some(cx) = &report.counterexample {
        panic!("false positive on {what}:\n{}", cx.render());
    }
    assert!(report.exhausted, "{what}: exploration did not exhaust");
}

/// Store-buffer litmus (SB): with SeqCst, both threads reading 0 is
/// forbidden.
#[test]
fn store_buffer_seqcst_forbids_0_0() {
    let report = check_with(cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::SeqCst);
            y2.load(Ordering::SeqCst)
        });
        x.store(2, Ordering::SeqCst); // distinct value; doubles as "y thread"
        let r2 = {
            y.store(1, Ordering::SeqCst);
            x.load(Ordering::SeqCst)
        };
        let r1 = t.join().expect("join");
        assert!(!(r1 == 0 && r2 == 0), "SB weak outcome (0,0) under SeqCst");
    });
    assert_clean(&report, "SeqCst store-buffer");
}

/// Store-buffer litmus with Relaxed: the checker must find the (0,0)
/// outcome — a deliberately weakened ordering is observable.
#[test]
fn store_buffer_relaxed_admits_0_0() {
    let report = check_with(cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let y = Arc::new(AtomicUsize::new(0));
        let (x2, y2) = (x.clone(), y.clone());
        let t = thread::spawn(move || {
            x2.store(1, Ordering::Relaxed);
            y2.load(Ordering::Relaxed)
        });
        y.store(1, Ordering::Relaxed);
        let r2 = x.load(Ordering::Relaxed);
        let r1 = t.join().expect("join");
        assert!(
            !(r1 == 0 && r2 == 0),
            "SB weak outcome (0,0) observed (expected under Relaxed)"
        );
    });
    assert_caught(&report, "the Relaxed store-buffer outcome");
}

/// Message passing (MP) with Release/Acquire: reading the flag implies
/// reading the data.
#[test]
fn message_passing_release_acquire_is_clean() {
    let report = check_with(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Release);
        });
        if flag.load(Ordering::Acquire) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data after acquire");
        }
        t.join().expect("join");
    });
    assert_clean(&report, "Release/Acquire message passing");
}

/// MP mutant: a Relaxed flag must let the checker observe stale data.
#[test]
fn message_passing_relaxed_flag_is_caught() {
    let report = check_with(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(42, Ordering::Relaxed);
            f2.store(1, Ordering::Relaxed); // mutant: Release weakened
        });
        if flag.load(Ordering::Relaxed) == 1 {
            assert_eq!(data.load(Ordering::Relaxed), 42, "stale data read");
        }
        t.join().expect("join");
    });
    assert_caught(&report, "the Relaxed-flag message-passing mutant");
}

/// MP through fences: Relaxed accesses bracketed by Release/Acquire fences
/// synchronize; removing the fences (next test) does not.
#[test]
fn fence_message_passing_is_clean() {
    let report = check_with(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            fence(Ordering::Release);
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            fence(Ordering::Acquire);
            assert_eq!(data.load(Ordering::Relaxed), 7, "fences failed to order");
        }
        t.join().expect("join");
    });
    assert_clean(&report, "fence-based message passing");
}

/// Fence mutant: dropping both fences must be caught as a stale read.
#[test]
fn fence_message_passing_mutant_is_caught() {
    let report = check_with(cfg(), || {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d2, f2) = (data.clone(), flag.clone());
        let t = thread::spawn(move || {
            d2.store(7, Ordering::Relaxed);
            // mutant: fence(Release) deleted
            f2.store(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Relaxed) == 1 {
            // mutant: fence(Acquire) deleted
            assert_eq!(data.load(Ordering::Relaxed), 7, "stale data read");
        }
        t.join().expect("join");
    });
    assert_caught(&report, "the deleted-fence mutant");
}

/// Lost-update: two Relaxed fetch_adds still sum (RMWs read the latest
/// store), and a mutex-protected counter is exact.
#[test]
fn rmw_and_mutex_counters_are_exact() {
    let report = check_with(cfg(), || {
        let n = Arc::new(AtomicUsize::new(0));
        let m = Arc::new(Mutex::new(0usize));
        let (n2, m2) = (n.clone(), m.clone());
        let t = thread::spawn(move || {
            n2.fetch_add(1, Ordering::Relaxed);
            *m2.lock().expect("lock") += 1;
        });
        n.fetch_add(1, Ordering::Relaxed);
        *m.lock().expect("lock") += 1;
        t.join().expect("join");
        assert_eq!(n.load(Ordering::Relaxed), 2, "lost atomic update");
        assert_eq!(*m.lock().expect("lock"), 2, "lost mutex update");
    });
    assert_clean(&report, "counter exactness");
}

/// A classic AB/BA lock cycle must be reported as a deadlock, not hang.
#[test]
fn lock_cycle_is_reported_as_deadlock() {
    let report = check_with(cfg(), || {
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        let (a2, b2) = (a.clone(), b.clone());
        let t = thread::spawn(move || {
            let _ga = a2.lock().expect("lock a");
            let _gb = b2.lock().expect("lock b");
        });
        let _gb = b.lock().expect("lock b");
        let _ga = a.lock().expect("lock a");
        drop((_ga, _gb));
        t.join().expect("join");
    });
    let cx = report.counterexample.expect("deadlock not caught");
    assert!(
        cx.message.contains("deadlock"),
        "expected a deadlock report, got: {}",
        cx.message
    );
}

/// A condvar wait with no timeout and no notifier is a deadlock; with a
/// timeout the timeout alternative keeps the schedule alive.
#[test]
fn condvar_timeout_alternative_prevents_deadlock() {
    use st_check::sync::Condvar;
    use std::time::Duration;

    let report = check_with(cfg(), || {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let guard = pair.0.lock().expect("lock");
        let (guard, result) = pair
            .1
            .wait_timeout(guard, Duration::from_secs(3600))
            .expect("wait");
        assert!(result.timed_out(), "nobody notifies, must time out");
        assert!(!*guard, "value cannot have changed");
    });
    assert_clean(&report, "lone timed wait");
}

/// Same seed, same exploration: the counterexample (schedule AND trace) of a
/// racy program is bit-identical across runs. Different seeds are allowed to
/// find different schedules.
#[test]
fn same_seed_same_trace() {
    fn racy(cfg: Config) -> Report {
        check_with(cfg, || {
            let data = Arc::new(AtomicUsize::new(0));
            let flag = Arc::new(AtomicUsize::new(0));
            let (d2, f2) = (data.clone(), flag.clone());
            let t = thread::spawn(move || {
                d2.store(9, Ordering::Relaxed);
                f2.store(1, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) == 1 {
                assert_eq!(data.load(Ordering::Relaxed), 9, "stale");
            }
            t.join().expect("join");
        })
    }
    let first = racy(cfg());
    let second = racy(cfg());
    let (a, b) = (
        first.counterexample.expect("run 1 caught nothing"),
        second.counterexample.expect("run 2 caught nothing"),
    );
    assert_eq!(a.schedule, b.schedule, "schedules differ for equal seeds");
    assert_eq!(a.trace, b.trace, "traces differ for equal seeds");
    assert_eq!(a.message, b.message, "messages differ for equal seeds");
    assert_eq!(
        first.schedules, second.schedules,
        "exploration order differs"
    );
}

/// The user assertion message must survive into the counterexample.
#[test]
fn counterexample_carries_the_assertion_message() {
    let report = check_with(cfg(), || {
        let x = Arc::new(AtomicUsize::new(0));
        let x2 = x.clone();
        let t = thread::spawn(move || x2.store(1, Ordering::Relaxed));
        assert_eq!(x.load(Ordering::Relaxed), 0, "distinctive-marker-4217");
        t.join().expect("join");
    });
    let cx = report.counterexample.expect("race not caught");
    assert!(
        cx.message.contains("distinctive-marker-4217"),
        "assertion message lost: {}",
        cx.message
    );
    assert!(
        cx.render().contains("replay: seed="),
        "render lacks replay info"
    );
}
