//! Rule-by-rule tests for the st-lint scanner (`st_check::lint`), run on
//! inline source snippets so each rule's trigger and its justification are
//! pinned.

use std::path::Path;

use st_check::lint::{lint_source, to_json, Allowlist, Violation};

fn rules(path: &str, src: &str) -> Vec<&'static str> {
    lint_source(Path::new(path), src)
        .into_iter()
        .map(|v| v.rule)
        .collect()
}

#[test]
fn unsafe_block_needs_safety_comment() {
    let bad = "fn f() {\n    let x = unsafe { *p };\n}\n";
    assert_eq!(rules("crates/x/src/a.rs", bad), vec!["unsafe-safety"]);

    let good = "fn f() {\n    // SAFETY: p is valid for reads, checked above.\n    let x = unsafe { *p };\n}\n";
    assert!(rules("crates/x/src/a.rs", good).is_empty());

    let same_line = "fn f() { unsafe { *p } } // SAFETY: p valid\n";
    assert!(rules("crates/x/src/a.rs", same_line).is_empty());
}

#[test]
fn unsafe_impl_needs_safety_but_unsafe_fn_does_not() {
    let impl_bad = "unsafe impl Send for X {}\n";
    assert_eq!(rules("crates/x/src/a.rs", impl_bad), vec!["unsafe-safety"]);

    // `unsafe fn` declarations are covered by deny(unsafe_op_in_unsafe_fn):
    // the *body* must carry explicit (commented) unsafe blocks instead.
    let fn_decl = "pub unsafe fn kernel(p: *const f32) -> f32 {\n    // SAFETY: caller upholds the contract.\n    unsafe { *p }\n}\n";
    assert!(rules("crates/x/src/a.rs", fn_decl).is_empty());
}

#[test]
fn unsafe_inside_strings_and_comments_is_ignored() {
    let src = "fn f() {\n    let s = \"unsafe { }\";\n    // unsafe is discussed here only\n}\n";
    assert!(rules("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn relaxed_ordering_needs_order_comment() {
    let bad = "fn f(a: &AtomicUsize) -> usize {\n    a.load(Ordering::Relaxed)\n}\n";
    assert_eq!(rules("crates/x/src/a.rs", bad), vec!["order-relaxed"]);

    let good = "fn f(a: &AtomicUsize) -> usize {\n    // ORDER: monotonic counter, read for reporting only.\n    a.load(Ordering::Relaxed)\n}\n";
    assert!(rules("crates/x/src/a.rs", good).is_empty());
}

#[test]
fn relaxed_in_test_code_is_exempt() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f(a: &AtomicUsize) -> usize {\n        a.load(Ordering::Relaxed)\n    }\n}\n";
    assert!(rules("crates/x/src/a.rs", src).is_empty());
    // ...and in integration-test files.
    let file = "fn f(a: &AtomicUsize) -> usize { a.load(Ordering::Relaxed) }\n";
    assert!(rules("crates/x/tests/a.rs", file).is_empty());
    assert_eq!(rules("crates/x/src/a.rs", file), vec!["order-relaxed"]);
}

#[test]
fn unwrap_and_expect_banned_in_serve_and_shm_only() {
    let src =
        "fn f() {\n    let g = m.lock().unwrap();\n    let h = n.lock().expect(\"lock\");\n}\n";
    assert_eq!(
        rules("crates/core/src/serve.rs", src),
        vec!["no-unwrap", "no-unwrap"]
    );
    assert_eq!(
        rules("crates/net/src/shm.rs", src),
        vec!["no-unwrap", "no-unwrap"]
    );
    // Other files are out of scope for this rule.
    assert!(rules("crates/core/src/runtime.rs", src).is_empty());

    // Test modules inside serve.rs are exempt.
    let test_src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { m.lock().unwrap(); }\n}\n";
    assert!(rules("crates/core/src/serve.rs", test_src).is_empty());
}

#[test]
fn native_endian_conversions_banned_in_net() {
    let src = "fn f(x: u32) -> [u8; 4] { x.to_ne_bytes() }\n";
    assert_eq!(rules("crates/net/src/wire.rs", src), vec!["ne-bytes"]);
    assert!(rules("crates/core/src/serve.rs", src).is_empty());
}

#[test]
fn thread_sleep_banned_in_reactor_files() {
    let src = "fn f() { std::thread::sleep(Duration::from_millis(1)); }\n";
    assert_eq!(rules("crates/core/src/serve.rs", src), vec!["no-sleep"]);
    assert_eq!(rules("crates/net/src/poll.rs", src), vec!["no-sleep"]);
    assert!(rules("crates/net/src/shm.rs", src).is_empty());

    let test_src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::sleep(D); }\n}\n";
    assert!(rules("crates/core/src/serve.rs", test_src).is_empty());
}

#[test]
fn ignored_send_banned_on_failover_and_mailbox_paths() {
    let bad = "fn f() {\n    let _ = downlink.send(bytes, msg);\n}\n";
    assert_eq!(rules("crates/core/src/serve.rs", bad), vec!["ignored-send"]);
    assert_eq!(rules("crates/core/src/steal.rs", bad), vec!["ignored-send"]);
    assert_eq!(
        rules("crates/core/src/runtime/live.rs", bad),
        vec!["ignored-send"]
    );
    // Out-of-scope files and handled results stay clean.
    assert!(rules("crates/core/src/loadgen.rs", bad).is_empty());
    let handled = "fn f() {\n    deliver(&downlink, bytes, msg, &mut lost_acks);\n    if tx.send(e).is_err() { count += 1; }\n}\n";
    assert!(rules("crates/core/src/serve.rs", handled).is_empty());
    // `let _ =` without a send on the same statement is some other rule's
    // business.
    let other = "fn f() {\n    let _ = guard;\n}\n";
    assert!(rules("crates/core/src/serve.rs", other).is_empty());

    // Test modules are exempt — scripted endpoints drop sends on purpose.
    let test_src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = tx.send(1); }\n}\n";
    assert!(rules("crates/core/src/serve.rs", test_src).is_empty());
}

#[test]
fn raw_strings_and_char_literals_do_not_confuse_the_lexer() {
    let src = concat!(
        "fn f() {\n",
        "    let a = r#\"unsafe { Ordering::Relaxed }\"#;\n",
        "    let b = 'u';\n",
        "    let c: &'static str = \"x\";\n",
        "    let d = b\"unsafe\";\n",
        "}\n"
    );
    assert!(rules("crates/x/src/a.rs", src).is_empty());
}

#[test]
fn allowlist_suppresses_by_rule_and_path() {
    let v = Violation {
        file: Path::new("crates/net/src/shm.rs").to_path_buf(),
        line: 10,
        rule: "order-relaxed",
        message: "m".to_string(),
    };
    let dir = std::env::temp_dir().join(format!("st-lint-allow-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("st-lint.allow");
    std::fs::write(&file, "# comment\norder-relaxed crates/net/\n").expect("write");
    let allow = Allowlist::load(&file);
    assert!(allow.permits(&v));
    let other = Violation {
        rule: "no-unwrap",
        ..v.clone()
    };
    assert!(!allow.permits(&other));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn json_report_is_wellformed_enough() {
    let v = vec![Violation {
        file: Path::new("a \"b\".rs").to_path_buf(),
        line: 3,
        rule: "unsafe-safety",
        message: "needs \\ escaping\n".to_string(),
    }];
    let json = to_json(&v);
    assert!(json.starts_with("[\n"));
    assert!(json.contains("\\\"b\\\""));
    assert!(json.contains("\\\\ escaping\\n"));
    assert!(json.trim_end().ends_with(']'));
}

#[test]
fn chunk_hashing_is_confined_to_store_and_delta() {
    let src = "fn f(chunk: &[u8]) -> u64 {\n    chunk_hash(chunk)\n}\n";
    // A hot serving loop re-deriving checkpoint identity is exactly the bug.
    assert_eq!(
        rules("crates/core/src/serve.rs", src),
        vec!["chunk-hash-confined"]
    );
    let combine = "fn f(hs: &[u64]) -> u64 {\n    combine_hashes(hs)\n}\n";
    assert_eq!(
        rules("crates/core/src/runtime/live.rs", combine),
        vec!["chunk-hash-confined"]
    );
    // The primitives' home modules define and may use them freely.
    assert!(rules("crates/nn/src/store.rs", src).is_empty());
    assert!(rules("crates/nn/src/delta.rs", combine).is_empty());
    // Tests (modules and integration files) may hash to state expectations.
    let test_src =
        "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { chunk_hash(&[1u8]); }\n}\n";
    assert!(rules("crates/core/src/serve.rs", test_src).is_empty());
    assert!(rules("crates/nn/tests/a.rs", src).is_empty());
    // Mentions in comments and strings are not calls.
    let prose =
        "fn f() {\n    // chunk_hash( is discussed here only\n    let s = \"chunk_hash(x)\";\n}\n";
    assert!(rules("crates/core/src/serve.rs", prose).is_empty());
}
