//! The sync facade: `std::sync` names that can be routed through the model
//! checker.
//!
//! In a normal build (no `model-check` feature) every item here is a straight
//! re-export of the `std` original — production code written against this
//! module compiles to exactly the code it would with `use std::sync::...`.
//!
//! With `--features model-check` the same names resolve to instrumented
//! types. Outside a `model::check` closure they still delegate to
//! `std` (so ordinary tests keep working in an instrumented build); inside
//! one, every operation becomes a scheduling and memory-ordering decision
//! point of the checker.

#[cfg(not(feature = "model-check"))]
mod imp {
    pub use std::sync::atomic::{fence, AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
    pub use std::sync::{
        Condvar, LockResult, Mutex, MutexGuard, PoisonError, TryLockError, TryLockResult,
        WaitTimeoutResult,
    };

    /// Thread spawn/join, re-exported from `std::thread`.
    pub mod thread {
        pub use std::thread::{sleep, spawn, yield_now, JoinHandle, Result};
    }
}

#[cfg(feature = "model-check")]
mod imp {
    use crate::model::{self, Registration};
    use std::ops::{Deref, DerefMut};
    use std::sync::Arc;
    use std::time::Duration;

    pub use std::sync::atomic::Ordering;
    pub use std::sync::{LockResult, PoisonError, TryLockError, TryLockResult};

    /// Memory fence: modelled inside a checker execution, `std` otherwise.
    pub fn fence(ord: Ordering) {
        match model::current() {
            Some((exec, me)) => model::fence_op(&exec, me, ord),
            None => std::sync::atomic::fence(ord),
        }
    }

    macro_rules! checked_atomic {
        ($name:ident, $ty:ty, $doc:expr) => {
            #[doc = $doc]
            ///
            /// Instrumented facade type: delegates to the `std` atomic unless
            /// the current thread is running under the model checker.
            pub struct $name {
                std: std::sync::atomic::$name,
                reg: Registration,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(v: $ty) -> Self {
                    Self {
                        std: std::sync::atomic::$name::new(v),
                        reg: Registration::new(),
                    }
                }

                fn loc(&self, exec: &Arc<model::Execution>) -> usize {
                    // ORDER: Relaxed snapshot of the creation value; the
                    // model serializes registration, nothing races this.
                    model::loc_for(exec, &self.reg, || self.std.load(Ordering::Relaxed) as u64)
                }

                /// Loads the value (a decision point under the checker).
                pub fn load(&self, ord: Ordering) -> $ty {
                    match model::current() {
                        Some((exec, me)) => {
                            let loc = self.loc(&exec);
                            model::atomic_load(&exec, me, loc, ord) as $ty
                        }
                        None => self.std.load(ord),
                    }
                }

                /// Stores a value.
                pub fn store(&self, v: $ty, ord: Ordering) {
                    match model::current() {
                        Some((exec, me)) => {
                            let loc = self.loc(&exec);
                            model::atomic_store(&exec, me, loc, v as u64, ord);
                        }
                        None => self.std.store(v, ord),
                    }
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, v: $ty, ord: Ordering) -> $ty {
                    match model::current() {
                        Some((exec, me)) => {
                            let loc = self.loc(&exec);
                            let (old, _) = model::atomic_rmw(
                                &exec,
                                me,
                                loc,
                                ord,
                                // ORDER: Relaxed is the unused failure
                                // ordering of an RMW that cannot fail.
                                Ordering::Relaxed,
                                &mut |_| Some(v as u64),
                            );
                            old as $ty
                        }
                        None => self.std.swap(v, ord),
                    }
                }

                /// Wrapping add; returns the previous value.
                pub fn fetch_add(&self, v: $ty, ord: Ordering) -> $ty {
                    match model::current() {
                        Some((exec, me)) => {
                            let loc = self.loc(&exec);
                            let (old, _) = model::atomic_rmw(
                                &exec,
                                me,
                                loc,
                                ord,
                                // ORDER: Relaxed is the unused failure
                                // ordering of an RMW that cannot fail.
                                Ordering::Relaxed,
                                &mut |old| Some((old as $ty).wrapping_add(v) as u64),
                            );
                            old as $ty
                        }
                        None => self.std.fetch_add(v, ord),
                    }
                }

                /// Wrapping subtract; returns the previous value.
                pub fn fetch_sub(&self, v: $ty, ord: Ordering) -> $ty {
                    match model::current() {
                        Some((exec, me)) => {
                            let loc = self.loc(&exec);
                            let (old, _) = model::atomic_rmw(
                                &exec,
                                me,
                                loc,
                                ord,
                                // ORDER: Relaxed is the unused failure
                                // ordering of an RMW that cannot fail.
                                Ordering::Relaxed,
                                &mut |old| Some((old as $ty).wrapping_sub(v) as u64),
                            );
                            old as $ty
                        }
                        None => self.std.fetch_sub(v, ord),
                    }
                }

                /// Compare-and-exchange; `Ok(previous)` on success.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match model::current() {
                        Some((exec, me)) => {
                            let loc = self.loc(&exec);
                            let (old, committed) =
                                model::atomic_rmw(&exec, me, loc, success, failure, &mut |old| {
                                    if old as $ty == current {
                                        Some(new as u64)
                                    } else {
                                        None
                                    }
                                });
                            if committed {
                                Ok(old as $ty)
                            } else {
                                Err(old as $ty)
                            }
                        }
                        None => self.std.compare_exchange(current, new, success, failure),
                    }
                }

                /// Weak compare-and-exchange. The model treats it as strong
                /// (spurious failures are a strict subset of real CAS-failure
                /// behavior, which retry loops already cover).
                pub fn compare_exchange_weak(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match model::current() {
                        Some(_) => self.compare_exchange(current, new, success, failure),
                        None => self
                            .std
                            .compare_exchange_weak(current, new, success, failure),
                    }
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0 as $ty)
                }
            }
        };
    }

    checked_atomic!(AtomicUsize, usize, "A facade `AtomicUsize`.");
    checked_atomic!(AtomicU64, u64, "A facade `AtomicU64`.");
    checked_atomic!(AtomicU32, u32, "A facade `AtomicU32`.");

    /// A facade `AtomicBool`.
    ///
    /// Instrumented facade type: delegates to the `std` atomic unless the
    /// current thread is running under the model checker.
    pub struct AtomicBool {
        std: std::sync::atomic::AtomicBool,
        reg: Registration,
    }

    impl AtomicBool {
        /// Creates a new atomic with the given initial value.
        pub const fn new(v: bool) -> Self {
            Self {
                std: std::sync::atomic::AtomicBool::new(v),
                reg: Registration::new(),
            }
        }

        fn loc(&self, exec: &Arc<model::Execution>) -> usize {
            // ORDER: Relaxed snapshot of the creation value; the model
            // serializes registration, nothing races this.
            model::loc_for(exec, &self.reg, || self.std.load(Ordering::Relaxed) as u64)
        }

        /// Loads the value (a decision point under the checker).
        pub fn load(&self, ord: Ordering) -> bool {
            match model::current() {
                Some((exec, me)) => {
                    let loc = self.loc(&exec);
                    model::atomic_load(&exec, me, loc, ord) != 0
                }
                None => self.std.load(ord),
            }
        }

        /// Stores a value.
        pub fn store(&self, v: bool, ord: Ordering) {
            match model::current() {
                Some((exec, me)) => {
                    let loc = self.loc(&exec);
                    model::atomic_store(&exec, me, loc, v as u64, ord);
                }
                None => self.std.store(v, ord),
            }
        }

        /// Swaps the value, returning the previous one.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            match model::current() {
                Some((exec, me)) => {
                    let loc = self.loc(&exec);
                    // ORDER: Relaxed is the unused failure ordering of an
                    // RMW that cannot fail.
                    let (old, _) =
                        model::atomic_rmw(&exec, me, loc, ord, Ordering::Relaxed, &mut |_| {
                            Some(v as u64)
                        });
                    old != 0
                }
                None => self.std.swap(v, ord),
            }
        }

        /// Compare-and-exchange; `Ok(previous)` on success.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            match model::current() {
                Some((exec, me)) => {
                    let loc = self.loc(&exec);
                    let (old, committed) =
                        model::atomic_rmw(&exec, me, loc, success, failure, &mut |old| {
                            if (old != 0) == current {
                                Some(new as u64)
                            } else {
                                None
                            }
                        });
                    if committed {
                        Ok(old != 0)
                    } else {
                        Err(old != 0)
                    }
                }
                None => self.std.compare_exchange(current, new, success, failure),
            }
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    /// A facade mutex: `std::sync::Mutex` storage, model-scheduled locking
    /// inside a checker execution.
    pub struct Mutex<T: ?Sized> {
        reg: Registration,
        std: std::sync::Mutex<T>,
    }

    impl<T> Mutex<T> {
        /// Creates a new mutex holding `t`.
        pub const fn new(t: T) -> Self {
            Self {
                reg: Registration::new(),
                std: std::sync::Mutex::new(t),
            }
        }
    }

    impl<T: ?Sized> Mutex<T> {
        /// Acquires the mutex, blocking (cooperatively, under the checker).
        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            match model::current() {
                Some((exec, me)) => {
                    let mid = model::mutex_for(&exec, &self.reg);
                    model::mutex_lock(&exec, me, mid);
                    let std = match self.std.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    Ok(MutexGuard {
                        lock: self,
                        std: Some(std),
                        model: Some((exec, me, mid)),
                    })
                }
                None => match self.std.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock: self,
                        std: Some(g),
                        model: None,
                    }),
                    Err(poisoned) => Err(PoisonError::new(MutexGuard {
                        lock: self,
                        std: Some(poisoned.into_inner()),
                        model: None,
                    })),
                },
            }
        }

        /// Attempts to acquire the mutex without blocking.
        pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
            match model::current() {
                Some((exec, me)) => {
                    let mid = model::mutex_for(&exec, &self.reg);
                    if model::mutex_try_lock(&exec, me, mid) {
                        let std = match self.std.lock() {
                            Ok(g) => g,
                            Err(poisoned) => poisoned.into_inner(),
                        };
                        Ok(MutexGuard {
                            lock: self,
                            std: Some(std),
                            model: Some((exec, me, mid)),
                        })
                    } else {
                        Err(TryLockError::WouldBlock)
                    }
                }
                None => match self.std.try_lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock: self,
                        std: Some(g),
                        model: None,
                    }),
                    Err(TryLockError::WouldBlock) => Err(TryLockError::WouldBlock),
                    Err(TryLockError::Poisoned(poisoned)) => {
                        Err(TryLockError::Poisoned(PoisonError::new(MutexGuard {
                            lock: self,
                            std: Some(poisoned.into_inner()),
                            model: None,
                        })))
                    }
                },
            }
        }
    }

    /// Guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
    pub struct MutexGuard<'a, T: ?Sized> {
        lock: &'a Mutex<T>,
        std: Option<std::sync::MutexGuard<'a, T>>,
        model: Option<(Arc<model::Execution>, usize, usize)>,
    }

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            self.std.as_ref().expect("guard holds the std lock")
        }
    }

    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            self.std.as_mut().expect("guard holds the std lock")
        }
    }

    impl<T: ?Sized> Drop for MutexGuard<'_, T> {
        fn drop(&mut self) {
            self.std = None;
            if let Some((exec, me, mid)) = self.model.take() {
                model::mutex_unlock(&exec, me, mid);
            }
        }
    }

    /// Result of a timed wait; mirrors `std::sync::WaitTimeoutResult`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct WaitTimeoutResult(bool);

    impl WaitTimeoutResult {
        /// True when the wait ended by timeout rather than notification.
        pub fn timed_out(&self) -> bool {
            self.0
        }
    }

    /// A facade condition variable.
    pub struct Condvar {
        reg: Registration,
        std: std::sync::Condvar,
    }

    impl Condvar {
        /// Creates a new condition variable.
        pub const fn new() -> Self {
            Self {
                reg: Registration::new(),
                std: std::sync::Condvar::new(),
            }
        }

        /// Blocks on this condvar until notified.
        pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            match guard.model.clone() {
                Some((exec, me, mid)) => {
                    let cid = model::condvar_for(&exec, &self.reg);
                    guard.std = None;
                    model::condvar_wait(&exec, me, cid, mid, false);
                    let std = match guard.lock.std.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.std = Some(std);
                    Ok(guard)
                }
                None => {
                    let std = guard.std.take().expect("guard holds the std lock");
                    match self.std.wait(std) {
                        Ok(g) => {
                            guard.std = Some(g);
                            Ok(guard)
                        }
                        Err(poisoned) => {
                            guard.std = Some(poisoned.into_inner());
                            Err(PoisonError::new(guard))
                        }
                    }
                }
            }
        }

        /// Blocks on this condvar until notified or `dur` elapses. Under the
        /// checker the timeout is a scheduling *alternative*, not wall time:
        /// both the notified and the timed-out outcome are explored.
        pub fn wait_timeout<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
            dur: Duration,
        ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
            match guard.model.clone() {
                Some((exec, me, mid)) => {
                    let _ = dur;
                    let cid = model::condvar_for(&exec, &self.reg);
                    guard.std = None;
                    let timed_out = model::condvar_wait(&exec, me, cid, mid, true);
                    let std = match guard.lock.std.lock() {
                        Ok(g) => g,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                    guard.std = Some(std);
                    Ok((guard, WaitTimeoutResult(timed_out)))
                }
                None => {
                    let std = guard.std.take().expect("guard holds the std lock");
                    match self.std.wait_timeout(std, dur) {
                        Ok((g, result)) => {
                            guard.std = Some(g);
                            Ok((guard, WaitTimeoutResult(result.timed_out())))
                        }
                        Err(poisoned) => {
                            let (g, result) = poisoned.into_inner();
                            guard.std = Some(g);
                            Err(PoisonError::new((
                                guard,
                                WaitTimeoutResult(result.timed_out()),
                            )))
                        }
                    }
                }
            }
        }

        /// Wakes one waiter (FIFO under the checker).
        pub fn notify_one(&self) {
            match model::current() {
                Some((exec, me)) => {
                    let cid = model::condvar_for(&exec, &self.reg);
                    model::condvar_notify(&exec, me, cid, false);
                }
                None => self.std.notify_one(),
            }
        }

        /// Wakes every waiter.
        pub fn notify_all(&self) {
            match model::current() {
                Some((exec, me)) => {
                    let cid = model::condvar_for(&exec, &self.reg);
                    model::condvar_notify(&exec, me, cid, true);
                }
                None => self.std.notify_all(),
            }
        }
    }

    impl Default for Condvar {
        fn default() -> Self {
            Self::new()
        }
    }

    /// Thread spawn/join routed through the checker when one is active.
    pub mod thread {
        use super::*;

        pub use std::thread::Result;

        enum HandleInner<T> {
            Std(std::thread::JoinHandle<T>),
            Model {
                exec: Arc<model::Execution>,
                tid: usize,
                slot: Arc<std::sync::Mutex<Option<T>>>,
            },
        }

        /// Owned handle to a spawned facade thread.
        pub struct JoinHandle<T> {
            inner: HandleInner<T>,
        }

        impl<T> JoinHandle<T> {
            /// Waits for the thread to finish, returning its value.
            pub fn join(self) -> Result<T> {
                match self.inner {
                    HandleInner::Std(h) => h.join(),
                    HandleInner::Model { exec, tid, slot } => {
                        let me = model::current().map(|(_, me)| me).unwrap_or(0);
                        model::join_thread(&exec, me, tid);
                        match slot
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take()
                        {
                            Some(v) => Ok(v),
                            None => Err(Box::new("model thread produced no value")
                                as Box<dyn std::any::Any + Send>),
                        }
                    }
                }
            }
        }

        /// Spawns a thread; a virtual one when a checker execution is active.
        pub fn spawn<F, T>(f: F) -> JoinHandle<T>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            match model::current() {
                Some((exec, me)) => {
                    let (tid, slot) = model::spawn_thread(&exec, me, f);
                    JoinHandle {
                        inner: HandleInner::Model { exec, tid, slot },
                    }
                }
                None => JoinHandle {
                    inner: HandleInner::Std(std::thread::spawn(f)),
                },
            }
        }

        /// Yields: a plain scheduling point under the checker.
        pub fn yield_now() {
            match model::current() {
                Some((exec, me)) => model::yield_point(&exec, me),
                None => std::thread::yield_now(),
            }
        }

        /// Sleeps. Under the checker time is not modelled; this is a plain
        /// scheduling point (any interleaving a sleep allows is explored).
        pub fn sleep(dur: std::time::Duration) {
            match model::current() {
                Some((exec, me)) => model::yield_point(&exec, me),
                None => std::thread::sleep(dur),
            }
        }
    }
}

pub use imp::*;
