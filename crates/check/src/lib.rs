//! Correctness tooling for the ShadowTutor reproduction.
//!
//! Two halves:
//!
//! - [`sync`] — a facade over `std::sync` (`AtomicUsize`, `Mutex`, `Condvar`,
//!   `thread::spawn`, `fence`, …). Normal builds re-export `std` verbatim;
//!   with the `model-check` feature the same names become instrumented types
//!   driven by `model`, a deterministic schedule-exploring model checker
//!   with per-location store buffers for weak memory orderings. The lock-free
//!   hot paths of `st-net` (shm ring, poller) and `shadowtutor` (steal
//!   protocol) are written against this facade, so the *production* code is
//!   what runs under the checker.
//! - [`lint`] — the token-level scanner behind the `st-lint` binary
//!   (`cargo run -p st-check --bin st-lint -- --deny`), enforcing repo
//!   invariants: `// SAFETY:` before `unsafe`, `// ORDER:` justification on
//!   `Ordering::Relaxed`, no `unwrap`/`expect` in `serve.rs`/`shm.rs`
//!   non-test code, no native-endian byte conversions in `st-net`, and no
//!   `thread::sleep` in reactor code.
//!
//! Knobs (model checker): `ST_CHECK_SEED` picks the deterministic exploration
//! seed, `ST_CHECK_BOUND` the schedule budget. Same seed, same trace.

pub mod lint;
#[cfg(feature = "model-check")]
pub mod model;
pub mod sync;
