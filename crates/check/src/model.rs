//! A deterministic, schedule-exploring model checker (feature `model-check`).
//!
//! [`check`] runs a closure repeatedly, exploring different thread
//! interleavings of every operation performed through the `st_check::sync`
//! facade. The exploration is a depth-first search over *decision points*:
//! which runnable virtual thread runs next, whether a timed wait fires its
//! timeout, and — for non-SeqCst atomics — which of the admissible stores a
//! load observes. Every decision goes through one seeded chooser, so a run is
//! a pure function of `(seed, decision prefix)`: the same seed replays the
//! same trace, and a counterexample is a replayable `(seed, schedule)` pair.
//!
//! # Execution model
//!
//! Each virtual thread is hosted on a real OS thread, but only one is ever
//! *active*: every facade operation first calls into the scheduler, which
//! either keeps the current thread running or parks it and hands the token to
//! another. Cooperative hand-over means the interleaving is exactly the
//! recorded schedule — no OS timing leaks into the result.
//!
//! # Memory-ordering model
//!
//! `SeqCst` operations are exact (a single global order, modeled by a shared
//! `sc_view`). Weaker orderings use per-location store buffers: every store
//! is kept with the *view* (per-location sequence floor) its writer published,
//! and a load may observe any store at or after the loading thread's floor for
//! that location. `Acquire` loads join the observed store's message view into
//! the thread view; `Relaxed` loads only record it for a later acquire fence.
//! A wrong `Relaxed` is therefore observable as a stale read (the load picks
//! an old store) rather than silently behaving like SeqCst.
//!
//! # Bounds
//!
//! Exploration is bounded three ways: a preemption bound (schedules with more
//! than N involuntary context switches are not explored — the CHESS result is
//! that almost all bugs show up with 2), a per-execution step bound (livelock
//! detection), and a total schedule budget (`ST_CHECK_BOUND`). "Exhausted"
//! in a [`Report`] means the DFS completed within those bounds.
//!
//! # State must live inside the closure
//!
//! The checker re-runs the closure once per schedule; any state created
//! *outside* the closure (and captured by reference) keeps its mutations from
//! earlier schedules. Build the whole object graph inside the closure, as the
//! tests in `crates/net/tests/model_ring.rs` do.

use std::any::Any;
use std::cell::RefCell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

pub use std::sync::atomic::Ordering;

/// Hard cap on virtual threads per execution (sanity bound, not a tunable).
const MAX_THREADS: usize = 16;
/// Hard cap on recorded trace events per execution.
const TRACE_CAP: usize = 4096;

// ---------------------------------------------------------------------------
// Public configuration and results
// ---------------------------------------------------------------------------

/// Exploration bounds and the replay seed.
#[derive(Debug, Clone)]
pub struct Config {
    /// Maximum number of schedules (executions) to explore.
    pub max_schedules: usize,
    /// Maximum facade operations in one execution before it is reported as a
    /// livelock.
    pub max_steps: usize,
    /// Maximum involuntary context switches per execution (`None` = unbounded
    /// — beware exponential blowup on anything but tiny programs).
    pub preemption_bound: Option<usize>,
    /// Seed for the deterministic first-choice rotation. The same seed always
    /// explores the same schedules in the same order.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 20_000,
            max_steps: 10_000,
            preemption_bound: Some(2),
            seed: 0x5eed_cafe,
        }
    }
}

impl Config {
    /// Default config with `ST_CHECK_BOUND` (schedule budget) and
    /// `ST_CHECK_SEED` (replay seed) read from the environment.
    pub fn from_env() -> Self {
        let mut cfg = Config::default();
        if let Some(n) = std::env::var("ST_CHECK_BOUND")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.max_schedules = n;
        }
        if let Some(n) = std::env::var("ST_CHECK_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            cfg.seed = n;
        }
        cfg
    }
}

/// Outcome of a [`check_with`] exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of schedules actually executed.
    pub schedules: usize,
    /// True when the DFS ran out of new schedules within the configured
    /// bounds (rather than hitting the schedule budget or a failure).
    pub exhausted: bool,
    /// The first failing schedule, if any.
    pub counterexample: Option<Counterexample>,
}

/// A replayable failing schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counterexample {
    /// The failure (assertion message, deadlock, or livelock description).
    pub message: String,
    /// Per-operation event log of the failing execution.
    pub trace: Vec<String>,
    /// Seed the exploration ran under; replaying with this seed and
    /// `schedule` as the decision prefix reproduces the failure.
    pub seed: u64,
    /// The decision sequence (scheduler and value choices) of the failure.
    pub schedule: Vec<usize>,
}

impl Counterexample {
    /// Multi-line human-readable rendering (message, replay info, trace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("model check failed: {}\n", self.message));
        out.push_str(&format!(
            "replay: seed={} schedule={:?}\n",
            self.seed, self.schedule
        ));
        out.push_str("trace:\n");
        for line in &self.trace {
            out.push_str("  ");
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Internal execution state
// ---------------------------------------------------------------------------

/// Panic payload used to tear threads down once an execution aborts.
struct ModelAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TState {
    Runnable,
    BlockedMutex(usize),
    BlockedCondvar { cid: usize, can_timeout: bool },
    BlockedJoin(usize),
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Alt {
    Run(usize),
    TimeoutWake(usize),
}

struct VThread {
    state: TState,
    /// Set when the thread was released from a timed wait by its timeout
    /// alternative rather than a notification.
    timed_out: bool,
    /// Per-location sequence floor: the newest store this thread must see.
    view: Vec<u64>,
    /// Views of relaxed-read stores, applied by a later acquire fence.
    pending_acquire: Vec<u64>,
    /// View captured by the last release fence, attached to later relaxed
    /// stores (fence-to-fence synchronization).
    fence_release: Option<Vec<u64>>,
    /// View at exit, joined by whoever joins this thread.
    final_view: Vec<u64>,
}

impl VThread {
    fn runnable(view: Vec<u64>) -> Self {
        VThread {
            state: TState::Runnable,
            timed_out: false,
            view,
            pending_acquire: Vec::new(),
            fence_release: None,
            final_view: Vec::new(),
        }
    }
}

struct Store {
    /// Position in this location's modification order (globally allocated).
    seq: u64,
    value: u64,
    /// Message view: what a reader that synchronizes with this store learns.
    view: Vec<u64>,
}

struct Loc {
    stores: Vec<Store>,
}

struct MutexState {
    owner: Option<usize>,
    /// View deposited by the last unlock, joined by the next lock.
    view: Vec<u64>,
}

struct CondvarState {
    waiters: Vec<usize>,
}

enum Pick {
    Next(usize),
    AllDone,
    Stuck(String),
}

struct Inner {
    threads: Vec<VThread>,
    active: usize,
    prefix: Vec<usize>,
    decisions: Vec<(usize, usize)>,
    seed: u64,
    steps: usize,
    max_steps: usize,
    preemption_bound: Option<usize>,
    preemptions: usize,
    next_seq: u64,
    locs: Vec<Loc>,
    sc_view: Vec<u64>,
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    trace: Vec<String>,
    failure: Option<String>,
    aborted: bool,
    completed: bool,
    os_exited: usize,
}

impl Inner {
    fn new(cfg: &Config, prefix: Vec<usize>) -> Self {
        Inner {
            threads: Vec::new(),
            active: 0,
            prefix,
            decisions: Vec::new(),
            seed: cfg.seed,
            steps: 0,
            max_steps: cfg.max_steps,
            preemption_bound: cfg.preemption_bound,
            preemptions: 0,
            next_seq: 1,
            locs: Vec::new(),
            sc_view: Vec::new(),
            mutexes: Vec::new(),
            condvars: Vec::new(),
            trace: Vec::new(),
            failure: None,
            aborted: false,
            completed: false,
            os_exited: 0,
        }
    }

    fn trace(&mut self, tid: usize, event: String) {
        if self.trace.len() < TRACE_CAP {
            self.trace.push(format!("t{tid}: {event}"));
        }
    }

    fn fail(&mut self, msg: String) {
        if self.failure.is_none() {
            self.failure = Some(msg);
        }
        self.aborted = true;
    }

    fn alloc_seq(&mut self) -> u64 {
        let s = self.next_seq;
        self.next_seq += 1;
        s
    }

    /// One decision: replay from the prefix when inside it, otherwise take
    /// the seed-rotated first choice. Records `(choice, n)` for the DFS.
    fn choose(&mut self, n: usize) -> usize {
        let depth = self.decisions.len();
        let choice = if depth < self.prefix.len() {
            let c = self.prefix[depth];
            debug_assert!(
                c < n,
                "replay divergence: choice {c} of {n} at depth {depth}"
            );
            if c < n {
                c
            } else {
                0
            }
        } else {
            rotation(self.seed, depth as u64, n)
        };
        self.decisions.push((choice, n));
        choice
    }

    /// Pick the next active thread. `me_runnable` is true when the caller is
    /// still runnable (a voluntary yield point rather than a blocking one).
    fn pick_next(&mut self, me: usize, me_runnable: bool) -> Pick {
        let mut alts: Vec<Alt> = Vec::new();
        for (t, th) in self.threads.iter().enumerate() {
            match th.state {
                TState::Runnable => alts.push(Alt::Run(t)),
                TState::BlockedCondvar {
                    can_timeout: true, ..
                } => alts.push(Alt::TimeoutWake(t)),
                _ => {}
            }
        }
        if alts.is_empty() {
            if self
                .threads
                .iter()
                .all(|t| matches!(t.state, TState::Finished))
            {
                return Pick::AllDone;
            }
            let states: Vec<String> = self
                .threads
                .iter()
                .enumerate()
                .map(|(t, th)| format!("t{t}={:?}", th.state))
                .collect();
            return Pick::Stuck(format!(
                "deadlock: no schedulable thread ({})",
                states.join(" ")
            ));
        }
        if me_runnable {
            if let Some(bound) = self.preemption_bound {
                if self.preemptions >= bound && alts.len() > 1 && alts.contains(&Alt::Run(me)) {
                    // Preemption budget spent: keep running until we block.
                    alts = vec![Alt::Run(me)];
                }
            }
        }
        let idx = if alts.len() > 1 {
            self.choose(alts.len())
        } else {
            0
        };
        let tid = match alts[idx] {
            Alt::Run(t) => t,
            Alt::TimeoutWake(t) => {
                if let TState::BlockedCondvar { cid, .. } = self.threads[t].state {
                    self.condvars[cid].waiters.retain(|&w| w != t);
                }
                self.threads[t].state = TState::Runnable;
                self.threads[t].timed_out = true;
                self.trace(t, "wait times out".to_string());
                t
            }
        };
        if me_runnable && tid != me {
            self.preemptions += 1;
        }
        self.active = tid;
        Pick::Next(tid)
    }
}

// ---------------------------------------------------------------------------
// Execution handle and thread-local context
// ---------------------------------------------------------------------------

/// One in-flight execution (one schedule). Shared by every virtual thread.
pub(crate) struct Execution {
    inner: StdMutex<Inner>,
    cv: StdCondvar,
    epoch: u64,
    handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

/// The (execution, virtual-thread-id) of the current OS thread, if it is
/// hosting a model-checked thread. `None` means facade ops fall back to std.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

fn lock_inner(exec: &Execution) -> StdMutexGuard<'_, Inner> {
    exec.inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn ensure_live<'a>(exec: &'a Execution, g: StdMutexGuard<'a, Inner>) -> StdMutexGuard<'a, Inner> {
    if g.aborted {
        drop(g);
        exec.cv.notify_all();
        panic::panic_any(ModelAbort);
    }
    g
}

fn fail_and_abort(exec: &Execution, mut g: StdMutexGuard<'_, Inner>, msg: String) -> ! {
    g.fail(msg);
    drop(g);
    exec.cv.notify_all();
    panic::panic_any(ModelAbort);
}

fn wait_until_active<'a>(
    exec: &'a Execution,
    mut g: StdMutexGuard<'a, Inner>,
    me: usize,
) -> StdMutexGuard<'a, Inner> {
    loop {
        if g.aborted {
            drop(g);
            exec.cv.notify_all();
            panic::panic_any(ModelAbort);
        }
        if g.active == me && matches!(g.threads[me].state, TState::Runnable) {
            return g;
        }
        g = exec
            .cv
            .wait(g)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }
}

/// The scheduler entry every facade operation passes through: counts a step,
/// lets the DFS decide who runs next, and parks the caller if it lost the
/// token.
pub(crate) fn yield_point(exec: &Arc<Execution>, me: usize) {
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    g.steps += 1;
    if g.steps > g.max_steps {
        let max = g.max_steps;
        fail_and_abort(
            exec,
            g,
            format!("step bound exceeded ({max} facade ops): possible livelock"),
        );
    }
    match g.pick_next(me, true) {
        Pick::Next(next) if next == me => {}
        Pick::Next(_) => {
            exec.cv.notify_all();
            let g = wait_until_active(exec, g, me);
            drop(g);
        }
        Pick::AllDone => unreachable!("a running thread cannot observe completion"),
        Pick::Stuck(msg) => fail_and_abort(exec, g, msg),
    }
}

// ---------------------------------------------------------------------------
// Lazy registration of sync objects into the current execution
// ---------------------------------------------------------------------------

/// Maps a facade object to its per-execution id. Objects can outlive an
/// execution (or be created before one), so the id is keyed by the execution
/// epoch and re-minted lazily.
pub(crate) struct Registration {
    slot: StdMutex<Option<(u64, usize)>>,
}

impl Registration {
    pub(crate) const fn new() -> Self {
        Registration {
            slot: StdMutex::new(None),
        }
    }

    fn resolve(&self, exec: &Execution, mint: impl FnOnce() -> usize) -> usize {
        let mut slot = self
            .slot
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some((epoch, id)) = *slot {
            if epoch == exec.epoch {
                return id;
            }
        }
        let id = mint();
        *slot = Some((exec.epoch, id));
        id
    }
}

/// Atomic-location id for `reg`, registering it (with `init` as the initial
/// value) on first touch in this execution.
pub(crate) fn loc_for(
    exec: &Arc<Execution>,
    reg: &Registration,
    init: impl FnOnce() -> u64,
) -> usize {
    reg.resolve(exec, || {
        let initial = init();
        let mut g = lock_inner(exec);
        let id = g.locs.len();
        g.locs.push(Loc {
            stores: vec![Store {
                seq: 0,
                value: initial,
                view: Vec::new(),
            }],
        });
        id
    })
}

/// Mutex id for `reg` in this execution.
pub(crate) fn mutex_for(exec: &Arc<Execution>, reg: &Registration) -> usize {
    reg.resolve(exec, || {
        let mut g = lock_inner(exec);
        let id = g.mutexes.len();
        g.mutexes.push(MutexState {
            owner: None,
            view: Vec::new(),
        });
        id
    })
}

/// Condvar id for `reg` in this execution.
pub(crate) fn condvar_for(exec: &Arc<Execution>, reg: &Registration) -> usize {
    reg.resolve(exec, || {
        let mut g = lock_inner(exec);
        let id = g.condvars.len();
        g.condvars.push(CondvarState {
            waiters: Vec::new(),
        });
        id
    })
}

// ---------------------------------------------------------------------------
// View helpers (per-location sequence floors)
// ---------------------------------------------------------------------------

fn vget(v: &[u64], i: usize) -> u64 {
    v.get(i).copied().unwrap_or(0)
}

fn vset(v: &mut Vec<u64>, i: usize, val: u64) {
    if v.len() <= i {
        v.resize(i + 1, 0);
    }
    if v[i] < val {
        v[i] = val;
    }
}

fn join_view(dst: &mut Vec<u64>, src: &[u64]) {
    if dst.len() < src.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        if *d < *s {
            *d = *s;
        }
    }
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn rotation(seed: u64, depth: u64, n: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    (splitmix(seed ^ depth.wrapping_mul(0x9e37_79b9_7f4a_7c15)) % n as u64) as usize
}

// ---------------------------------------------------------------------------
// Atomic operations
// ---------------------------------------------------------------------------

/// Modelled atomic load: picks (a decision point) among the stores the
/// thread's view admits, then applies the ordering's view transfer.
pub(crate) fn atomic_load(exec: &Arc<Execution>, me: usize, loc: usize, ord: Ordering) -> u64 {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    if matches!(ord, Ordering::SeqCst) {
        let sc = g.sc_view.clone();
        join_view(&mut g.threads[me].view, &sc);
    }
    let floor = vget(&g.threads[me].view, loc);
    let n_stores = g.locs[loc].stores.len();
    let start = g.locs[loc]
        .stores
        .iter()
        .position(|s| s.seq >= floor)
        .unwrap_or(n_stores - 1);
    let picked = if n_stores - start > 1 {
        start + g.choose(n_stores - start)
    } else {
        start
    };
    let stale = picked + 1 < n_stores;
    let (seq, value, msg_view) = {
        let s = &g.locs[loc].stores[picked];
        (s.seq, s.value, s.view.clone())
    };
    vset(&mut g.threads[me].view, loc, seq);
    if is_acquire(ord) {
        join_view(&mut g.threads[me].view, &msg_view);
    } else {
        join_view(&mut g.threads[me].pending_acquire, &msg_view);
    }
    if matches!(ord, Ordering::SeqCst) {
        let v = g.threads[me].view.clone();
        join_view(&mut g.sc_view, &v);
    }
    let tag = if stale { " [stale]" } else { "" };
    g.trace(me, format!("load a{loc} ({ord:?}) -> {value}{tag}"));
    value
}

/// Modelled atomic store.
pub(crate) fn atomic_store(
    exec: &Arc<Execution>,
    me: usize,
    loc: usize,
    value: u64,
    ord: Ordering,
) {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    if matches!(ord, Ordering::SeqCst) {
        let sc = g.sc_view.clone();
        join_view(&mut g.threads[me].view, &sc);
    }
    let seq = g.alloc_seq();
    vset(&mut g.threads[me].view, loc, seq);
    let mut msg = if is_release(ord) {
        g.threads[me].view.clone()
    } else {
        g.threads[me].fence_release.clone().unwrap_or_default()
    };
    vset(&mut msg, loc, seq);
    g.locs[loc].stores.push(Store {
        seq,
        value,
        view: msg,
    });
    if matches!(ord, Ordering::SeqCst) {
        let v = g.threads[me].view.clone();
        join_view(&mut g.sc_view, &v);
    }
    g.trace(me, format!("store a{loc} ({ord:?}) <- {value}"));
    drop(g);
}

/// Modelled read-modify-write. `f` returns `Some(new)` to commit (fetch_add,
/// swap, successful CAS) or `None` to fail (CAS mismatch). Always reads the
/// latest store in modification order, as RMWs must. Returns
/// `(observed, committed)`.
pub(crate) fn atomic_rmw(
    exec: &Arc<Execution>,
    me: usize,
    loc: usize,
    ord_ok: Ordering,
    ord_fail: Ordering,
    f: &mut dyn FnMut(u64) -> Option<u64>,
) -> (u64, bool) {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    if matches!(ord_ok, Ordering::SeqCst) || matches!(ord_fail, Ordering::SeqCst) {
        let sc = g.sc_view.clone();
        join_view(&mut g.threads[me].view, &sc);
    }
    let (last_seq, observed, last_view) = {
        let s = g.locs[loc]
            .stores
            .last()
            .expect("location has an initial store");
        (s.seq, s.value, s.view.clone())
    };
    vset(&mut g.threads[me].view, loc, last_seq);
    match f(observed) {
        Some(new) => {
            if is_acquire(ord_ok) {
                join_view(&mut g.threads[me].view, &last_view);
            } else {
                join_view(&mut g.threads[me].pending_acquire, &last_view);
            }
            let seq = g.alloc_seq();
            vset(&mut g.threads[me].view, loc, seq);
            let mut msg = if is_release(ord_ok) {
                g.threads[me].view.clone()
            } else {
                g.threads[me].fence_release.clone().unwrap_or_default()
            };
            // Release-sequence continuation: an RMW carries forward the
            // message view of the store it replaced.
            join_view(&mut msg, &last_view);
            vset(&mut msg, loc, seq);
            g.locs[loc].stores.push(Store {
                seq,
                value: new,
                view: msg,
            });
            if matches!(ord_ok, Ordering::SeqCst) {
                let v = g.threads[me].view.clone();
                join_view(&mut g.sc_view, &v);
            }
            g.trace(me, format!("rmw a{loc} ({ord_ok:?}) {observed} -> {new}"));
            (observed, true)
        }
        None => {
            if is_acquire(ord_fail) {
                join_view(&mut g.threads[me].view, &last_view);
            } else {
                join_view(&mut g.threads[me].pending_acquire, &last_view);
            }
            g.trace(me, format!("rmw a{loc} failed at {observed}"));
            (observed, false)
        }
    }
}

/// Modelled memory fence.
pub(crate) fn fence_op(exec: &Arc<Execution>, me: usize, ord: Ordering) {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    if is_acquire(ord) {
        let pending = g.threads[me].pending_acquire.clone();
        join_view(&mut g.threads[me].view, &pending);
    }
    if matches!(ord, Ordering::SeqCst) {
        let sc = g.sc_view.clone();
        join_view(&mut g.threads[me].view, &sc);
    }
    if is_release(ord) {
        g.threads[me].fence_release = Some(g.threads[me].view.clone());
    }
    if matches!(ord, Ordering::SeqCst) {
        let v = g.threads[me].view.clone();
        join_view(&mut g.sc_view, &v);
    }
    g.trace(me, format!("fence ({ord:?})"));
    drop(g);
}

// ---------------------------------------------------------------------------
// Mutex and condvar operations
// ---------------------------------------------------------------------------

/// Block until the modelled mutex is acquired.
pub(crate) fn mutex_lock(exec: &Arc<Execution>, me: usize, mid: usize) {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    loop {
        g = ensure_live(exec, g);
        if g.mutexes[mid].owner.is_none() {
            g.mutexes[mid].owner = Some(me);
            let mv = g.mutexes[mid].view.clone();
            join_view(&mut g.threads[me].view, &mv);
            g.trace(me, format!("lock m{mid}"));
            return;
        }
        g.threads[me].state = TState::BlockedMutex(mid);
        g.trace(me, format!("block on m{mid}"));
        match g.pick_next(me, false) {
            Pick::Next(_) => {}
            Pick::AllDone => unreachable!("blocked thread exists, cannot be done"),
            Pick::Stuck(msg) => fail_and_abort(exec, g, msg),
        }
        exec.cv.notify_all();
        g = wait_until_active(exec, g, me);
    }
}

/// Non-blocking acquire attempt; true on success.
pub(crate) fn mutex_try_lock(exec: &Arc<Execution>, me: usize, mid: usize) -> bool {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    if g.mutexes[mid].owner.is_none() {
        g.mutexes[mid].owner = Some(me);
        let mv = g.mutexes[mid].view.clone();
        join_view(&mut g.threads[me].view, &mv);
        g.trace(me, format!("try_lock m{mid} -> acquired"));
        true
    } else {
        g.trace(me, format!("try_lock m{mid} -> busy"));
        false
    }
}

/// Release the modelled mutex, waking blocked lockers. Safe to call during
/// unwinding (guard drops while a failure propagates): it then tears state
/// down without scheduling.
pub(crate) fn mutex_unlock(exec: &Arc<Execution>, me: usize, mid: usize) {
    if std::thread::panicking() {
        let mut g = lock_inner(exec);
        if g.mutexes[mid].owner == Some(me) {
            g.mutexes[mid].owner = None;
            for t in 0..g.threads.len() {
                if g.threads[t].state == TState::BlockedMutex(mid) {
                    g.threads[t].state = TState::Runnable;
                }
            }
        }
        drop(g);
        exec.cv.notify_all();
        return;
    }
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    debug_assert_eq!(g.mutexes[mid].owner, Some(me), "unlock by non-owner");
    g.mutexes[mid].view = g.threads[me].view.clone();
    g.mutexes[mid].owner = None;
    for t in 0..g.threads.len() {
        if g.threads[t].state == TState::BlockedMutex(mid) {
            g.threads[t].state = TState::Runnable;
        }
    }
    g.trace(me, format!("unlock m{mid}"));
    drop(g);
}

/// Modelled `Condvar::wait[_timeout]`: releases `mid`, blocks on `cid`
/// (with a timeout alternative when `can_timeout`), then reacquires `mid`.
/// Returns true when released by the timeout rather than a notification.
pub(crate) fn condvar_wait(
    exec: &Arc<Execution>,
    me: usize,
    cid: usize,
    mid: usize,
    can_timeout: bool,
) -> bool {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    debug_assert_eq!(g.mutexes[mid].owner, Some(me), "wait without the lock");
    g.mutexes[mid].view = g.threads[me].view.clone();
    g.mutexes[mid].owner = None;
    for t in 0..g.threads.len() {
        if g.threads[t].state == TState::BlockedMutex(mid) {
            g.threads[t].state = TState::Runnable;
        }
    }
    g.threads[me].timed_out = false;
    g.threads[me].state = TState::BlockedCondvar { cid, can_timeout };
    g.condvars[cid].waiters.push(me);
    g.trace(me, format!("wait c{cid} (releases m{mid})"));
    match g.pick_next(me, false) {
        Pick::Next(_) => {}
        Pick::AllDone => unreachable!("waiting thread exists, cannot be done"),
        Pick::Stuck(msg) => fail_and_abort(exec, g, msg),
    }
    exec.cv.notify_all();
    g = wait_until_active(exec, g, me);
    let timed_out = g.threads[me].timed_out;
    // Reacquire the mutex before returning to the caller.
    loop {
        g = ensure_live(exec, g);
        if g.mutexes[mid].owner.is_none() {
            g.mutexes[mid].owner = Some(me);
            let mv = g.mutexes[mid].view.clone();
            join_view(&mut g.threads[me].view, &mv);
            g.trace(me, format!("reacquire m{mid} after wait"));
            return timed_out;
        }
        g.threads[me].state = TState::BlockedMutex(mid);
        match g.pick_next(me, false) {
            Pick::Next(_) => {}
            Pick::AllDone => unreachable!("blocked thread exists, cannot be done"),
            Pick::Stuck(msg) => fail_and_abort(exec, g, msg),
        }
        exec.cv.notify_all();
        g = wait_until_active(exec, g, me);
    }
}

/// Modelled notify: wakes one (FIFO) or all waiters of `cid`.
pub(crate) fn condvar_notify(exec: &Arc<Execution>, me: usize, cid: usize, all: bool) {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    g = ensure_live(exec, g);
    let woken: Vec<usize> = if all {
        std::mem::take(&mut g.condvars[cid].waiters)
    } else if g.condvars[cid].waiters.is_empty() {
        Vec::new()
    } else {
        vec![g.condvars[cid].waiters.remove(0)]
    };
    for t in &woken {
        g.threads[*t].state = TState::Runnable;
        g.threads[*t].timed_out = false;
    }
    let kind = if all { "notify_all" } else { "notify_one" };
    g.trace(me, format!("{kind} c{cid} (woke {woken:?})"));
    drop(g);
}

// ---------------------------------------------------------------------------
// Thread spawn / join / exit
// ---------------------------------------------------------------------------

fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            // Model threads report failures through the counterexample; the
            // teardown payload and in-model user panics stay off stderr.
            let in_model = CTX.with(|c| c.borrow().is_some());
            let is_abort = info.payload().downcast_ref::<ModelAbort>().is_some();
            if !(in_model || is_abort) {
                prev(info);
            }
        }));
    });
}

/// Spawn a virtual thread running `f`; returns its id and the slot its
/// return value lands in.
pub(crate) fn spawn_thread<F, T>(
    exec: &Arc<Execution>,
    me: usize,
    f: F,
) -> (usize, Arc<StdMutex<Option<T>>>)
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    yield_point(exec, me);
    let tid = {
        let mut g = lock_inner(exec);
        g = ensure_live(exec, g);
        if g.threads.len() >= MAX_THREADS {
            fail_and_abort(
                exec,
                g,
                format!("thread cap exceeded ({MAX_THREADS} virtual threads)"),
            );
        }
        let tid = g.threads.len();
        let view = g.threads[me].view.clone();
        g.threads.push(VThread::runnable(view));
        g.trace(me, format!("spawn t{tid}"));
        tid
    };
    let slot: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
    let value_slot = slot.clone();
    let child_exec = exec.clone();
    let os = std::thread::Builder::new()
        .name(format!("st-check-{tid}"))
        .spawn(move || {
            run_vthread(child_exec, tid, move || {
                let v = f();
                *value_slot
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(v);
            });
        })
        .expect("spawn model OS thread");
    exec.handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(os);
    (tid, slot)
}

/// Block until `target` finishes, joining its final view.
pub(crate) fn join_thread(exec: &Arc<Execution>, me: usize, target: usize) {
    yield_point(exec, me);
    let mut g = lock_inner(exec);
    loop {
        g = ensure_live(exec, g);
        if matches!(g.threads[target].state, TState::Finished) {
            let fv = g.threads[target].final_view.clone();
            join_view(&mut g.threads[me].view, &fv);
            g.trace(me, format!("join t{target}"));
            return;
        }
        g.threads[me].state = TState::BlockedJoin(target);
        match g.pick_next(me, false) {
            Pick::Next(_) => {}
            Pick::AllDone => unreachable!("joining thread exists, cannot be done"),
            Pick::Stuck(msg) => fail_and_abort(exec, g, msg),
        }
        exec.cv.notify_all();
        g = wait_until_active(exec, g, me);
    }
}

fn finish_thread(exec: &Arc<Execution>, tid: usize) {
    let mut g = lock_inner(exec);
    g.threads[tid].state = TState::Finished;
    g.threads[tid].final_view = std::mem::take(&mut g.threads[tid].view);
    for t in 0..g.threads.len() {
        if g.threads[t].state == TState::BlockedJoin(tid) {
            g.threads[t].state = TState::Runnable;
        }
    }
    g.trace(tid, "exit".to_string());
    if g.aborted {
        drop(g);
        exec.cv.notify_all();
        return;
    }
    match g.pick_next(tid, false) {
        Pick::Next(_) => {}
        Pick::AllDone => g.completed = true,
        Pick::Stuck(msg) => g.fail(msg),
    }
    drop(g);
    exec.cv.notify_all();
}

/// Body of every OS thread hosting a virtual thread.
fn run_vthread(exec: Arc<Execution>, tid: usize, body: impl FnOnce() + Send) {
    CTX.with(|c| *c.borrow_mut() = Some((exec.clone(), tid)));
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        {
            let g = lock_inner(&exec);
            let g = wait_until_active(&exec, g, tid);
            drop(g);
        }
        body();
    }));
    CTX.with(|c| *c.borrow_mut() = None);
    match result {
        Ok(()) => finish_thread(&exec, tid),
        Err(payload) => {
            let mut g = lock_inner(&exec);
            if payload.downcast_ref::<ModelAbort>().is_none() {
                let msg = panic_message(payload.as_ref());
                g.fail(format!("t{tid} panicked: {msg}"));
            }
            g.threads[tid].state = TState::Finished;
            drop(g);
            exec.cv.notify_all();
        }
    }
    // Last act: let the driver know this OS thread is gone so it can join
    // every handle before reusing registrations in the next execution.
    let mut g = lock_inner(&exec);
    g.os_exited += 1;
    drop(g);
    exec.cv.notify_all();
}

// ---------------------------------------------------------------------------
// Driver: one execution, then the DFS over schedules
// ---------------------------------------------------------------------------

struct RunOutcome {
    decisions: Vec<(usize, usize)>,
    failure: Option<String>,
    trace: Vec<String>,
}

fn run_once(cfg: &Config, prefix: Vec<usize>, f: Arc<dyn Fn() + Send + Sync>) -> RunOutcome {
    install_quiet_hook();
    static EPOCH: StdAtomicU64 = StdAtomicU64::new(1);
    let epoch = EPOCH.fetch_add(1, StdOrdering::SeqCst);
    let exec = Arc::new(Execution {
        inner: StdMutex::new(Inner::new(cfg, prefix)),
        cv: StdCondvar::new(),
        epoch,
        handles: StdMutex::new(Vec::new()),
    });
    {
        let mut g = lock_inner(&exec);
        g.threads.push(VThread::runnable(Vec::new()));
        g.active = 0;
    }
    let root_exec = exec.clone();
    let root = std::thread::Builder::new()
        .name("st-check-0".to_string())
        .spawn(move || run_vthread(root_exec, 0, move || f()))
        .expect("spawn model root thread");
    exec.handles
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(root);
    {
        let mut g = lock_inner(&exec);
        while !(g.completed || g.aborted) {
            g = exec
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        // Every OS thread must be on its way out before we reap handles:
        // stragglers re-registering into a stale execution would leak state
        // into the next schedule.
        while g.os_exited < g.threads.len() {
            g = exec
                .cv
                .wait(g)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }
    loop {
        let handle = exec
            .handles
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop();
        match handle {
            Some(h) => {
                let _ = h.join();
            }
            None => break,
        }
    }
    let g = lock_inner(&exec);
    RunOutcome {
        decisions: g.decisions.clone(),
        failure: g.failure.clone(),
        trace: g.trace.clone(),
    }
}

/// Explore schedules of `f` under `cfg`; returns the exploration [`Report`].
///
/// Use this form for mutant tests (assert `counterexample.is_some()`) and
/// for asserting exhaustiveness; use [`check`] for plain pass/fail tests.
pub fn check_with<F>(cfg: Config, f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    assert!(
        current().is_none(),
        "st-check does not support nested model executions"
    );
    let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
    let mut prefix: Vec<usize> = Vec::new();
    let mut schedules = 0usize;
    loop {
        let run = run_once(&cfg, prefix.clone(), f.clone());
        schedules += 1;
        if let Some(message) = run.failure {
            return Report {
                schedules,
                exhausted: false,
                counterexample: Some(Counterexample {
                    message,
                    trace: run.trace,
                    seed: cfg.seed,
                    schedule: run.decisions.iter().map(|d| d.0).collect(),
                }),
            };
        }
        // DFS: advance the deepest decision that still has an untried
        // alternative (the first choice at each depth is the seed rotation,
        // so "untried" means the successor has not wrapped back to it).
        let mut next: Option<Vec<usize>> = None;
        for depth in (0..run.decisions.len()).rev() {
            let (choice, n) = run.decisions[depth];
            let first = rotation(cfg.seed, depth as u64, n);
            let successor = (choice + 1) % n;
            if successor != first {
                let mut p: Vec<usize> = run.decisions[..depth].iter().map(|d| d.0).collect();
                p.push(successor);
                next = Some(p);
                break;
            }
        }
        match next {
            None => {
                return Report {
                    schedules,
                    exhausted: true,
                    counterexample: None,
                }
            }
            Some(_) if schedules >= cfg.max_schedules => {
                return Report {
                    schedules,
                    exhausted: false,
                    counterexample: None,
                }
            }
            Some(p) => prefix = p,
        }
    }
}

/// Explore schedules of `f` with [`Config::from_env`]; panics with a rendered
/// replayable counterexample if any schedule fails.
pub fn check<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let report = check_with(Config::from_env(), f);
    if let Some(cx) = report.counterexample {
        panic!("{}", cx.render());
    }
}
