//! `st-lint` — the repo invariant scanner.
//!
//! ```text
//! cargo run -p st-check --bin st-lint -- [--root DIR] [--deny] [--report FILE]
//! ```
//!
//! Prints one line per finding (`path:line: [rule] message`). With `--deny`
//! the exit code is non-zero when any finding remains after the allowlist;
//! `--report FILE` additionally writes the findings as JSON (the CI
//! artifact). See `st_check::lint` for the rule set.

use std::path::PathBuf;
use std::process::ExitCode;

use st_check::lint;

const USAGE: &str = "usage: st-lint [--root DIR] [--deny] [--report FILE]";

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    let mut report: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny" => deny = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("st-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--report" => match args.next() {
                Some(file) => report = Some(PathBuf::from(file)),
                None => {
                    eprintln!("st-lint: --report needs a file\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("st-lint: unknown argument `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let violations = match lint::lint_tree(&root) {
        Ok(v) => v,
        Err(err) => {
            eprintln!("st-lint: scan failed: {err}");
            return ExitCode::from(2);
        }
    };
    for v in &violations {
        println!("{v}");
    }
    if let Some(path) = &report {
        if let Err(err) = std::fs::write(path, lint::to_json(&violations)) {
            eprintln!("st-lint: writing report {}: {err}", path.display());
            return ExitCode::from(2);
        }
    }
    if violations.is_empty() {
        println!("st-lint: clean");
        ExitCode::SUCCESS
    } else {
        println!("st-lint: {} finding(s)", violations.len());
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
