//! The token-level scanner behind the `st-lint` binary.
//!
//! Rules enforced (see [`lint_source`]):
//!
//! | rule | scope | requirement |
//! |------|-------|-------------|
//! | `unsafe-safety` | every file | `unsafe` blocks/impls carry a `// SAFETY:` comment on the same or one of the 3 preceding lines |
//! | `order-relaxed` | non-test code | `Ordering::Relaxed` carries a `// ORDER:` justification nearby |
//! | `no-unwrap` | `serve.rs`, `shm.rs` non-test code | no `.unwrap()` / `.expect(` |
//! | `ne-bytes` | `crates/net/` | no `to_ne_bytes` / `from_ne_bytes` (wire format is little-endian only) |
//! | `no-sleep` | `serve.rs`, `poll.rs` non-test code | no `std::thread::sleep` in reactor code |
//! | `ignored-send` | `serve.rs`, `steal.rs`, `live.rs` non-test code | no `let _ = …send(…)` — a failed send on a failover/mailbox path must be counted or handled, never discarded |
//! | `chunk-hash-confined` | non-test code outside `crates/nn/src/store.rs` / `crates/nn/src/delta.rs` | no `chunk_hash(` / `combine_hashes(` — content hashing stays behind the store's intern/digest APIs, out of serving hot loops |
//!
//! The scanner is token-level, not syntactic: a small lexer strips string
//! literals and separates comment text from code text, then the rules match
//! tokens in the code stream and justifications in the comment stream.
//! Test regions (`#[cfg(test)]` / `#[test]` blocks, files under `tests/`)
//! are recognised by brace matching on the comment-stripped code.
//!
//! An optional `st-lint.allow` file at the scanned root suppresses findings
//! (`rule path-substring` per line); the repo policy is that it stays empty.

use std::fmt;
use std::path::{Path, PathBuf};

/// How many preceding lines a `SAFETY:` / `ORDER:` justification may sit on.
const JUSTIFY_WINDOW: usize = 3;

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in (relative to the scanned root).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `unsafe-safety`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

// ---------------------------------------------------------------------------
// Lexer: split source into per-line code text and comment text
// ---------------------------------------------------------------------------

struct Lexed {
    /// Source lines with comments removed and string/char literal contents
    /// blanked (delimiters kept), so token matching cannot fire inside text.
    code: Vec<String>,
    /// Comment text per line (line + block comments, including doc comments).
    comments: Vec<String>,
}

fn lex(content: &str) -> Lexed {
    #[derive(PartialEq)]
    enum State {
        Normal,
        Block(usize), // nested block comment depth
        Str,
        RawStr(usize), // number of '#' in the delimiter
    }

    let n_lines = content.lines().count().max(1);
    let mut code = vec![String::new(); n_lines];
    let mut comments = vec![String::new(); n_lines];
    let mut state = State::Normal;
    let chars: Vec<char> = content.chars().collect();
    let mut i = 0;
    let mut line = 0;
    let mut prev_word_char = false;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            prev_word_char = false;
            i += 1;
            continue;
        }
        match state {
            State::Normal => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment (incl. /// and //!): capture to end of line.
                    let mut j = i + 2;
                    while j < chars.len() && chars[j] != '\n' {
                        comments[line].push(chars[j]);
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    i += 2;
                    continue;
                }
                if c == '"' {
                    code[line].push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                // Raw (byte) strings: r"..", r#".."#, br".." etc. Only when
                // the r/b is not the tail of an identifier.
                if (c == 'r' || c == 'b') && !prev_word_char {
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars.get(j) == Some(&'r') || c == 'r' {
                        let mut k = j + 1;
                        let mut hashes = 0;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') && (c == 'r' || j > i) {
                            code[line].push('"');
                            state = State::RawStr(hashes);
                            i = k + 1;
                            prev_word_char = false;
                            continue;
                        }
                    }
                    // Plain byte string b"..".
                    if c == 'b' && chars.get(i + 1) == Some(&'"') {
                        code[line].push('"');
                        state = State::Str;
                        i += 2;
                        prev_word_char = false;
                        continue;
                    }
                }
                if c == '\'' {
                    // Char literal vs lifetime: 'x' or '\..' is a literal,
                    // 'ident is a lifetime.
                    let is_char = match next {
                        Some('\\') => true,
                        Some(_) => chars.get(i + 2) == Some(&'\''),
                        None => false,
                    };
                    if is_char {
                        code[line].push('\'');
                        let mut j = i + 1;
                        if chars.get(j) == Some(&'\\') {
                            j += 1; // skip the escape marker
                            j += 1; // and the escaped char
                                    // \x41 / \u{..} style escapes: run to the quote
                            while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
                                j += 1;
                            }
                        } else {
                            j += 1;
                        }
                        if chars.get(j) == Some(&'\'') {
                            code[line].push('\'');
                            i = j + 1;
                        } else {
                            i = j;
                        }
                        prev_word_char = false;
                        continue;
                    }
                }
                code[line].push(c);
                prev_word_char = c.is_alphanumeric() || c == '_';
                i += 1;
            }
            State::Block(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    i += 2;
                } else {
                    comments[line].push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2; // skip the escaped char (newline-escape handled by loop)
                    if chars.get(i - 1) == Some(&'\n') {
                        line += 1;
                    }
                } else if c == '"' {
                    code[line].push('"');
                    state = State::Normal;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for h in 0..hashes {
                        if chars.get(i + 1 + h) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        code[line].push('"');
                        state = State::Normal;
                        i += 1 + hashes;
                        continue;
                    }
                }
                i += 1;
            }
        }
    }
    Lexed { code, comments }
}

// ---------------------------------------------------------------------------
// Test-region detection
// ---------------------------------------------------------------------------

/// Marks lines inside `#[cfg(test)]` / `#[cfg(all(test...))]` / `#[test]`
/// blocks, via brace matching on the comment-stripped code.
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        let line = &code[i];
        let starts_test = line.contains("#[cfg(test)]")
            || line.contains("#[cfg(all(test")
            || line.contains("#[test]");
        if starts_test {
            if let Some(end) = block_end(code, i) {
                for flag in in_test.iter_mut().take(end + 1).skip(i) {
                    *flag = true;
                }
                i = end + 1;
                continue;
            }
        }
        i += 1;
    }
    in_test
}

/// Line index of the `}` closing the first `{` at or after line `from`;
/// `None` when no block opens within a few lines (attribute on a non-block
/// item).
fn block_end(code: &[String], from: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut opened = false;
    for (idx, line) in code.iter().enumerate().skip(from) {
        for ch in line.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    opened = true;
                }
                '}' => {
                    depth = depth.saturating_sub(1);
                    if opened && depth == 0 {
                        return Some(idx);
                    }
                }
                _ => {}
            }
        }
        if !opened && idx > from + 5 {
            return None;
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

fn file_name(path: &Path) -> &str {
    path.file_name().and_then(|n| n.to_str()).unwrap_or("")
}

fn is_test_file(path: &Path) -> bool {
    path.components()
        .any(|c| c.as_os_str() == "tests" || c.as_os_str() == "benches")
}

fn path_contains(path: &Path, needle: &str) -> bool {
    path.to_string_lossy().replace('\\', "/").contains(needle)
}

/// True when any of the comment lines in `[line - JUSTIFY_WINDOW, line]`
/// contains `marker`.
fn justified(comments: &[String], line: usize, marker: &str) -> bool {
    let lo = line.saturating_sub(JUSTIFY_WINDOW);
    comments[lo..=line].iter().any(|c| c.contains(marker))
}

/// `unsafe` tokens that are not `unsafe fn` declarations (those are covered
/// by `unsafe_op_in_unsafe_fn` forcing explicit blocks in the body).
fn has_bare_unsafe(code_line: &str) -> bool {
    let mut rest = code_line;
    while let Some(pos) = rest.find("unsafe") {
        let before_ok = pos == 0
            || !rest[..pos]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = &rest[pos + "unsafe".len()..];
        let after_ok = !after
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            let next_token = after.trim_start();
            if !next_token.starts_with("fn") {
                return true;
            }
        }
        rest = &rest[pos + "unsafe".len()..];
    }
    false
}

/// Lint a single file's source text. `path` is used for rule scoping and in
/// the reported findings; it should be root-relative.
pub fn lint_source(path: &Path, content: &str) -> Vec<Violation> {
    let lexed = lex(content);
    let test_region = mark_test_regions(&lexed.code);
    let whole_file_test = is_test_file(path);
    let name = file_name(path).to_string();
    let reactor_file = name == "serve.rs" || name == "poll.rs";
    let no_unwrap_file = name == "serve.rs" || name == "shm.rs";
    let net_file = path_contains(path, "crates/net/");
    let send_audited_file = name == "serve.rs" || name == "steal.rs" || name == "live.rs";
    let hash_home_file = path_contains(path, "crates/nn/src/store.rs")
        || path_contains(path, "crates/nn/src/delta.rs");

    let mut out = Vec::new();
    for (idx, code_line) in lexed.code.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = whole_file_test || test_region[idx];

        if has_bare_unsafe(code_line) && !justified(&lexed.comments, idx, "SAFETY:") {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: "unsafe-safety",
                message: "`unsafe` without a `// SAFETY:` comment on this or the preceding lines"
                    .to_string(),
            });
        }

        if !in_test
            && code_line.contains("Ordering::Relaxed")
            && !justified(&lexed.comments, idx, "ORDER:")
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: "order-relaxed",
                message:
                    "`Ordering::Relaxed` without a `// ORDER:` justification on this or the preceding lines"
                        .to_string(),
            });
        }

        if no_unwrap_file
            && !in_test
            && (code_line.contains(".unwrap()") || code_line.contains(".expect("))
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: "no-unwrap",
                message: "`.unwrap()`/`.expect()` in lock-free/reactor core non-test code"
                    .to_string(),
            });
        }

        if net_file && (code_line.contains("to_ne_bytes") || code_line.contains("from_ne_bytes")) {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: "ne-bytes",
                message: "native-endian byte conversion in st-net (wire format is little-endian)"
                    .to_string(),
            });
        }

        if reactor_file && !in_test && code_line.contains("thread::sleep") {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: "no-sleep",
                message: "`thread::sleep` in reactor code (park on the poller instead)".to_string(),
            });
        }

        // On failover/mailbox paths a send failure means a peer (client
        // downlink, shard mailbox) is gone; discarding the result silently
        // loses an ack or a migrated stream. Count it (`deliver`,
        // `lost_acks`) or handle the returned envelope.
        if send_audited_file && !in_test && code_line.contains("let _ =") {
            let after = &code_line[code_line
                .find("let _ =")
                .map(|p| p + "let _ =".len())
                .unwrap_or(0)..];
            if after.contains("send(") {
                out.push(Violation {
                    file: path.to_path_buf(),
                    line: line_no,
                    rule: "ignored-send",
                    message:
                        "`let _ = …send(…)` discards a send result on a failover/mailbox path; count or handle the failure"
                            .to_string(),
                });
            }
        }
        // Content hashing is the weight store's private algebra: every
        // identity decision (dedup, delta omission, digest lockstep) must go
        // through the store/digest APIs, which hash once per capture. A
        // `chunk_hash`/`combine_hashes` call anywhere else is either a
        // per-frame rehash in a serving hot loop or a second identity rule
        // that can drift from the store's.
        if !hash_home_file
            && !in_test
            && (code_line.contains("chunk_hash(") || code_line.contains("combine_hashes("))
        {
            out.push(Violation {
                file: path.to_path_buf(),
                line: line_no,
                rule: "chunk-hash-confined",
                message:
                    "content-hash primitive outside st_nn store/delta; use the intern/digest APIs"
                        .to_string(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Allowlist
// ---------------------------------------------------------------------------

/// Suppression entries loaded from `st-lint.allow` (`rule path-substring`
/// per line, `#` comments). Policy: this file should not exist or stay empty.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Loads the allowlist at `path`; a missing file is an empty list.
    pub fn load(path: &Path) -> Allowlist {
        let mut entries = Vec::new();
        if let Ok(content) = std::fs::read_to_string(path) {
            for line in content.lines() {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    continue;
                }
                let mut parts = line.split_whitespace();
                if let (Some(rule), Some(substr)) = (parts.next(), parts.next()) {
                    entries.push((rule.to_string(), substr.to_string()));
                }
            }
        }
        Allowlist { entries }
    }

    /// True when `v` is suppressed by an entry.
    pub fn permits(&self, v: &Violation) -> bool {
        let path = v.file.to_string_lossy().replace('\\', "/");
        self.entries
            .iter()
            .any(|(rule, substr)| rule == v.rule && path.contains(substr.as_str()))
    }
}

// ---------------------------------------------------------------------------
// Tree walk and report
// ---------------------------------------------------------------------------

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            // Vendored registry stand-ins and build products are not lint
            // surface; neither is VCS metadata.
            if matches!(name.as_str(), "target" | "vendor" | ".git") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every `.rs` file under `root` (excluding `vendor/` and `target/`),
/// applying the root's `st-lint.allow` if present. Findings are sorted by
/// path and line.
pub fn lint_tree(root: &Path) -> std::io::Result<Vec<Violation>> {
    let allow = Allowlist::load(&root.join("st-lint.allow"));
    let mut files = Vec::new();
    collect_rs(root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for file in files {
        let content = std::fs::read_to_string(&file)?;
        let rel = file
            .strip_prefix(root)
            .map(Path::to_path_buf)
            .unwrap_or_else(|_| file.clone());
        out.extend(
            lint_source(&rel, &content)
                .into_iter()
                .filter(|v| !allow.permits(v)),
        );
    }
    Ok(out)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (for the CI artifact).
pub fn to_json(violations: &[Violation]) -> String {
    let mut out = String::from("[\n");
    for (i, v) in violations.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}{}\n",
            json_escape(&v.file.to_string_lossy().replace('\\', "/")),
            v.line,
            v.rule,
            json_escape(&v.message),
            if i + 1 < violations.len() { "," } else { "" }
        ));
    }
    out.push_str("]\n");
    out
}
