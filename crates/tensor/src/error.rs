//! Error type shared by all tensor operations.

use std::fmt;

/// Errors produced by tensor construction and tensor operations.
///
/// Shape mismatches are by far the most common failure mode; they carry the
/// offending shapes (as plain `Vec<usize>` so the error type stays cheap to
/// construct) and a short description of the operation that failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The two shapes involved in an operation are incompatible.
    ShapeMismatch {
        /// Operation name, e.g. `"add"` or `"conv2d"`.
        op: &'static str,
        /// Left-hand-side / primary shape.
        lhs: Vec<usize>,
        /// Right-hand-side / secondary shape.
        rhs: Vec<usize>,
    },
    /// The data buffer length does not match the number of elements implied
    /// by the shape.
    LengthMismatch {
        /// Expected number of elements.
        expected: usize,
        /// Actual buffer length.
        actual: usize,
    },
    /// An index is out of bounds for the given dimension.
    IndexOutOfBounds {
        /// Offending index.
        index: usize,
        /// Dimension size.
        len: usize,
    },
    /// A configuration value is invalid (e.g. zero stride, empty kernel).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "shape mismatch in `{op}`: {lhs:?} vs {rhs:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length mismatch: expected {expected}, got {actual}"
                )
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for dimension of size {len}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            op: "add",
            lhs: vec![1, 2],
            rhs: vec![3],
        };
        let s = e.to_string();
        assert!(s.contains("add"));
        assert!(s.contains("[1, 2]"));
    }

    #[test]
    fn display_length_mismatch() {
        let e = TensorError::LengthMismatch {
            expected: 6,
            actual: 5,
        };
        assert!(e.to_string().contains("expected 6"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_: E) {}
        takes_err(TensorError::InvalidArgument("x".into()));
    }
}
