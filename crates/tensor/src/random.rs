//! Deterministic random tensor constructors.
//!
//! Every constructor takes an explicit `u64` seed so that experiments,
//! property tests, and the benchmark harness are fully reproducible run to
//! run. Normal variates are generated with the Box–Muller transform (the
//! `rand` crate alone, without `rand_distr`, only provides uniform floats).

use crate::{Shape, Tensor};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Uniform random tensor in `[lo, hi)`.
pub fn uniform(shape: Shape, lo: f32, hi: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = shape.numel();
    let data = (0..n)
        .map(|_| lo + (hi - lo) * rng.random::<f32>())
        .collect();
    Tensor::from_vec(shape, data).expect("length matches shape by construction")
}

/// Standard-normal random tensor scaled by `std` and shifted by `mean`.
pub fn normal(shape: Shape, mean: f32, std: f32, seed: u64) -> Tensor {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = shape.numel();
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        // Box-Muller: two uniforms -> two independent standard normals.
        let u1: f32 = rng.random::<f32>().max(1e-12);
        let u2: f32 = rng.random::<f32>();
        let r = (-2.0f32 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(mean + std * r * theta.cos());
        if data.len() < n {
            data.push(mean + std * r * theta.sin());
        }
    }
    Tensor::from_vec(shape, data).expect("length matches shape by construction")
}

/// Kaiming/He normal initialisation for convolution kernels.
///
/// `fan_in` should be `in_channels * kernel_h * kernel_w`; the returned
/// tensor has standard deviation `sqrt(2 / fan_in)`, appropriate for layers
/// followed by ReLU activations.
pub fn kaiming(shape: Shape, fan_in: usize, seed: u64) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    normal(shape, 0.0, std, seed)
}

/// A deterministic RNG for callers that need scalar draws alongside tensors.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_in_range_and_deterministic() {
        let a = uniform(Shape::vector(1000), -2.0, 3.0, 42);
        assert!(a.data().iter().all(|&x| (-2.0..3.0).contains(&x)));
        let b = uniform(Shape::vector(1000), -2.0, 3.0, 42);
        assert_eq!(a, b);
        let c = uniform(Shape::vector(1000), -2.0, 3.0, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let a = normal(Shape::vector(20_000), 1.0, 2.0, 7);
        let mean = a.mean();
        let var = a
            .data()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / a.numel() as f32;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
        assert!(a.all_finite());
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let small_fan = kaiming(Shape::vector(10_000), 9, 1);
        let big_fan = kaiming(Shape::vector(10_000), 900, 1);
        let std = |t: &Tensor| {
            let m = t.mean();
            (t.data().iter().map(|x| (x - m) * (x - m)).sum::<f32>() / t.numel() as f32).sqrt()
        };
        assert!(std(&small_fan) > 5.0 * std(&big_fan));
    }

    #[test]
    fn odd_length_normal_filled() {
        let a = normal(Shape::vector(7), 0.0, 1.0, 3);
        assert_eq!(a.numel(), 7);
        assert!(a.all_finite());
    }
}
