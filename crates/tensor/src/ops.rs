//! Activation functions and channel-wise softmax with their gradients.

use crate::{Result, Tensor, TensorError};

/// ReLU forward: `max(x, 0)` elementwise.
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// ReLU backward: passes `grad_out` where the *forward input* was positive.
pub fn relu_backward(grad_out: &Tensor, forward_input: &Tensor) -> Result<Tensor> {
    if !grad_out.shape().same_as(forward_input.shape()) {
        return Err(TensorError::ShapeMismatch {
            op: "relu_backward",
            lhs: grad_out.shape().dims().to_vec(),
            rhs: forward_input.shape().dims().to_vec(),
        });
    }
    let data = grad_out
        .data()
        .iter()
        .zip(forward_input.data().iter())
        .map(|(&g, &x)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(grad_out.shape().clone(), data)
}

/// Leaky ReLU forward with negative slope `alpha`.
pub fn leaky_relu(x: &Tensor, alpha: f32) -> Tensor {
    x.map(|v| if v > 0.0 { v } else { alpha * v })
}

/// Leaky ReLU backward.
pub fn leaky_relu_backward(
    grad_out: &Tensor,
    forward_input: &Tensor,
    alpha: f32,
) -> Result<Tensor> {
    if !grad_out.shape().same_as(forward_input.shape()) {
        return Err(TensorError::ShapeMismatch {
            op: "leaky_relu_backward",
            lhs: grad_out.shape().dims().to_vec(),
            rhs: forward_input.shape().dims().to_vec(),
        });
    }
    let data = grad_out
        .data()
        .iter()
        .zip(forward_input.data().iter())
        .map(|(&g, &x)| if x > 0.0 { g } else { alpha * g })
        .collect();
    Tensor::from_vec(grad_out.shape().clone(), data)
}

/// Sigmoid forward.
pub fn sigmoid(x: &Tensor) -> Tensor {
    x.map(|v| 1.0 / (1.0 + (-v).exp()))
}

/// Per-pixel softmax over the channel axis of a `(1, C, H, W)` tensor.
///
/// Numerically stabilised by subtracting the per-pixel max.
pub fn softmax_channels(x: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    if n != 1 {
        return Err(TensorError::InvalidArgument(
            "softmax_channels expects batch size 1".into(),
        ));
    }
    let plane = h * w;
    let mut out = Tensor::zeros(x.shape().clone());
    let xin = x.data();
    let xout = out.data_mut();
    for p in 0..plane {
        let mut maxv = f32::NEG_INFINITY;
        for ci in 0..c {
            maxv = maxv.max(xin[ci * plane + p]);
        }
        let mut denom = 0.0f32;
        for ci in 0..c {
            let e = (xin[ci * plane + p] - maxv).exp();
            xout[ci * plane + p] = e;
            denom += e;
        }
        let inv = 1.0 / denom;
        for ci in 0..c {
            xout[ci * plane + p] *= inv;
        }
    }
    Ok(out)
}

/// Per-pixel log-softmax over the channel axis of a `(1, C, H, W)` tensor.
pub fn log_softmax_channels(x: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = x.shape().as_nchw()?;
    if n != 1 {
        return Err(TensorError::InvalidArgument(
            "log_softmax_channels expects batch size 1".into(),
        ));
    }
    let plane = h * w;
    let mut out = Tensor::zeros(x.shape().clone());
    let xin = x.data();
    let xout = out.data_mut();
    for p in 0..plane {
        let mut maxv = f32::NEG_INFINITY;
        for ci in 0..c {
            maxv = maxv.max(xin[ci * plane + p]);
        }
        let mut denom = 0.0f32;
        for ci in 0..c {
            denom += (xin[ci * plane + p] - maxv).exp();
        }
        let log_denom = denom.ln() + maxv;
        for ci in 0..c {
            xout[ci * plane + p] = xin[ci * plane + p] - log_denom;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random, Shape};

    #[test]
    fn relu_forward_backward() {
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
        let g = Tensor::from_slice(&[1.0, 1.0, 1.0]);
        let gx = relu_backward(&g, &x).unwrap();
        assert_eq!(gx.data(), &[0.0, 0.0, 1.0]);
    }

    #[test]
    fn leaky_relu_forward_backward() {
        let x = Tensor::from_slice(&[-2.0, 3.0]);
        let y = leaky_relu(&x, 0.1);
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 3.0);
        let g = Tensor::from_slice(&[1.0, 1.0]);
        let gx = leaky_relu_backward(&g, &x, 0.1).unwrap();
        assert!((gx.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(gx.data()[1], 1.0);
    }

    #[test]
    fn relu_backward_shape_check() {
        let g = Tensor::zeros(Shape::vector(3));
        let x = Tensor::zeros(Shape::vector(4));
        assert!(relu_backward(&g, &x).is_err());
    }

    #[test]
    fn sigmoid_range() {
        let x = random::uniform(Shape::vector(100), -10.0, 10.0, 1);
        let y = sigmoid(&x);
        assert!(y.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!((sigmoid(&Tensor::from_slice(&[0.0])).data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let x = random::uniform(Shape::nchw(1, 5, 3, 4), -100.0, 100.0, 2);
        let s = softmax_channels(&x).unwrap();
        assert!(s.all_finite());
        let plane = 12;
        for p in 0..plane {
            let total: f32 = (0..5).map(|c| s.data()[c * plane + p]).sum();
            assert!((total - 1.0).abs() < 1e-4, "pixel {p} sums to {total}");
        }
    }

    #[test]
    fn log_softmax_is_log_of_softmax() {
        let x = random::uniform(Shape::nchw(1, 4, 2, 2), -3.0, 3.0, 3);
        let s = softmax_channels(&x).unwrap();
        let ls = log_softmax_channels(&x).unwrap();
        for (a, b) in s.data().iter().zip(ls.data().iter()) {
            assert!((a.ln() - b).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_requires_4d() {
        let x = Tensor::zeros(Shape::matrix(3, 3));
        assert!(softmax_channels(&x).is_err());
        assert!(log_softmax_channels(&x).is_err());
    }
}
