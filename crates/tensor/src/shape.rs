//! Shape bookkeeping for dense NCHW tensors.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};

/// The shape of a dense tensor.
///
/// Shapes are stored as a small vector of dimension sizes, outermost first.
/// Most tensors in this workspace are 4-D `(N, C, H, W)` activations or
/// `(OutC, InC, KH, KW)` convolution kernels, but 1-D bias vectors and 2-D
/// matrices are also used, so the dimensionality is not fixed.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from a list of dimension sizes.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Shape of a 4-D activation tensor `(n, c, h, w)`.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape {
            dims: vec![n, c, h, w],
        }
    }

    /// Shape of a 2-D matrix `(rows, cols)`.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Shape {
            dims: vec![rows, cols],
        }
    }

    /// Shape of a 1-D vector of length `len`.
    pub fn vector(len: usize) -> Self {
        Shape { dims: vec![len] }
    }

    /// Dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Interpret this shape as `(N, C, H, W)`.
    ///
    /// Returns an error if the shape is not 4-D.
    pub fn as_nchw(&self) -> Result<(usize, usize, usize, usize)> {
        if self.dims.len() != 4 {
            return Err(TensorError::ShapeMismatch {
                op: "as_nchw",
                lhs: self.dims.clone(),
                rhs: vec![0, 0, 0, 0],
            });
        }
        Ok((self.dims[0], self.dims[1], self.dims[2], self.dims[3]))
    }

    /// Interpret this shape as a 2-D matrix `(rows, cols)`.
    pub fn as_matrix(&self) -> Result<(usize, usize)> {
        if self.dims.len() != 2 {
            return Err(TensorError::ShapeMismatch {
                op: "as_matrix",
                lhs: self.dims.clone(),
                rhs: vec![0, 0],
            });
        }
        Ok((self.dims[0], self.dims[1]))
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// Returns an error if the index rank differs from the shape rank or any
    /// coordinate is out of range.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::ShapeMismatch {
                op: "offset",
                lhs: self.dims.clone(),
                rhs: index.to_vec(),
            });
        }
        let mut off = 0usize;
        let strides = self.strides();
        for (i, (&ix, &dim)) in index.iter().zip(self.dims.iter()).enumerate() {
            if ix >= dim {
                return Err(TensorError::IndexOutOfBounds {
                    index: ix,
                    len: dim,
                });
            }
            off += ix * strides[i];
        }
        Ok(off)
    }

    /// True if both shapes have identical dimensions.
    pub fn same_as(&self, other: &Shape) -> bool {
        self.dims == other.dims
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl std::fmt::Display for Shape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.numel(), 120);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.dim(2), 4);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        let v = Shape::vector(7);
        assert_eq!(v.strides(), vec![1]);
    }

    #[test]
    fn offset_computation() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.offset(&[0, 0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3, 4]).unwrap(), 119);
        assert_eq!(s.offset(&[0, 1, 0, 2]).unwrap(), 22);
    }

    #[test]
    fn offset_out_of_bounds() {
        let s = Shape::matrix(2, 3);
        assert!(s.offset(&[2, 0]).is_err());
        assert!(s.offset(&[0, 0, 0]).is_err());
    }

    #[test]
    fn as_nchw_rejects_wrong_rank() {
        assert!(Shape::matrix(2, 3).as_nchw().is_err());
        assert!(Shape::nchw(1, 1, 1, 1).as_nchw().is_ok());
    }

    #[test]
    fn conversions() {
        let s: Shape = vec![1, 2, 3].into();
        assert_eq!(s.dims(), &[1, 2, 3]);
        let s2: Shape = (&[4usize, 5][..]).into();
        assert_eq!(s2.as_matrix().unwrap(), (4, 5));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::matrix(2, 3).to_string(), "[2, 3]");
    }
}
