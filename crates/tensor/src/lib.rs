//! # st-tensor
//!
//! Dense `f32` tensor substrate for the ShadowTutor reproduction.
//!
//! The ShadowTutor paper (ICPP 2020) runs its student/teacher networks on
//! PyTorch; this crate provides the minimal-but-complete numerical kernel set
//! needed to train and evaluate the paper's fully-convolutional student model
//! from scratch in Rust, on CPU, deterministically:
//!
//! * [`Tensor`] — a dense, contiguous, row-major NCHW `f32` tensor with shape
//!   bookkeeping and elementwise/reduction operations.
//! * [`conv`] — im2col-based 2-D convolution forward and backward passes with
//!   arbitrary stride/padding (including the asymmetric 3×1 / 1×3 kernels the
//!   student blocks use).
//! * [`matmul`] — blocked GEMM kernels (plain and transposed variants) used by
//!   the convolution lowering.
//! * [`pool`] — average pooling and nearest-neighbour up-sampling with
//!   backward passes (used by the encoder/decoder halves of the student).
//! * [`ops`] — activation functions, channel softmax / log-softmax and their
//!   gradients.
//! * [`parallel`] — chunked parallel-for helpers built on crossbeam scoped
//!   threads (they degrade gracefully to serial execution on one core).
//! * [`random`] — deterministic random tensor constructors (uniform, normal,
//!   Kaiming fan-in scaling) seeded with `u64` seeds.
//!
//! Everything is `f32` and row-major: the innermost axis is `W`, then `H`,
//! then `C`, then `N`, matching the memory layout the im2col kernels assume.

// Inside an `unsafe fn`, each unsafe operation still needs its own `unsafe`
// block (and its own SAFETY argument) — the function-level contract does not
// silently bless the body.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod conv;
pub mod error;
pub mod matmul;
pub mod ops;
pub mod parallel;
pub mod pool;
pub mod random;
pub mod shape;
pub mod tensor;

pub use error::TensorError;
pub use shape::Shape;
pub use tensor::Tensor;

/// Result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
