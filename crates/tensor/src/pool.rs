//! Pooling and up-sampling operators with backward passes.
//!
//! The student decoder up-samples low-resolution feature maps back to the
//! skip-connection resolution before concatenation, and the segmentation
//! head up-samples logits back to the input resolution, so nearest-neighbour
//! up-sampling (and its adjoint, which is exactly average-style scatter
//! accumulation) is the workhorse here. Average pooling is provided for the
//! optional CNN teacher's wider encoder.

use crate::{Result, Shape, Tensor, TensorError};

/// Average pooling with a square window of size `k` and stride `k`
/// (non-overlapping).
pub fn avg_pool2d(input: &Tensor, k: usize) -> Result<Tensor> {
    if k == 0 {
        return Err(TensorError::InvalidArgument(
            "pool window must be non-zero".into(),
        ));
    }
    let (n, c, h, w) = input.shape().as_nchw()?;
    let oh = h / k;
    let ow = w / k;
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument(format!(
            "input {h}x{w} too small for pool window {k}"
        )));
    }
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    let inv = 1.0 / (k * k) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for dy in 0..k {
                        for dx in 0..k {
                            acc += input.at4(ni, ci, oy * k + dy, ox * k + dx);
                        }
                    }
                    out.set4(ni, ci, oy, ox, acc * inv);
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`avg_pool2d`]: spread each output gradient uniformly
/// over its `k×k` window.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    k: usize,
    in_h: usize,
    in_w: usize,
) -> Result<Tensor> {
    let (n, c, oh, ow) = grad_out.shape().as_nchw()?;
    let mut out = Tensor::zeros(Shape::nchw(n, c, in_h, in_w));
    let inv = 1.0 / (k * k) as f32;
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(ni, ci, oy, ox) * inv;
                    for dy in 0..k {
                        for dx in 0..k {
                            let y = oy * k + dy;
                            let x = ox * k + dx;
                            if y < in_h && x < in_w {
                                let cur = out.at4(ni, ci, y, x);
                                out.set4(ni, ci, y, x, cur + g);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Nearest-neighbour up-sampling by an integer factor.
pub fn upsample_nearest(input: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::InvalidArgument(
            "upsample factor must be non-zero".into(),
        ));
    }
    let (n, c, h, w) = input.shape().as_nchw()?;
    let oh = h * factor;
    let ow = w * factor;
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                let iy = oy / factor;
                for ox in 0..ow {
                    out.set4(ni, ci, oy, ox, input.at4(ni, ci, iy, ox / factor));
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`upsample_nearest`]: each input position accumulates the
/// gradients of all output positions it was copied to.
pub fn upsample_nearest_backward(grad_out: &Tensor, factor: usize) -> Result<Tensor> {
    if factor == 0 {
        return Err(TensorError::InvalidArgument(
            "upsample factor must be non-zero".into(),
        ));
    }
    let (n, c, oh, ow) = grad_out.shape().as_nchw()?;
    if oh % factor != 0 || ow % factor != 0 {
        return Err(TensorError::InvalidArgument(format!(
            "gradient size {oh}x{ow} not divisible by factor {factor}"
        )));
    }
    let h = oh / factor;
    let w = ow / factor;
    let mut out = Tensor::zeros(Shape::nchw(n, c, h, w));
    for ni in 0..n {
        for ci in 0..c {
            for oy in 0..oh {
                let iy = oy / factor;
                for ox in 0..ow {
                    let ix = ox / factor;
                    let cur = out.at4(ni, ci, iy, ix);
                    out.set4(ni, ci, iy, ix, cur + grad_out.at4(ni, ci, oy, ox));
                }
            }
        }
    }
    Ok(out)
}

/// Down-sample a label map (`H*W` class indices) by taking the top-left
/// sample of each `factor×factor` block. Used when supervising the student at
/// a reduced output resolution.
pub fn downsample_labels(
    labels: &[usize],
    h: usize,
    w: usize,
    factor: usize,
) -> Result<Vec<usize>> {
    if factor == 0 || !h.is_multiple_of(factor) || !w.is_multiple_of(factor) {
        return Err(TensorError::InvalidArgument(format!(
            "label map {h}x{w} not divisible by factor {factor}"
        )));
    }
    if labels.len() != h * w {
        return Err(TensorError::LengthMismatch {
            expected: h * w,
            actual: labels.len(),
        });
    }
    let oh = h / factor;
    let ow = w / factor;
    let mut out = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        for ox in 0..ow {
            out.push(labels[(oy * factor) * w + ox * factor]);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec(
            Shape::nchw(1, 1, 2, 4),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        )
        .unwrap();
        let y = avg_pool2d(&x, 2).unwrap();
        assert_eq!(y.shape().dims(), &[1, 1, 1, 2]);
        assert_eq!(y.data(), &[3.5, 5.5]);
    }

    #[test]
    fn avg_pool_rejects_bad_window() {
        let x = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        assert!(avg_pool2d(&x, 0).is_err());
        assert!(avg_pool2d(&x, 4).is_err());
    }

    #[test]
    fn upsample_then_pool_is_identity() {
        let x = random::uniform(Shape::nchw(1, 3, 4, 5), -1.0, 1.0, 1);
        let up = upsample_nearest(&x, 2).unwrap();
        assert_eq!(up.shape().dims(), &[1, 3, 8, 10]);
        let back = avg_pool2d(&up, 2).unwrap();
        for (a, b) in x.data().iter().zip(back.data().iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn upsample_backward_is_adjoint() {
        // <up(x), y> == <x, up_backward(y)>
        let x = random::uniform(Shape::nchw(1, 2, 3, 3), -1.0, 1.0, 2);
        let up = upsample_nearest(&x, 2).unwrap();
        let y = random::uniform(up.shape().clone(), -1.0, 1.0, 3);
        let lhs = up.mul(&y).unwrap().sum();
        let back = upsample_nearest_backward(&y, 2).unwrap();
        let rhs = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn avg_pool_backward_is_adjoint() {
        let x = random::uniform(Shape::nchw(1, 2, 4, 6), -1.0, 1.0, 4);
        let pooled = avg_pool2d(&x, 2).unwrap();
        let y = random::uniform(pooled.shape().clone(), -1.0, 1.0, 5);
        let lhs = pooled.mul(&y).unwrap().sum();
        let back = avg_pool2d_backward(&y, 2, 4, 6).unwrap();
        let rhs = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3);
    }

    #[test]
    fn upsample_backward_rejects_indivisible() {
        let g = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(upsample_nearest_backward(&g, 2).is_err());
    }

    #[test]
    fn label_downsampling() {
        let labels: Vec<usize> = (0..16).collect();
        let down = downsample_labels(&labels, 4, 4, 2).unwrap();
        assert_eq!(down, vec![0, 2, 8, 10]);
        assert!(downsample_labels(&labels, 4, 4, 3).is_err());
        assert!(downsample_labels(&labels[..15], 4, 4, 2).is_err());
    }
}
