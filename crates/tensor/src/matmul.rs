//! Blocked GEMM kernels used by the im2col convolution lowering.
//!
//! Three variants are provided because the convolution backward passes need
//! products against transposed operands and materialising the transpose would
//! double memory traffic on the (already large) im2col buffers:
//!
//! * [`matmul`]     — `C = A (M×K) · B (K×N)`
//! * [`matmul_tn`]  — `C = Aᵀ (M×K stored as K×M) · B (K×N)`
//! * [`matmul_nt`]  — `C = A (M×K) · Bᵀ (N×K stored row-major)`
//!
//! The kernels are cache-blocked over `K` and keep the innermost loop over
//! `N` contiguous so the auto-vectoriser can use SIMD on the accumulation.

use crate::{Result, Shape, Tensor, TensorError};

/// Cache block size over the reduction dimension.
const K_BLOCK: usize = 64;

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    t.shape()
        .as_matrix()
        .map_err(|_| TensorError::ShapeMismatch {
            op,
            lhs: t.shape().dims().to_vec(),
            rhs: vec![0, 0],
        })
}

/// `C = A · B` for row-major matrices `A: (m, k)`, `B: (k, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, "matmul")?;
    let (kb, n) = check_matrix(b, "matmul")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for k0 in (0..k).step_by(K_BLOCK) {
        let k1 = (k0 + K_BLOCK).min(k);
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in k0..k1 {
                let aik = ad[i * k + kk];
                if aik == 0.0 {
                    continue;
                }
                let b_row = &bd[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * bv;
                }
            }
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = Aᵀ · B` where `A` is stored as `(k, m)` and `B` as `(k, n)`.
///
/// Result is `(m, n)`. Used for the convolution weight gradient
/// (`dW = dOutᵀ · im2col` style products).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_matrix(a, "matmul_tn")?;
    let (kb, n) = check_matrix(b, "matmul_tn")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // Iterate over k outermost: both A and B rows are contiguous in k.
    for kk in 0..k {
        let a_row = &ad[kk * m..(kk + 1) * m];
        let b_row = &bd[kk * n..(kk + 1) * n];
        for (i, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                *o += aik * bv;
            }
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = A · Bᵀ` where `A` is `(m, k)` and `B` is `(n, k)`, both row-major.
///
/// Result is `(m, n)`. Used for the convolution input gradient
/// (`dCol = Wᵀ · dOut` style products) where the weight matrix is naturally
/// stored `(out_c, in_c*kh*kw)`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, "matmul_nt")?;
    let (n, kb) = check_matrix(b, "matmul_nt")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;

    fn mat(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::matrix(rows, cols), data.to_vec()).unwrap()
    }

    /// Reference O(mnk) implementation for cross-checking.
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix().unwrap();
        let (_, n) = b.shape().as_matrix().unwrap();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        mat(m, n, &out)
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = t.shape().as_matrix().unwrap();
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = t.data()[i * c + j];
            }
        }
        mat(c, r, &out)
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(Shape::matrix(2, 3));
        let b = Tensor::zeros(Shape::matrix(2, 3));
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros(Shape::vector(3));
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn blocked_matches_naive_random() {
        let a = random::uniform(Shape::matrix(17, 33), -1.0, 1.0, 1);
        let b = random::uniform(Shape::matrix(33, 9), -1.0, 1.0, 2);
        let fast = matmul(&a, &b).unwrap();
        let slow = naive(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = random::uniform(Shape::matrix(13, 7), -1.0, 1.0, 3); // stored (k=13, m=7)
        let b = random::uniform(Shape::matrix(13, 11), -1.0, 1.0, 4);
        let fast = matmul_tn(&a, &b).unwrap();
        let slow = naive(&transpose(&a), &b);
        assert_eq!(fast.shape().dims(), &[7, 11]);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = random::uniform(Shape::matrix(5, 13), -1.0, 1.0, 5);
        let b = random::uniform(Shape::matrix(9, 13), -1.0, 1.0, 6); // (n=9, k=13)
        let fast = matmul_nt(&a, &b).unwrap();
        let slow = naive(&a, &transpose(&b));
        assert_eq!(fast.shape().dims(), &[5, 9]);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
