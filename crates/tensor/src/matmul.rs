//! Packed, cache-blocked GEMM kernels used by the im2col convolution
//! lowering.
//!
//! Three variants are provided because the convolution backward passes need
//! products against transposed operands and materialising the transpose would
//! double memory traffic on the (already large) im2col buffers:
//!
//! * [`matmul`]     — `C = A (M×K) · B (K×N)`
//! * [`matmul_tn`]  — `C = Aᵀ (M×K stored as K×M) · B (K×N)`
//! * [`matmul_nt`]  — `C = A (M×K) · Bᵀ (N×K stored row-major)`
//!
//! All three run through one packed kernel:
//!
//! * The reduction dimension is blocked at `KC` so the packed panels stay
//!   cache-resident across the inner loops.
//! * Per block, `A` is packed into `MR`-row micro-panels laid out `k`-major
//!   (`apack[kk*MR + i]`), so the microkernel reads it as a contiguous
//!   stream regardless of whether the source was stored `(m, k)` or
//!   `(k, m)`; `B` is packed into `NR`-column stripes (`bstripe[kk*NR + j]`)
//!   the same way. Packing zero-pads ragged edges, so the microkernel has
//!   no edge branches.
//! * The microkernel keeps an `MR×NR` accumulator tile in registers and runs
//!   a branch-free multiply-add over the packed panels — fixed trip counts
//!   the auto-vectoriser turns into SIMD. (The seed kernel's data-dependent
//!   `aik == 0.0` skip is gone: it blocked vectorisation and made timing
//!   input-dependent.)
//! * Work is split across cores by disjoint `C` column stripes via
//!   [`crate::parallel::par_ranges`]; each worker packs its own `B` stripes
//!   and owns its columns of `C`, so no synchronisation is needed inside a
//!   block. `ST_THREADS` / [`crate::parallel::set_threads`] pin the core
//!   count.
//!
//! Accumulation order over `k` is identical for every output element across
//! block sizes, thread counts and batch widths, so results are bit-for-bit
//! reproducible — the batched teacher forward relies on this to match
//! per-frame forwards exactly.

use crate::parallel;
use crate::{Result, Shape, Tensor, TensorError};

/// Cache block size over the reduction dimension.
const KC: usize = 256;
/// Microkernel tile rows (distinct broadcast registers per iteration).
const MR: usize = 4;
/// Microkernel tile columns (one or two SIMD vectors wide on most targets).
const NR: usize = 16;
/// Minimum multiply-accumulate count before spawning worker threads. Scoped
/// threads cost tens of microseconds to spawn and join, so only GEMMs with
/// roughly a millisecond of work (e.g. batched teacher forwards) fan out;
/// the per-frame student kernels stay serial and overhead-free.
const PAR_MIN_MACS: usize = 1 << 22;

/// How the `A` operand is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ALayout {
    /// `a[(i, kk)] = a[i*k + kk]` — `A` stored `(m, k)` row-major.
    RowMajor,
    /// `a[(i, kk)] = a[kk*m + i]` — `A` stored `(k, m)` row-major (the
    /// `matmul_tn` case; the product uses `Aᵀ`).
    Transposed,
}

/// How the `B` operand is stored.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BLayout {
    /// `b[(kk, j)] = b[kk*n + j]` — `B` stored `(k, n)` row-major.
    RowMajor,
    /// `b[(kk, j)] = b[j*k + kk]` — `B` stored `(n, k)` row-major (the
    /// `matmul_nt` case; the product uses `Bᵀ`).
    Transposed,
}

/// `*mut f32` that may cross the scoped-thread boundary. Workers receive
/// disjoint column ranges of the output, so concurrent writes never alias.
#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
// SAFETY: the pointer targets the caller-owned `out` buffer, which outlives
// the crossbeam scope the workers run in, and every worker writes only its
// own disjoint column range — no two threads ever touch the same element.
unsafe impl Send for SendPtr {}
// SAFETY: as above — shared access is read-only on the wrapper itself; all
// writes through the pointer are range-disjoint by construction.
unsafe impl Sync for SendPtr {}

impl SendPtr {
    /// Accessor method (rather than field access) so closures capture the
    /// whole `Send + Sync` wrapper, not the bare `*mut f32` field.
    fn get(self) -> *mut f32 {
        self.0
    }
}

/// Pack rows `[0, m)` of the `A` block `k ∈ [k0, k0+kc)` into `MR`-row
/// micro-panels, `k`-major within each panel, zero-padding the last panel.
fn pack_a(apack: &mut [f32], a: &[f32], layout: ALayout, m: usize, k: usize, k0: usize, kc: usize) {
    let panels = m.div_ceil(MR);
    apack[..panels * MR * kc].fill(0.0);
    match layout {
        ALayout::RowMajor => {
            for p in 0..panels {
                let i0 = p * MR;
                let rows = MR.min(m - i0);
                let base = p * MR * kc;
                for ii in 0..rows {
                    let src = &a[(i0 + ii) * k + k0..(i0 + ii) * k + k0 + kc];
                    for (kk, &v) in src.iter().enumerate() {
                        apack[base + kk * MR + ii] = v;
                    }
                }
            }
        }
        ALayout::Transposed => {
            for p in 0..panels {
                let i0 = p * MR;
                let rows = MR.min(m - i0);
                let base = p * MR * kc;
                for kk in 0..kc {
                    let src = &a[(k0 + kk) * m + i0..(k0 + kk) * m + i0 + rows];
                    apack[base + kk * MR..base + kk * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Pack the `B` stripe of columns `[j0, j0+cols)` for `k ∈ [k0, k0+kc)` into
/// `bstripe[kk*NR + jj]`, zero-padding columns `cols..NR`.
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot path branch-free
fn pack_b_stripe(
    bstripe: &mut [f32],
    b: &[f32],
    layout: BLayout,
    n: usize,
    k: usize,
    k0: usize,
    kc: usize,
    j0: usize,
    cols: usize,
) {
    bstripe[..kc * NR].fill(0.0);
    match layout {
        BLayout::RowMajor => {
            for kk in 0..kc {
                let src = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + cols];
                bstripe[kk * NR..kk * NR + cols].copy_from_slice(src);
            }
        }
        BLayout::Transposed => {
            for jj in 0..cols {
                let src = &b[(j0 + jj) * k + k0..(j0 + jj) * k + k0 + kc];
                for (kk, &v) in src.iter().enumerate() {
                    bstripe[kk * NR + jj] = v;
                }
            }
        }
    }
}

/// Portable register-tiled inner loop: `acc += apanel · bstripe` over `kc`
/// steps. The `MR×NR` tile is processed as two `MR×(NR/2)` halves so the
/// live accumulators fit the 16 128-bit registers of baseline x86-64
/// (SSE2) and aarch64 (NEON) — a single-pass 4×16 tile spills there.
fn microkernel_portable(kc: usize, apanel: &[f32], bstripe: &[f32], acc: &mut [[f32; NR]; MR]) {
    const HALF: usize = NR / 2;
    for half in 0..2 {
        for (a, b) in apanel
            .chunks_exact(MR)
            .zip(bstripe.chunks_exact(NR))
            .take(kc)
        {
            let b = &b[half * HALF..half * HALF + HALF];
            for ii in 0..MR {
                let av = a[ii];
                let row = &mut acc[ii][half * HALF..half * HALF + HALF];
                for (r, &bv) in row.iter_mut().zip(b.iter()) {
                    *r += av * bv;
                }
            }
        }
    }
}

/// AVX2 + FMA specialisation: the full `4×16` tile is eight 256-bit
/// accumulators, and `mul_add` compiles to `vfmadd` under the enabled
/// features (without them it would be a libm call — hence the runtime
/// dispatch in [`microkernel`]).
///
/// # Safety
/// Caller must have verified `avx2` and `fma` support at runtime.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn microkernel_avx2(kc: usize, apanel: &[f32], bstripe: &[f32], acc: &mut [[f32; NR]; MR]) {
    // Work on a by-value copy of the tile so LLVM promotes it to registers
    // for the whole `kc` loop instead of spilling through the `&mut`.
    let mut tile = *acc;
    for (a, b) in apanel
        .chunks_exact(MR)
        .zip(bstripe.chunks_exact(NR))
        .take(kc)
    {
        for ii in 0..MR {
            let av = a[ii];
            let row = &mut tile[ii];
            for (r, &bv) in row.iter_mut().zip(b.iter()) {
                *r = bv.mul_add(av, *r);
            }
        }
    }
    *acc = tile;
}

/// The register-tiled inner loop, dispatched once per call on the CPU's
/// capabilities (the detection macro caches its probe in an atomic).
#[inline]
fn microkernel(kc: usize, apanel: &[f32], bstripe: &[f32], acc: &mut [[f32; NR]; MR]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            // SAFETY: both required features were just detected.
            unsafe { microkernel_avx2(kc, apanel, bstripe, acc) };
            return;
        }
    }
    microkernel_portable(kc, apanel, bstripe, acc)
}

/// Shared packed GEMM driver: `out += op(A) · op(B)` with `out` pre-zeroed by
/// the caller. `out` is row-major `(m, n)`.
#[allow(clippy::too_many_arguments)] // flat scalars keep the hot path branch-free
fn gemm(
    m: usize,
    n: usize,
    k: usize,
    a: &[f32],
    a_layout: ALayout,
    b: &[f32],
    b_layout: BLayout,
    out: &mut [f32],
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let panels = m.div_ceil(MR);
    let mut apack = vec![0.0f32; panels * MR * KC.min(k)];
    let parallel_ok = parallel::threads() > 1 && m * n * k >= PAR_MIN_MACS;
    let out_ptr = SendPtr(out.as_mut_ptr());
    for k0 in (0..k).step_by(KC) {
        let kc = KC.min(k - k0);
        pack_a(&mut apack, a, a_layout, m, k, k0, kc);
        let apack = &apack;
        let worker = move |j_start: usize, j_end: usize| {
            let out_base = out_ptr.get();
            let mut bstripe = vec![0.0f32; kc * NR];
            let mut j0 = j_start;
            while j0 < j_end {
                let cols = NR.min(j_end - j0);
                pack_b_stripe(&mut bstripe, b, b_layout, n, k, k0, kc, j0, cols);
                for p in 0..panels {
                    let i0 = p * MR;
                    let rows = MR.min(m - i0);
                    let mut acc = [[0.0f32; NR]; MR];
                    microkernel(
                        kc,
                        &apack[p * MR * kc..(p + 1) * MR * kc],
                        &bstripe,
                        &mut acc,
                    );
                    for (ii, acc_row) in acc.iter().enumerate().take(rows) {
                        // SAFETY: this worker exclusively owns columns
                        // `[j_start, j_end)` of `out` (par_ranges is
                        // disjoint), so these row segments never overlap.
                        let row = unsafe {
                            std::slice::from_raw_parts_mut(out_base.add((i0 + ii) * n + j0), cols)
                        };
                        for (o, &v) in row.iter_mut().zip(acc_row.iter()) {
                            *o += v;
                        }
                    }
                }
                j0 += cols;
            }
        };
        if parallel_ok {
            parallel::par_ranges(n, NR, worker);
        } else {
            worker(0, n);
        }
    }
}

fn check_matrix(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    t.shape()
        .as_matrix()
        .map_err(|_| TensorError::ShapeMismatch {
            op,
            lhs: t.shape().dims().to_vec(),
            rhs: vec![0, 0],
        })
}

/// `C = A · B` for row-major matrices `A: (m, k)`, `B: (k, n)`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, "matmul")?;
    let (kb, n) = check_matrix(b, "matmul")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        m,
        n,
        k,
        a.data(),
        ALayout::RowMajor,
        b.data(),
        BLayout::RowMajor,
        &mut out,
    );
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = Aᵀ · B` where `A` is stored as `(k, m)` and `B` as `(k, n)`.
///
/// Result is `(m, n)`. Used for the convolution weight gradient
/// (`dW = dOutᵀ · im2col` style products).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_matrix(a, "matmul_tn")?;
    let (kb, n) = check_matrix(b, "matmul_tn")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        m,
        n,
        k,
        a.data(),
        ALayout::Transposed,
        b.data(),
        BLayout::RowMajor,
        &mut out,
    );
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = A · Bᵀ` where `A` is `(m, k)` and `B` is `(n, k)`, both row-major.
///
/// Result is `(m, n)`. Used for the convolution input gradient
/// (`dCol = Wᵀ · dOut` style products) where the weight matrix is naturally
/// stored `(out_c, in_c*kh*kw)`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_matrix(a, "matmul_nt")?;
    let (n, kb) = check_matrix(b, "matmul_nt")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.shape().dims().to_vec(),
            rhs: b.shape().dims().to_vec(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    gemm(
        m,
        n,
        k,
        a.data(),
        ALayout::RowMajor,
        b.data(),
        BLayout::Transposed,
        &mut out,
    );
    Tensor::from_vec(Shape::matrix(m, n), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;

    fn mat(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::matrix(rows, cols), data.to_vec()).unwrap()
    }

    /// The seed's reference O(mnk) kernel, kept as the oracle the packed
    /// kernel is checked against (here and in the crate's property tests).
    fn naive(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape().as_matrix().unwrap();
        let (_, n) = b.shape().as_matrix().unwrap();
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a.data()[i * k + kk] * b.data()[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        mat(m, n, &out)
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = t.shape().as_matrix().unwrap();
        let mut out = vec![0.0; r * c];
        for i in 0..r {
            for j in 0..c {
                out[j * r + i] = t.data()[i * c + j];
            }
        }
        mat(c, r, &out)
    }

    fn assert_close(fast: &Tensor, slow: &Tensor, tol: f32) {
        assert_eq!(fast.shape(), slow.shape());
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let i = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &i).unwrap(), a);
        assert_eq!(matmul(&i, &a).unwrap(), a);
    }

    #[test]
    fn matmul_rejects_mismatch() {
        let a = Tensor::zeros(Shape::matrix(2, 3));
        let b = Tensor::zeros(Shape::matrix(2, 3));
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros(Shape::vector(3));
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn blocked_matches_naive_random() {
        let a = random::uniform(Shape::matrix(17, 33), -1.0, 1.0, 1);
        let b = random::uniform(Shape::matrix(33, 9), -1.0, 1.0, 2);
        assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn packed_matches_naive_off_tile_shapes() {
        // m, n, k deliberately not multiples of MR/NR/KC, including
        // single-row/column edges.
        for (m, k, n, seed) in [
            (1usize, 1usize, 1usize, 10u64),
            (3, 5, 17, 11),
            (5, 7, 15, 12),
            (MR + 1, KC + 3, NR + 1, 13),
            (2 * MR - 1, 2 * KC + 5, 3 * NR - 7, 14),
            (64, 256, 192, 15),
        ] {
            let a = random::uniform(Shape::matrix(m, k), -1.0, 1.0, seed);
            let b = random::uniform(Shape::matrix(k, n), -1.0, 1.0, seed + 100);
            assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 2e-3);
        }
    }

    #[test]
    fn packed_handles_zero_heavy_inputs() {
        // The seed kernel special-cased zeros; the packed kernel must get
        // the same answers on sparse-ish inputs without the branch.
        let mut a = random::uniform(Shape::matrix(9, 40), -1.0, 1.0, 20);
        for (i, v) in a.data_mut().iter_mut().enumerate() {
            if i % 3 != 0 {
                *v = 0.0;
            }
        }
        let b = random::uniform(Shape::matrix(40, 21), -1.0, 1.0, 21);
        assert_close(&matmul(&a, &b).unwrap(), &naive(&a, &b), 1e-4);
    }

    #[test]
    fn result_is_independent_of_thread_count() {
        // Workers split C by column stripes; the k-accumulation order per
        // element is unchanged, so results are bit-for-bit identical.
        let a = random::uniform(Shape::matrix(64, 300), -1.0, 1.0, 30);
        let b = random::uniform(Shape::matrix(300, 100), -1.0, 1.0, 31);
        crate::parallel::set_threads(1);
        let serial = matmul(&a, &b).unwrap();
        crate::parallel::set_threads(4);
        let parallel = matmul(&a, &b).unwrap();
        crate::parallel::set_threads(0);
        assert_eq!(serial.data(), parallel.data());
    }

    #[test]
    fn tn_matches_explicit_transpose() {
        let a = random::uniform(Shape::matrix(13, 7), -1.0, 1.0, 3); // stored (k=13, m=7)
        let b = random::uniform(Shape::matrix(13, 11), -1.0, 1.0, 4);
        let fast = matmul_tn(&a, &b).unwrap();
        assert_eq!(fast.shape().dims(), &[7, 11]);
        assert_close(&fast, &naive(&transpose(&a), &b), 1e-4);
    }

    #[test]
    fn tn_matches_naive_across_blocks() {
        let a = random::uniform(Shape::matrix(KC + 37, 29), -1.0, 1.0, 40);
        let b = random::uniform(Shape::matrix(KC + 37, 19), -1.0, 1.0, 41);
        assert_close(
            &matmul_tn(&a, &b).unwrap(),
            &naive(&transpose(&a), &b),
            2e-3,
        );
    }

    #[test]
    fn nt_matches_explicit_transpose() {
        let a = random::uniform(Shape::matrix(5, 13), -1.0, 1.0, 5);
        let b = random::uniform(Shape::matrix(9, 13), -1.0, 1.0, 6); // (n=9, k=13)
        let fast = matmul_nt(&a, &b).unwrap();
        assert_eq!(fast.shape().dims(), &[5, 9]);
        assert_close(&fast, &naive(&a, &transpose(&b)), 1e-4);
    }

    #[test]
    fn nt_matches_naive_across_blocks() {
        let a = random::uniform(Shape::matrix(23, KC + 41), -1.0, 1.0, 50);
        let b = random::uniform(Shape::matrix(31, KC + 41), -1.0, 1.0, 51);
        assert_close(
            &matmul_nt(&a, &b).unwrap(),
            &naive(&a, &transpose(&b)),
            2e-3,
        );
    }
}
