//! Chunked parallel-for helpers built on crossbeam scoped threads.
//!
//! The ShadowTutor client device in the paper (Jetson Nano) has a quad-core
//! CPU; the server has eight cores. These helpers let the compute kernels use
//! whatever cores the host machine offers without pulling in a full work-
//! stealing scheduler: work is split into contiguous chunks, one scoped
//! thread per chunk. When only one core is available (or the work is below
//! the parallel threshold) everything degrades to a plain serial loop, which
//! keeps single-core CI deterministic and overhead-free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Minimum number of items before a parallel split is worthwhile.
pub const PARALLEL_THRESHOLD: usize = 4096;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

/// Worker count requested via the `ST_THREADS` environment variable
/// (0 when unset or unparseable). Read once per process.
fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("ST_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(0)
    })
}

/// Number of worker threads the helpers will use.
///
/// Resolution order: [`set_threads`] override (useful in code that models a
/// specific device), then the `ST_THREADS` environment variable (useful to
/// pin a whole benchmark run, e.g. `ST_THREADS=1` for single-core numbers),
/// then [`std::thread::available_parallelism`].
pub fn threads() -> usize {
    // ORDER: Relaxed — an isolated tuning knob; no other memory is published
    // through it, and a momentarily stale read only changes a split factor.
    let over = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if over > 0 {
        return over;
    }
    let env = env_threads();
    if env > 0 {
        return env;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pin the number of worker threads (0 restores the automatic default).
pub fn set_threads(n: usize) {
    // ORDER: Relaxed — see `threads()`: a tuning knob, not a publication.
    THREAD_OVERRIDE.store(n, Ordering::Relaxed);
}

/// Apply `f` to every element of `data` in place, splitting the slice across
/// worker threads when it is large enough.
pub fn par_map_in_place<F>(data: &mut [f32], f: F)
where
    F: Fn(f32) -> f32 + Sync,
{
    let n_threads = threads();
    if n_threads <= 1 || data.len() < PARALLEL_THRESHOLD {
        for x in data.iter_mut() {
            *x = f(*x);
        }
        return;
    }
    let chunk = data.len().div_ceil(n_threads);
    crossbeam::scope(|s| {
        for piece in data.chunks_mut(chunk) {
            s.spawn(|_| {
                for x in piece.iter_mut() {
                    *x = f(*x);
                }
            });
        }
    })
    .expect("scoped worker panicked");
}

/// Run `f(chunk_index, chunk)` over contiguous chunks of `data`, in parallel
/// when the slice is large enough. Chunks are the same size except possibly
/// the last one.
pub fn par_chunks_mut<F>(data: &mut [f32], chunk_size: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_size > 0, "chunk_size must be non-zero");
    let n_threads = threads();
    if n_threads <= 1 || data.len() < PARALLEL_THRESHOLD {
        for (i, piece) in data.chunks_mut(chunk_size).enumerate() {
            f(i, piece);
        }
        return;
    }
    crossbeam::scope(|s| {
        for (i, piece) in data.chunks_mut(chunk_size).enumerate() {
            let f = &f;
            s.spawn(move |_| f(i, piece));
        }
    })
    .expect("scoped worker panicked");
}

/// Split `[0, total)` into one contiguous range per worker thread — each
/// range a multiple of `granularity` except possibly the last — and run
/// `f(start, end)` on every non-empty range, in parallel when there is more
/// than one range. `f` is called serially as `f(0, total)` when only one
/// worker is available or `total <= granularity`.
///
/// This is the split the packed GEMM uses to hand disjoint column stripes to
/// workers: the callback owns its index range, not a slice, so kernels whose
/// per-range output is strided (e.g. a column block of a row-major matrix)
/// can do their own addressing.
pub fn par_ranges<F>(total: usize, granularity: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    assert!(granularity > 0, "granularity must be non-zero");
    let n_threads = threads();
    if n_threads <= 1 || total <= granularity {
        if total > 0 {
            f(0, total);
        }
        return;
    }
    let units = total.div_ceil(granularity);
    let per_worker = units.div_ceil(n_threads) * granularity;
    crossbeam::scope(|s| {
        let mut start = 0usize;
        while start < total {
            let end = (start + per_worker).min(total);
            let f = &f;
            s.spawn(move |_| f(start, end));
            start = end;
        }
    })
    .expect("scoped worker panicked");
}

/// Reduce `data` with `map` and a commutative/associative `combine`, in
/// parallel when the slice is large enough.
pub fn par_reduce<F, G>(data: &[f32], identity: f32, map: F, combine: G) -> f32
where
    F: Fn(f32) -> f32 + Sync,
    G: Fn(f32, f32) -> f32 + Sync,
{
    let n_threads = threads();
    if n_threads <= 1 || data.len() < PARALLEL_THRESHOLD {
        return data.iter().fold(identity, |acc, &x| combine(acc, map(x)));
    }
    let chunk = data.len().div_ceil(n_threads);
    let partials: Vec<f32> = crossbeam::scope(|s| {
        let handles: Vec<_> = data
            .chunks(chunk)
            .map(|piece| {
                let map = &map;
                let combine = &combine;
                s.spawn(move |_| piece.iter().fold(identity, |acc, &x| combine(acc, map(x))))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    })
    .expect("scoped worker panicked");
    partials.into_iter().fold(identity, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_in_place_small_and_large() {
        let mut small = vec![1.0f32; 10];
        par_map_in_place(&mut small, |x| x * 2.0);
        assert!(small.iter().all(|&x| x == 2.0));

        let mut large = vec![1.0f32; PARALLEL_THRESHOLD * 2];
        par_map_in_place(&mut large, |x| x + 1.0);
        assert!(large.iter().all(|&x| x == 2.0));
    }

    #[test]
    fn chunks_mut_covers_everything() {
        let mut data = vec![0.0f32; 1000];
        par_chunks_mut(&mut data, 64, |i, chunk| {
            for x in chunk.iter_mut() {
                *x = i as f32;
            }
        });
        // Element 0 belongs to chunk 0, element 999 to chunk 15.
        assert_eq!(data[0], 0.0);
        assert_eq!(data[999], 15.0);
        assert_eq!(data[64], 1.0);
    }

    #[test]
    fn reduce_matches_serial() {
        let data: Vec<f32> = (0..10_000).map(|i| i as f32).collect();
        let sum = par_reduce(&data, 0.0, |x| x, |a, b| a + b);
        let expected: f32 = data.iter().sum();
        assert!((sum - expected).abs() / expected < 1e-5);
        let maxv = par_reduce(&data, f32::NEG_INFINITY, |x| x, f32::max);
        assert_eq!(maxv, 9999.0);
    }

    #[test]
    fn thread_override_round_trip() {
        let original = threads();
        set_threads(3);
        assert_eq!(threads(), 3);
        set_threads(0);
        assert!(threads() >= 1);
        let _ = original;
    }

    #[test]
    #[should_panic(expected = "chunk_size")]
    fn zero_chunk_size_panics() {
        let mut data = vec![0.0f32; 4];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn par_ranges_covers_exactly_once() {
        use std::sync::Mutex;
        for total in [0usize, 1, 7, 16, 100, 4097] {
            for granularity in [1usize, 8, 16] {
                let hits = Mutex::new(vec![0u32; total]);
                par_ranges(total, granularity, |start, end| {
                    assert!(start < end || total == 0);
                    let mut hits = hits.lock().unwrap();
                    for h in &mut hits[start..end] {
                        *h += 1;
                    }
                });
                assert!(
                    hits.into_inner().unwrap().iter().all(|&h| h == 1),
                    "total {total} granularity {granularity} not covered exactly once"
                );
            }
        }
    }

    #[test]
    fn par_ranges_respects_granularity_boundaries() {
        use std::sync::Mutex;
        let starts = Mutex::new(Vec::new());
        par_ranges(100, 16, |start, _end| {
            starts.lock().unwrap().push(start);
        });
        for s in starts.into_inner().unwrap() {
            assert_eq!(s % 16, 0, "range start {s} not aligned to granularity");
        }
    }
}
