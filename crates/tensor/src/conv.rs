//! im2col-based 2-D convolution: forward pass and all three backward passes
//! (input gradient, weight gradient, bias gradient).
//!
//! The student blocks of the ShadowTutor paper use square 3×3, asymmetric
//! 3×1 / 1×3, and pointwise 1×1 kernels, optionally strided for
//! down-sampling, so the implementation supports independent kernel sizes,
//! strides and paddings per axis.

use crate::matmul::{matmul_nt, matmul_tn};
use crate::{Result, Shape, Tensor, TensorError};

/// Static configuration of a 2-D convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dSpec {
    /// Input channels.
    pub in_channels: usize,
    /// Output channels.
    pub out_channels: usize,
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Vertical zero padding (applied on both sides).
    pub pad_h: usize,
    /// Horizontal zero padding (applied on both sides).
    pub pad_w: usize,
}

impl Conv2dSpec {
    /// A square `k`×`k` convolution with "same" padding at stride 1, or the
    /// conventional `k/2` padding when strided.
    pub fn square(in_channels: usize, out_channels: usize, k: usize, stride: usize) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel_h: k,
            kernel_w: k,
            stride_h: stride,
            stride_w: stride,
            pad_h: k / 2,
            pad_w: k / 2,
        }
    }

    /// An asymmetric `kh`×`kw` convolution at stride 1 with "same" padding.
    pub fn rect(in_channels: usize, out_channels: usize, kh: usize, kw: usize) -> Self {
        Conv2dSpec {
            in_channels,
            out_channels,
            kernel_h: kh,
            kernel_w: kw,
            stride_h: 1,
            stride_w: 1,
            pad_h: kh / 2,
            pad_w: kw / 2,
        }
    }

    /// Validate the specification (non-zero kernel and stride).
    pub fn validate(&self) -> Result<()> {
        if self.kernel_h == 0 || self.kernel_w == 0 {
            return Err(TensorError::InvalidArgument(
                "kernel size must be non-zero".into(),
            ));
        }
        if self.stride_h == 0 || self.stride_w == 0 {
            return Err(TensorError::InvalidArgument(
                "stride must be non-zero".into(),
            ));
        }
        if self.in_channels == 0 || self.out_channels == 0 {
            return Err(TensorError::InvalidArgument(
                "channel counts must be non-zero".into(),
            ));
        }
        Ok(())
    }

    /// Output spatial size for an `(h, w)` input.
    pub fn output_size(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad_h).saturating_sub(self.kernel_h) / self.stride_h + 1;
        let ow = (w + 2 * self.pad_w).saturating_sub(self.kernel_w) / self.stride_w + 1;
        (oh, ow)
    }

    /// Shape of the weight tensor: `(out_c, in_c, kh, kw)`.
    pub fn weight_shape(&self) -> Shape {
        Shape::new(&[
            self.out_channels,
            self.in_channels,
            self.kernel_h,
            self.kernel_w,
        ])
    }

    /// Number of weight parameters (excluding bias).
    pub fn weight_count(&self) -> usize {
        self.out_channels * self.in_channels * self.kernel_h * self.kernel_w
    }

    /// Number of multiply-accumulate operations for an `(h, w)` input.
    pub fn macs(&self, h: usize, w: usize) -> u64 {
        let (oh, ow) = self.output_size(h, w);
        (oh * ow) as u64
            * self.out_channels as u64
            * self.in_channels as u64
            * (self.kernel_h * self.kernel_w) as u64
    }
}

/// Lower a batch of input images into one im2col matrix.
///
/// The result has shape `(in_c * kh * kw, n * oh * ow)`: frame `ni` owns the
/// contiguous column block `[ni*oh*ow, (ni+1)*oh*ow)`, and each column holds
/// the receptive field of one output pixel. The whole batch therefore
/// becomes a *single* GEMM with the `(out_c, in_c*kh*kw)` weight matrix —
/// the lowering the multi-stream teacher pool uses to label co-scheduled key
/// frames in one forward pass.
///
/// Each frame's column block is computed exactly as the single-frame
/// lowering would, so batched and per-frame convolutions are bit-for-bit
/// identical.
pub fn im2col_batched(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    spec.validate()?;
    let (n, c, h, w) = input.shape().as_nchw()?;
    if n == 0 {
        return Err(TensorError::InvalidArgument(
            "im2col_batched needs at least one frame".into(),
        ));
    }
    if c != spec.in_channels {
        return Err(TensorError::ShapeMismatch {
            op: "im2col",
            lhs: input.shape().dims().to_vec(),
            rhs: vec![n, spec.in_channels, 0, 0],
        });
    }
    let (oh, ow) = spec.output_size(h, w);
    let rows = c * spec.kernel_h * spec.kernel_w;
    let plane = oh * ow;
    let cols = n * plane;
    let mut out = vec![0.0f32; rows * cols];
    let in_data = input.data();
    let frame_len = c * h * w;
    for ni in 0..n {
        let frame = &in_data[ni * frame_len..(ni + 1) * frame_len];
        for ci in 0..c {
            for kh in 0..spec.kernel_h {
                for kw in 0..spec.kernel_w {
                    let row = (ci * spec.kernel_h + kh) * spec.kernel_w + kw;
                    let out_row = &mut out[row * cols + ni * plane..row * cols + (ni + 1) * plane];
                    for oy in 0..oh {
                        let iy = (oy * spec.stride_h + kh) as isize - spec.pad_h as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let in_row_base = (ci * h + iy as usize) * w;
                        let out_base = oy * ow;
                        for ox in 0..ow {
                            let ix = (ox * spec.stride_w + kw) as isize - spec.pad_w as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            out_row[out_base + ox] = frame[in_row_base + ix as usize];
                        }
                    }
                }
            }
        }
    }
    Tensor::from_vec(Shape::matrix(rows, cols), out)
}

/// Lower an input image into the im2col matrix.
///
/// Thin wrapper over [`im2col_batched`] (any batch size is accepted; the
/// seed's batch-1 restriction is gone). For a single frame the result has
/// shape `(in_c * kh * kw, oh * ow)`.
pub fn im2col(input: &Tensor, spec: &Conv2dSpec) -> Result<Tensor> {
    im2col_batched(input, spec)
}

/// Scatter an im2col-shaped gradient back onto the input image (the adjoint
/// of [`im2col`]). Overlapping receptive fields accumulate.
pub fn col2im(cols: &Tensor, spec: &Conv2dSpec, h: usize, w: usize) -> Result<Tensor> {
    spec.validate()?;
    let (rows, ncols) = cols.shape().as_matrix()?;
    let (oh, ow) = spec.output_size(h, w);
    if rows != spec.in_channels * spec.kernel_h * spec.kernel_w || ncols != oh * ow {
        return Err(TensorError::ShapeMismatch {
            op: "col2im",
            lhs: cols.shape().dims().to_vec(),
            rhs: vec![spec.in_channels * spec.kernel_h * spec.kernel_w, oh * ow],
        });
    }
    let mut out = Tensor::zeros(Shape::nchw(1, spec.in_channels, h, w));
    let out_data = out.data_mut();
    let col_data = cols.data();
    for ci in 0..spec.in_channels {
        for kh in 0..spec.kernel_h {
            for kw in 0..spec.kernel_w {
                let row = (ci * spec.kernel_h + kh) * spec.kernel_w + kw;
                let col_row = &col_data[row * ncols..(row + 1) * ncols];
                for oy in 0..oh {
                    let iy = (oy * spec.stride_h + kh) as isize - spec.pad_h as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let out_row_base = (ci * h + iy as usize) * w;
                    let col_base = oy * ow;
                    for ox in 0..ow {
                        let ix = (ox * spec.stride_w + kw) as isize - spec.pad_w as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        out_data[out_row_base + ix as usize] += col_row[col_base + ox];
                    }
                }
            }
        }
    }
    Ok(out)
}

/// Forward convolution: `output = weight * im2col(input) + bias`, for a
/// batch of `n` frames in one GEMM.
///
/// * `input`  — `(n, in_c, h, w)`
/// * `weight` — `(out_c, in_c, kh, kw)`
/// * `bias`   — `(out_c)` or `None`
///
/// Returns `(output, columns)` with `output` shaped `(n, out_c, oh, ow)`.
/// The columns are reused by [`conv2d_backward`] so each key-frame
/// distillation step lowers the input only once (the backward pass is
/// per-frame: distillation trains on single key frames).
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    spec: &Conv2dSpec,
) -> Result<(Tensor, Tensor)> {
    if !weight.shape().same_as(&spec.weight_shape()) {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward(weight)",
            lhs: weight.shape().dims().to_vec(),
            rhs: spec.weight_shape().dims().to_vec(),
        });
    }
    if let Some(b) = bias {
        if b.numel() != spec.out_channels {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_forward(bias)",
                lhs: b.shape().dims().to_vec(),
                rhs: vec![spec.out_channels],
            });
        }
    }
    let (n, _, h, w) = input.shape().as_nchw()?;
    let (oh, ow) = spec.output_size(h, w);
    let cols = im2col_batched(input, spec)?;
    let k = spec.in_channels * spec.kernel_h * spec.kernel_w;
    let w_mat = weight.reshape(Shape::matrix(spec.out_channels, k))?;
    // (out_c, k) x (k, n*oh*ow) -> (out_c, n*oh*ow), frame-major columns.
    let out_mat = crate::matmul::matmul(&w_mat, &cols)?;
    let plane = oh * ow;
    let mut out = if n == 1 {
        // Single frame (the per-frame training hot path): the GEMM result
        // *is* the output layout — reshape in place, no copy.
        out_mat.reshape(Shape::nchw(1, spec.out_channels, oh, ow))?
    } else {
        // Batched: the GEMM result is channel-major over frame-major
        // columns; scatter each (frame, channel) plane into NCHW order.
        let mut out = Tensor::zeros(Shape::nchw(n, spec.out_channels, oh, ow));
        let src = out_mat.data();
        let dst = out.data_mut();
        for ni in 0..n {
            for oc in 0..spec.out_channels {
                let row = &src[oc * n * plane + ni * plane..oc * n * plane + (ni + 1) * plane];
                dst[(ni * spec.out_channels + oc) * plane
                    ..(ni * spec.out_channels + oc + 1) * plane]
                    .copy_from_slice(row);
            }
        }
        out
    };
    if let Some(b) = bias {
        let data = out.data_mut();
        for ni in 0..n {
            for oc in 0..spec.out_channels {
                let bv = b.data()[oc];
                for v in &mut data[(ni * spec.out_channels + oc) * plane
                    ..(ni * spec.out_channels + oc + 1) * plane]
                {
                    *v += bv;
                }
            }
        }
    }
    Ok((out, cols))
}

/// Gradients produced by [`conv2d_backward`].
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `(1, in_c, h, w)`.
    /// `None` when `need_input_grad` was false (the frozen front of the
    /// student never needs it).
    pub input: Option<Tensor>,
    /// Gradient with respect to the weights, `(out_c, in_c, kh, kw)`.
    pub weight: Tensor,
    /// Gradient with respect to the bias, `(out_c)`.
    pub bias: Tensor,
}

/// Backward convolution given the upstream gradient `grad_out`
/// (`(1, out_c, oh, ow)`), the cached im2col `columns` from the forward
/// pass, and the original input spatial size.
pub fn conv2d_backward(
    grad_out: &Tensor,
    columns: &Tensor,
    weight: &Tensor,
    spec: &Conv2dSpec,
    input_h: usize,
    input_w: usize,
    need_input_grad: bool,
) -> Result<Conv2dGrads> {
    let (n, oc, oh, ow) = grad_out.shape().as_nchw()?;
    if n != 1 {
        // Distillation trains on single key frames; only the forward/
        // inference path is batched.
        return Err(TensorError::InvalidArgument(
            "conv2d_backward expects a single-frame gradient (training is per-frame)".into(),
        ));
    }
    if oc != spec.out_channels {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: grad_out.shape().dims().to_vec(),
            rhs: vec![1, spec.out_channels, 0, 0],
        });
    }
    let k = spec.in_channels * spec.kernel_h * spec.kernel_w;
    let go_mat = grad_out.reshape(Shape::matrix(oc, oh * ow))?;

    // dW = grad_out (oc, P) * columns^T (P, k) -> (oc, k)
    let dw_mat = matmul_nt(&go_mat, columns)?;
    let weight_grad = dw_mat.reshape(spec.weight_shape())?;

    // db_c = sum over pixels of grad_out channel c
    let mut bias_grad = Tensor::zeros(Shape::vector(oc));
    {
        let bg = bias_grad.data_mut();
        let god = go_mat.data();
        let plane = oh * ow;
        for c in 0..oc {
            bg[c] = god[c * plane..(c + 1) * plane].iter().sum();
        }
    }

    // dInput = col2im( W^T (k, oc) * grad_out (oc, P) ) -> (k, P)
    let input_grad = if need_input_grad {
        let w_mat = weight.reshape(Shape::matrix(oc, k))?;
        let dcol = matmul_tn(&w_mat, &go_mat)?; // (k, P)
        Some(col2im(&dcol, spec, input_h, input_w)?)
    } else {
        None
    };

    Ok(Conv2dGrads {
        input: input_grad,
        weight: weight_grad,
        bias: bias_grad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;

    /// Direct (non-im2col) convolution used as a reference.
    fn naive_conv(
        input: &Tensor,
        weight: &Tensor,
        bias: Option<&Tensor>,
        spec: &Conv2dSpec,
    ) -> Tensor {
        let (_, c, h, w) = input.shape().as_nchw().unwrap();
        let (oh, ow) = spec.output_size(h, w);
        let mut out = Tensor::zeros(Shape::nchw(1, spec.out_channels, oh, ow));
        for ocn in 0..spec.out_channels {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias.map(|b| b.data()[ocn]).unwrap_or(0.0);
                    for ci in 0..c {
                        for kh in 0..spec.kernel_h {
                            for kw in 0..spec.kernel_w {
                                let iy = (oy * spec.stride_h + kh) as isize - spec.pad_h as isize;
                                let ix = (ox * spec.stride_w + kw) as isize - spec.pad_w as isize;
                                if iy < 0 || ix < 0 || iy >= h as isize || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at4(0, ci, iy as usize, ix as usize)
                                    * weight.at4(ocn, ci, kh, kw);
                            }
                        }
                    }
                    out.set4(0, ocn, oy, ox, acc);
                }
            }
        }
        out
    }

    #[test]
    fn output_size_math() {
        let s = Conv2dSpec::square(3, 8, 3, 1);
        assert_eq!(s.output_size(10, 12), (10, 12));
        let s2 = Conv2dSpec::square(3, 8, 3, 2);
        assert_eq!(s2.output_size(10, 12), (5, 6));
        let s3 = Conv2dSpec::rect(4, 4, 3, 1);
        assert_eq!(s3.output_size(7, 7), (7, 7));
    }

    #[test]
    fn spec_validation() {
        let mut s = Conv2dSpec::square(3, 8, 3, 1);
        assert!(s.validate().is_ok());
        s.stride_w = 0;
        assert!(s.validate().is_err());
        let z = Conv2dSpec::square(0, 8, 3, 1);
        assert!(z.validate().is_err());
    }

    #[test]
    fn forward_matches_naive_3x3() {
        let spec = Conv2dSpec::square(3, 5, 3, 1);
        let input = random::uniform(Shape::nchw(1, 3, 9, 11), -1.0, 1.0, 10);
        let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, 11);
        let bias = random::uniform(Shape::vector(5), -0.1, 0.1, 12);
        let (out, _) = conv2d_forward(&input, &weight, Some(&bias), &spec).unwrap();
        let expected = naive_conv(&input, &weight, Some(&bias), &spec);
        for (a, b) in out.data().iter().zip(expected.data().iter()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn forward_matches_naive_strided_and_rect() {
        for spec in [
            Conv2dSpec::square(2, 4, 3, 2),
            Conv2dSpec::rect(2, 4, 3, 1),
            Conv2dSpec::rect(2, 4, 1, 3),
            Conv2dSpec::square(2, 4, 1, 1),
        ] {
            let input = random::uniform(Shape::nchw(1, 2, 8, 10), -1.0, 1.0, 20);
            let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, 21);
            let (out, _) = conv2d_forward(&input, &weight, None, &spec).unwrap();
            let expected = naive_conv(&input, &weight, None, &spec);
            assert_eq!(out.shape(), expected.shape());
            for (a, b) in out.data().iter().zip(expected.data().iter()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn forward_rejects_bad_shapes() {
        let spec = Conv2dSpec::square(3, 5, 3, 1);
        let input = Tensor::zeros(Shape::nchw(1, 4, 8, 8)); // wrong channels
        let weight = Tensor::zeros(spec.weight_shape());
        assert!(conv2d_forward(&input, &weight, None, &spec).is_err());
        let input_ok = Tensor::zeros(Shape::nchw(1, 3, 8, 8));
        let bad_weight = Tensor::zeros(Shape::nchw(5, 3, 2, 2));
        assert!(conv2d_forward(&input_ok, &bad_weight, None, &spec).is_err());
    }

    /// Numerical-gradient check of the full backward pass.
    #[test]
    fn backward_matches_numerical_gradients() {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let input = random::uniform(Shape::nchw(1, 2, 5, 6), -1.0, 1.0, 30);
        let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, 31);
        let bias = random::uniform(Shape::vector(3), -0.1, 0.1, 32);

        // Scalar loss = sum of outputs * fixed random coefficients.
        let coeff = random::uniform(Shape::nchw(1, 3, 5, 6), -1.0, 1.0, 33);
        let loss = |inp: &Tensor, wgt: &Tensor, b: &Tensor| -> f32 {
            let (out, _) = conv2d_forward(inp, wgt, Some(b), &spec).unwrap();
            out.mul(&coeff).unwrap().sum()
        };

        let (_, cols) = conv2d_forward(&input, &weight, Some(&bias), &spec).unwrap();
        let grads = conv2d_backward(&coeff, &cols, &weight, &spec, 5, 6, true).unwrap();

        let eps = 1e-2f32;
        // Check a sample of weight gradients.
        for idx in [0usize, 7, 13, 29, 53] {
            let mut wp = weight.clone();
            wp.data_mut()[idx] += eps;
            let mut wm = weight.clone();
            wm.data_mut()[idx] -= eps;
            let num = (loss(&input, &wp, &bias) - loss(&input, &wm, &bias)) / (2.0 * eps);
            let ana = grads.weight.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "weight[{idx}]: num {num} vs ana {ana}"
            );
        }
        // Check a sample of input gradients.
        let gin = grads.input.unwrap();
        for idx in [0usize, 11, 23, 47] {
            let mut ip = input.clone();
            ip.data_mut()[idx] += eps;
            let mut im = input.clone();
            im.data_mut()[idx] -= eps;
            let num = (loss(&ip, &weight, &bias) - loss(&im, &weight, &bias)) / (2.0 * eps);
            let ana = gin.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "input[{idx}]: num {num} vs ana {ana}"
            );
        }
        // Check bias gradients.
        for idx in 0..3 {
            let mut bp = bias.clone();
            bp.data_mut()[idx] += eps;
            let mut bm = bias.clone();
            bm.data_mut()[idx] -= eps;
            let num = (loss(&input, &weight, &bp) - loss(&input, &weight, &bm)) / (2.0 * eps);
            let ana = grads.bias.data()[idx];
            assert!(
                (num - ana).abs() < 2e-2,
                "bias[{idx}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn backward_can_skip_input_grad() {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let input = random::uniform(Shape::nchw(1, 2, 4, 4), -1.0, 1.0, 40);
        let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, 41);
        let (out, cols) = conv2d_forward(&input, &weight, None, &spec).unwrap();
        let grads = conv2d_backward(&out, &cols, &weight, &spec, 4, 4, false).unwrap();
        assert!(grads.input.is_none());
        assert!(grads.weight.all_finite());
    }

    #[test]
    fn batched_forward_is_bit_for_bit_per_frame() {
        // The batched lowering packs each frame's columns exactly as the
        // single-frame lowering does, so outputs must be *identical*, not
        // just close — the batched teacher pool relies on this.
        for spec in [
            Conv2dSpec::square(3, 5, 3, 1),
            Conv2dSpec::square(2, 4, 3, 2),
            Conv2dSpec::rect(2, 4, 1, 3),
        ] {
            let n = 4;
            let batch = random::uniform(Shape::nchw(n, spec.in_channels, 8, 10), -1.0, 1.0, 60);
            let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, 61);
            let bias = random::uniform(Shape::vector(spec.out_channels), -0.1, 0.1, 62);
            let (batched, cols) = conv2d_forward(&batch, &weight, Some(&bias), &spec).unwrap();
            let (oh, ow) = spec.output_size(8, 10);
            assert_eq!(batched.shape().dims(), &[n, spec.out_channels, oh, ow]);
            assert_eq!(
                cols.shape().dims(),
                &[
                    spec.in_channels * spec.kernel_h * spec.kernel_w,
                    n * oh * ow
                ]
            );
            let frame_len = spec.in_channels * 8 * 10;
            let out_len = spec.out_channels * oh * ow;
            for ni in 0..n {
                let frame = Tensor::from_vec(
                    Shape::nchw(1, spec.in_channels, 8, 10),
                    batch.data()[ni * frame_len..(ni + 1) * frame_len].to_vec(),
                )
                .unwrap();
                let (solo, _) = conv2d_forward(&frame, &weight, Some(&bias), &spec).unwrap();
                assert_eq!(
                    solo.data(),
                    &batched.data()[ni * out_len..(ni + 1) * out_len],
                    "frame {ni} differs from its batched slice"
                );
            }
        }
    }

    #[test]
    fn backward_rejects_batched_gradients() {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let batch = random::uniform(Shape::nchw(2, 2, 4, 4), -1.0, 1.0, 70);
        let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, 71);
        let (out, cols) = conv2d_forward(&batch, &weight, None, &spec).unwrap();
        let err = conv2d_backward(&out, &cols, &weight, &spec, 4, 4, true).unwrap_err();
        assert!(format!("{err:?}").contains("per-frame"));
    }

    #[test]
    fn im2col_col2im_adjoint_property() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y (adjointness).
        let spec = Conv2dSpec::square(2, 1, 3, 2);
        let x = random::uniform(Shape::nchw(1, 2, 6, 7), -1.0, 1.0, 50);
        let cols = im2col(&x, &spec).unwrap();
        let y = random::uniform(cols.shape().clone(), -1.0, 1.0, 51);
        let lhs = cols.mul(&y).unwrap().sum();
        let back = col2im(&y, &spec, 6, 7).unwrap();
        let rhs = x.mul(&back).unwrap().sum();
        assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs}");
    }

    #[test]
    fn macs_counting() {
        let spec = Conv2dSpec::square(3, 8, 3, 1);
        // 4x4 output, 3 in, 8 out, 9 taps
        assert_eq!(spec.macs(4, 4), (4 * 4 * 3 * 8 * 9) as u64);
    }
}
