//! Dense, contiguous, row-major `f32` tensor with copy-on-write storage.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// A dense, contiguous, row-major `f32` tensor.
///
/// The data buffer is always exactly `shape.numel()` elements long.
/// Operations that could fail on shape mismatch return [`Result`]; helpers
/// ending in `_unchecked` assume the caller validated shapes and are used in
/// hot inner loops.
///
/// Storage is **copy-on-write**: [`Clone`] (and [`Tensor::reshape`]) share
/// the underlying buffer, and the first mutation through any `&mut self`
/// method materializes a private copy ([`Arc::make_mut`]). A fleet of
/// sessions cloned from one pretrained template therefore costs one buffer
/// per *written* tensor, not one per session — frozen weights stay
/// physically shared. [`Tensor::shares_storage`] / [`Tensor::storage_id`]
/// expose the sharing structure for memory accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Arc<Vec<f32>>,
}

impl Tensor {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// A tensor of the given shape filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![0.0; n]),
        }
    }

    /// A tensor of the given shape filled with ones.
    pub fn ones(shape: Shape) -> Self {
        Self::full(shape, 1.0)
    }

    /// A tensor of the given shape filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.numel();
        Tensor {
            shape,
            data: Arc::new(vec![value; n]),
        }
    }

    /// Build a tensor from an existing buffer.
    ///
    /// Fails if the buffer length does not match the shape.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: Arc::new(data),
        })
    }

    /// Build a 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor {
            shape: Shape::vector(data.len()),
            data: Arc::new(data.to_vec()),
        }
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        self.data.as_slice()
    }

    /// Mutable view of the underlying buffer (row-major).
    ///
    /// If the buffer is shared with other tensors (copy-on-write clones), a
    /// private copy is materialized first; a uniquely owned buffer is
    /// returned in place at the cost of one refcount check.
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consume the tensor and return its buffer (copying only if the buffer
    /// is still shared with another tensor).
    pub fn into_vec(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// Bytes of `f32` payload in the underlying buffer (shared or not).
    pub fn storage_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f32>()
    }

    /// Stable identity of the underlying copy-on-write buffer. Two tensors
    /// with equal `storage_id` physically share one allocation.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.data) as usize
    }

    /// Whether `self` and `other` physically share one copy-on-write buffer
    /// (a clone that neither side has written through yet).
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Set the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        Arc::make_mut(&mut self.data)[off] = value;
        Ok(())
    }

    /// Element of a 4-D tensor at `(n, c, h, w)` without bounds re-derivation.
    ///
    /// Panics in debug builds when the tensor is not 4-D or the index is out
    /// of range; intended for hot loops that already validated shapes.
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let d = self.shape.dims();
        debug_assert_eq!(d.len(), 4);
        debug_assert!(n < d[0] && c < d[1] && h < d[2] && w < d[3]);
        let idx = ((n * d[1] + c) * d[2] + h) * d[3] + w;
        self.data[idx]
    }

    /// Set an element of a 4-D tensor at `(n, c, h, w)`.
    #[inline]
    pub fn set4(&mut self, n: usize, c: usize, h: usize, w: usize, value: f32) {
        let d = self.shape.dims();
        debug_assert_eq!(d.len(), 4);
        let idx = ((n * d[1] + c) * d[2] + h) * d[3] + w;
        Arc::make_mut(&mut self.data)[idx] = value;
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Reinterpret the tensor with a new shape of identical element count.
    pub fn reshape(&self, shape: Shape) -> Result<Tensor> {
        if shape.numel() != self.numel() {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.shape.dims().to_vec(),
                rhs: shape.dims().to_vec(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Concatenate 4-D tensors along the channel axis.
    ///
    /// All inputs must agree on `N`, `H` and `W`.
    pub fn concat_channels(tensors: &[&Tensor]) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::InvalidArgument(
                "concat_channels requires at least one tensor".into(),
            ));
        }
        let (n, _, h, w) = tensors[0].shape.as_nchw()?;
        let mut total_c = 0usize;
        for t in tensors {
            let (tn, tc, th, tw) = t.shape.as_nchw()?;
            if tn != n || th != h || tw != w {
                return Err(TensorError::ShapeMismatch {
                    op: "concat_channels",
                    lhs: tensors[0].shape.dims().to_vec(),
                    rhs: t.shape.dims().to_vec(),
                });
            }
            total_c += tc;
        }
        let mut out = Tensor::zeros(Shape::nchw(n, total_c, h, w));
        let plane = h * w;
        let out_data = Arc::make_mut(&mut out.data);
        for ni in 0..n {
            let mut c_off = 0usize;
            for t in tensors {
                let tc = t.shape.dim(1);
                let src_base = ni * tc * plane;
                let dst_base = (ni * total_c + c_off) * plane;
                out_data[dst_base..dst_base + tc * plane]
                    .copy_from_slice(&t.data[src_base..src_base + tc * plane]);
                c_off += tc;
            }
        }
        Ok(out)
    }

    /// Stack 4-D tensors along the batch axis.
    ///
    /// All inputs must agree on `C`, `H` and `W`; the result's batch size is
    /// the sum of the inputs' (so `(1, C, H, W)` frames stack into
    /// `(N, C, H, W)`). This is how the batched teacher forward assembles
    /// co-scheduled key frames into one input.
    pub fn stack_batch(tensors: &[&Tensor]) -> Result<Tensor> {
        if tensors.is_empty() {
            return Err(TensorError::InvalidArgument(
                "stack_batch requires at least one tensor".into(),
            ));
        }
        let (_, c, h, w) = tensors[0].shape.as_nchw()?;
        let mut total_n = 0usize;
        for t in tensors {
            let (tn, tc, th, tw) = t.shape.as_nchw()?;
            if tc != c || th != h || tw != w {
                return Err(TensorError::ShapeMismatch {
                    op: "stack_batch",
                    lhs: tensors[0].shape.dims().to_vec(),
                    rhs: t.shape.dims().to_vec(),
                });
            }
            total_n += tn;
        }
        let mut data = Vec::with_capacity(total_n * c * h * w);
        for t in tensors {
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(Shape::nchw(total_n, c, h, w), data)
    }

    /// Split channels `[start, start+len)` out of a 4-D tensor.
    pub fn slice_channels(&self, start: usize, len: usize) -> Result<Tensor> {
        let (n, c, h, w) = self.shape.as_nchw()?;
        if start + len > c {
            return Err(TensorError::IndexOutOfBounds {
                index: start + len,
                len: c,
            });
        }
        let mut out = Tensor::zeros(Shape::nchw(n, len, h, w));
        let plane = h * w;
        let out_data = Arc::make_mut(&mut out.data);
        for ni in 0..n {
            let src_base = (ni * c + start) * plane;
            let dst_base = ni * len * plane;
            out_data[dst_base..dst_base + len * plane]
                .copy_from_slice(&self.data[src_base..src_base + len * plane]);
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic
    // ------------------------------------------------------------------

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if !self.shape.same_as(&other.shape) {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.dims().to_vec(),
                rhs: other.shape.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Elementwise sum, returning a new tensor.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        let data = Arc::new(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        );
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise difference, returning a new tensor.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        let data = Arc::new(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        );
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Elementwise product, returning a new tensor.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        let data = Arc::new(
            self.data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a * b)
                .collect(),
        );
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// In-place elementwise accumulate: `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in Arc::make_mut(&mut self.data)
            .iter_mut()
            .zip(other.data.iter())
        {
            *a += b;
        }
        Ok(())
    }

    /// In-place scaled accumulate: `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in Arc::make_mut(&mut self.data)
            .iter_mut()
            .zip(other.data.iter())
        {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiply every element by `alpha`, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|x| x * alpha).collect()),
        }
    }

    /// Multiply every element by `alpha` in place.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for x in Arc::make_mut(&mut self.data).iter_mut() {
            *x *= alpha;
        }
    }

    /// Apply a function to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: Arc::new(self.data.iter().map(|&x| f(x)).collect()),
        }
    }

    /// Fill the tensor with zeros in place (reusing the allocation).
    pub fn zero_(&mut self) {
        for x in Arc::make_mut(&mut self.data).iter_mut() {
            *x = 0.0;
        }
    }

    /// Clamp every element into `[lo, hi]`, returning a new tensor.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        self.map(|x| x.clamp(lo, hi))
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Sum of squares of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Euclidean norm of the flattened tensor.
    pub fn norm(&self) -> f32 {
        self.sq_norm().sqrt()
    }

    /// True if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Per-pixel argmax over the channel axis of an NCHW tensor.
    ///
    /// Returns an `N*H*W` vector of class indices, frame-major (frame `ni`
    /// owns `[ni*H*W, (ni+1)*H*W)`). Used to turn segmentation logits into
    /// label maps, one per batched frame.
    pub fn argmax_channels(&self) -> Result<Vec<usize>> {
        let (n, c, h, w) = self.shape.as_nchw()?;
        let plane = h * w;
        let mut out = vec![0usize; n * plane];
        for ni in 0..n {
            let frame = &self.data[ni * c * plane..(ni + 1) * c * plane];
            for (p, slot) in out[ni * plane..(ni + 1) * plane].iter_mut().enumerate() {
                let mut best = f32::NEG_INFINITY;
                let mut best_c = 0usize;
                for ci in 0..c {
                    let v = frame[ci * plane + p];
                    if v > best {
                        best = v;
                        best_c = ci;
                    }
                }
                *slot = best_c;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::new(shape), data.to_vec()).unwrap()
    }

    #[test]
    fn constructors() {
        let z = Tensor::zeros(Shape::matrix(2, 3));
        assert_eq!(z.numel(), 6);
        assert_eq!(z.sum(), 0.0);
        let o = Tensor::ones(Shape::vector(4));
        assert_eq!(o.sum(), 4.0);
        let f = Tensor::full(Shape::vector(3), 2.5);
        assert_eq!(f.mean(), 2.5);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(Shape::matrix(2, 2), vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(Shape::matrix(2, 2), vec![1.0; 4]).is_ok());
    }

    #[test]
    fn indexing_round_trip() {
        let mut x = Tensor::zeros(Shape::nchw(1, 2, 3, 4));
        x.set(&[0, 1, 2, 3], 7.0).unwrap();
        assert_eq!(x.at(&[0, 1, 2, 3]).unwrap(), 7.0);
        assert_eq!(x.at4(0, 1, 2, 3), 7.0);
        x.set4(0, 0, 0, 0, -1.0);
        assert_eq!(x.at(&[0, 0, 0, 0]).unwrap(), -1.0);
    }

    #[test]
    fn elementwise_ops() {
        let a = t(&[2, 2], &[1.0, 2.0, 3.0, 4.0]);
        let b = t(&[2, 2], &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0, 33.0, 44.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[9.0, 18.0, 27.0, 36.0]);
        assert_eq!(a.mul(&a).unwrap().data(), &[1.0, 4.0, 9.0, 16.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn elementwise_shape_mismatch() {
        let a = Tensor::zeros(Shape::matrix(2, 2));
        let b = Tensor::zeros(Shape::matrix(2, 3));
        assert!(a.add(&b).is_err());
        assert!(a.sub(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = t(&[3], &[1.0, 1.0, 1.0]);
        let b = t(&[3], &[1.0, 2.0, 3.0]);
        a.add_assign(&b).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0, 4.0]);
        a.axpy(0.5, &b).unwrap();
        assert_eq!(a.data(), &[2.5, 4.0, 5.5]);
    }

    #[test]
    fn reductions() {
        let a = t(&[4], &[-1.0, 0.0, 2.0, 3.0]);
        assert_eq!(a.sum(), 4.0);
        assert_eq!(a.mean(), 1.0);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -1.0);
        assert!((a.norm() - (14.0f32).sqrt()).abs() < 1e-6);
        assert!(a.all_finite());
        let nan = t(&[1], &[f32::NAN]);
        assert!(!nan.all_finite());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = t(&[2, 3], &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = a.reshape(Shape::new(&[3, 2])).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(Shape::new(&[4, 2])).is_err());
    }

    #[test]
    fn concat_and_slice_channels() {
        let a = Tensor::full(Shape::nchw(1, 2, 2, 2), 1.0);
        let b = Tensor::full(Shape::nchw(1, 3, 2, 2), 2.0);
        let c = Tensor::concat_channels(&[&a, &b]).unwrap();
        assert_eq!(c.shape().dims(), &[1, 5, 2, 2]);
        assert_eq!(c.at4(0, 1, 0, 0), 1.0);
        assert_eq!(c.at4(0, 2, 0, 0), 2.0);
        let s = c.slice_channels(2, 3).unwrap();
        assert_eq!(s.shape().dims(), &[1, 3, 2, 2]);
        assert_eq!(s.sum(), 2.0 * 12.0);
        // round trip
        let a2 = c.slice_channels(0, 2).unwrap();
        assert_eq!(a2, a);
    }

    #[test]
    fn concat_rejects_mismatched_spatial() {
        let a = Tensor::zeros(Shape::nchw(1, 1, 2, 2));
        let b = Tensor::zeros(Shape::nchw(1, 1, 3, 2));
        assert!(Tensor::concat_channels(&[&a, &b]).is_err());
        assert!(Tensor::concat_channels(&[]).is_err());
    }

    #[test]
    fn stack_batch_concatenates_frames() {
        let a = t(&[1, 2, 2, 2], &[1.0; 8]);
        let b = t(&[1, 2, 2, 2], &[2.0; 8]);
        let stacked = Tensor::stack_batch(&[&a, &b]).unwrap();
        assert_eq!(stacked.shape().dims(), &[2, 2, 2, 2]);
        assert_eq!(&stacked.data()[..8], a.data());
        assert_eq!(&stacked.data()[8..], b.data());
        // Mixed shapes are rejected; empty input is rejected.
        let c = t(&[1, 2, 2, 3], &[0.0; 12]);
        assert!(Tensor::stack_batch(&[&a, &c]).is_err());
        assert!(Tensor::stack_batch(&[]).is_err());
    }

    #[test]
    fn argmax_channels_handles_batches_frame_major() {
        // Frame 0: channel 1 wins everywhere; frame 1: channel 0 wins.
        let mut x = Tensor::zeros(Shape::nchw(2, 2, 1, 2));
        x.set4(0, 1, 0, 0, 1.0);
        x.set4(0, 1, 0, 1, 1.0);
        x.set4(1, 0, 0, 0, 1.0);
        x.set4(1, 0, 0, 1, 1.0);
        assert_eq!(x.argmax_channels().unwrap(), vec![1, 1, 0, 0]);
    }

    #[test]
    fn argmax_channels_picks_largest() {
        // 3 channels, 2x2: channel index == value rank
        let mut x = Tensor::zeros(Shape::nchw(1, 3, 2, 2));
        x.set4(0, 0, 0, 0, 5.0); // pixel 0 -> class 0
        x.set4(0, 1, 0, 1, 5.0); // pixel 1 -> class 1
        x.set4(0, 2, 1, 0, 5.0); // pixel 2 -> class 2
        x.set4(0, 1, 1, 1, 5.0); // pixel 3 -> class 1
        assert_eq!(x.argmax_channels().unwrap(), vec![0, 1, 2, 1]);
    }

    #[test]
    fn map_and_clamp() {
        let a = t(&[3], &[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
        assert_eq!(a.map(|x| x * x).data(), &[4.0, 0.25, 9.0]);
    }
}
