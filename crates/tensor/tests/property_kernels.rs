//! Property-based tests of the tensor kernels.
//!
//! These check the algebraic identities the NN layers rely on: linearity of
//! GEMM, adjointness of im2col/col2im and of up-sampling, shape preservation
//! of elementwise operations, and normalisation of softmax — over randomly
//! drawn shapes and contents.

use proptest::prelude::*;
use st_tensor::conv::{col2im, conv2d_forward, im2col, im2col_batched, Conv2dSpec};
use st_tensor::{matmul, ops, pool, random, Shape, Tensor};

/// Reference O(mnk) GEMM — the oracle the packed kernel is checked against.
fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape().as_matrix().unwrap();
    let (_, n) = b.shape().as_matrix().unwrap();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0;
            for kk in 0..k {
                acc += a.data()[i * k + kk] * b.data()[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out).unwrap()
}

fn transpose(t: &Tensor) -> Tensor {
    let (r, c) = t.shape().as_matrix().unwrap();
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = t.data()[i * c + j];
        }
    }
    Tensor::from_vec(Shape::matrix(c, r), out).unwrap()
}

fn tensor_strategy(max: usize) -> impl Strategy<Value = Tensor> {
    (1..=max, 1..=max, any::<u64>())
        .prop_map(|(r, c, seed)| random::uniform(Shape::matrix(r, c), -2.0, 2.0, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn elementwise_add_commutes(a in tensor_strategy(12), seed in any::<u64>()) {
        let b = random::uniform(a.shape().clone(), -2.0, 2.0, seed);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn scale_is_linear(a in tensor_strategy(12), alpha in -3.0f32..3.0, beta in -3.0f32..3.0) {
        let lhs = a.scale(alpha + beta);
        let rhs = a.scale(alpha).add(&a.scale(beta)).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn matmul_distributes_over_addition(
        m in 1usize..8, k in 1usize..8, n in 1usize..8, seed in any::<u64>()
    ) {
        let a = random::uniform(Shape::matrix(m, k), -1.0, 1.0, seed);
        let b1 = random::uniform(Shape::matrix(k, n), -1.0, 1.0, seed.wrapping_add(1));
        let b2 = random::uniform(Shape::matrix(k, n), -1.0, 1.0, seed.wrapping_add(2));
        let lhs = matmul::matmul(&a, &b1.add(&b2).unwrap()).unwrap();
        let rhs = matmul::matmul(&a, &b1).unwrap().add(&matmul::matmul(&a, &b2).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The packed microkernel zero-pads ragged MR/NR/KC edges, so it must
    /// agree with the reference kernel on *every* shape, not just multiples
    /// of the tile sizes.
    #[test]
    fn packed_matmul_matches_reference_on_arbitrary_shapes(
        m in 1usize..40, k in 1usize..48, n in 1usize..40, seed in any::<u64>()
    ) {
        let a = random::uniform(Shape::matrix(m, k), -1.0, 1.0, seed);
        let b = random::uniform(Shape::matrix(k, n), -1.0, 1.0, seed.wrapping_add(1));
        let fast = matmul::matmul(&a, &b).unwrap();
        let slow = naive_matmul(&a, &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn packed_matmul_tn_matches_reference_on_arbitrary_shapes(
        m in 1usize..24, k in 1usize..48, n in 1usize..24, seed in any::<u64>()
    ) {
        let a = random::uniform(Shape::matrix(k, m), -1.0, 1.0, seed); // stored (k, m)
        let b = random::uniform(Shape::matrix(k, n), -1.0, 1.0, seed.wrapping_add(2));
        let fast = matmul::matmul_tn(&a, &b).unwrap();
        let slow = naive_matmul(&transpose(&a), &b);
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn packed_matmul_nt_matches_reference_on_arbitrary_shapes(
        m in 1usize..24, k in 1usize..48, n in 1usize..24, seed in any::<u64>()
    ) {
        let a = random::uniform(Shape::matrix(m, k), -1.0, 1.0, seed);
        let b = random::uniform(Shape::matrix(n, k), -1.0, 1.0, seed.wrapping_add(3)); // (n, k)
        let fast = matmul::matmul_nt(&a, &b).unwrap();
        let slow = naive_matmul(&a, &transpose(&b));
        for (x, y) in fast.data().iter().zip(slow.data().iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// The batched lowering is the per-frame lowering with frame-major
    /// column blocks: batched convolution must be *bit-for-bit* the
    /// concatenation of single-frame convolutions.
    #[test]
    fn batched_conv_equals_per_frame_bit_for_bit(
        n in 1usize..5, h in 4usize..9, w in 4usize..9, stride in 1usize..3, seed in any::<u64>()
    ) {
        let spec = Conv2dSpec::square(2, 3, 3, stride);
        let batch = random::uniform(Shape::nchw(n, 2, h, w), -1.0, 1.0, seed);
        let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, seed.wrapping_add(4));
        let bias = random::uniform(Shape::vector(3), -0.1, 0.1, seed.wrapping_add(5));
        let (batched, cols) = conv2d_forward(&batch, &weight, Some(&bias), &spec).unwrap();
        let (oh, ow) = spec.output_size(h, w);
        prop_assert_eq!(batched.shape().dims(), &[n, 3, oh, ow]);
        prop_assert_eq!(cols.shape().dims(), &[2 * 9, n * oh * ow]);
        let frame_len = 2 * h * w;
        let out_len = 3 * oh * ow;
        for ni in 0..n {
            let frame = Tensor::from_vec(
                Shape::nchw(1, 2, h, w),
                batch.data()[ni * frame_len..(ni + 1) * frame_len].to_vec(),
            ).unwrap();
            let (solo, solo_cols) = conv2d_forward(&frame, &weight, Some(&bias), &spec).unwrap();
            prop_assert_eq!(
                solo.data(),
                &batched.data()[ni * out_len..(ni + 1) * out_len]
            );
            // The frame's column block of the batched im2col is exactly its
            // single-frame lowering, column by column.
            let full_cols = im2col_batched(&batch, &spec).unwrap();
            let plane = oh * ow;
            for row in 0..2 * 9 {
                let batched_row = &full_cols.data()[row * n * plane + ni * plane
                    ..row * n * plane + (ni + 1) * plane];
                let solo_row = &solo_cols.data()[row * plane..(row + 1) * plane];
                prop_assert_eq!(batched_row, solo_row);
            }
        }
    }

    #[test]
    fn im2col_col2im_are_adjoint(
        c in 1usize..4, h in 4usize..10, w in 4usize..10, stride in 1usize..3, seed in any::<u64>()
    ) {
        let spec = Conv2dSpec::square(c, 1, 3, stride);
        let x = random::uniform(Shape::nchw(1, c, h, w), -1.0, 1.0, seed);
        let cols = im2col(&x, &spec).unwrap();
        let y = random::uniform(cols.shape().clone(), -1.0, 1.0, seed.wrapping_add(7));
        let lhs = cols.mul(&y).unwrap().sum();
        let rhs = x.mul(&col2im(&y, &spec, h, w).unwrap()).unwrap().sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()), "{lhs} vs {rhs}");
    }

    #[test]
    fn conv_is_linear_in_the_input(
        h in 4usize..9, w in 4usize..9, seed in any::<u64>()
    ) {
        let spec = Conv2dSpec::square(2, 3, 3, 1);
        let weight = random::uniform(spec.weight_shape(), -0.5, 0.5, seed);
        let x1 = random::uniform(Shape::nchw(1, 2, h, w), -1.0, 1.0, seed.wrapping_add(1));
        let x2 = random::uniform(Shape::nchw(1, 2, h, w), -1.0, 1.0, seed.wrapping_add(2));
        let (y_sum, _) = conv2d_forward(&x1.add(&x2).unwrap(), &weight, None, &spec).unwrap();
        let (y1, _) = conv2d_forward(&x1, &weight, None, &spec).unwrap();
        let (y2, _) = conv2d_forward(&x2, &weight, None, &spec).unwrap();
        let expected = y1.add(&y2).unwrap();
        for (a, b) in y_sum.data().iter().zip(expected.data().iter()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn softmax_is_normalised_and_shift_invariant(
        c in 2usize..6, h in 1usize..5, w in 1usize..5, shift in -10.0f32..10.0, seed in any::<u64>()
    ) {
        let x = random::uniform(Shape::nchw(1, c, h, w), -5.0, 5.0, seed);
        let s = ops::softmax_channels(&x).unwrap();
        let plane = h * w;
        for p in 0..plane {
            let total: f32 = (0..c).map(|ci| s.data()[ci * plane + p]).sum();
            prop_assert!((total - 1.0).abs() < 1e-4);
        }
        // Adding a constant to every logit leaves the softmax unchanged.
        let shifted = ops::softmax_channels(&x.map(|v| v + shift)).unwrap();
        for (a, b) in s.data().iter().zip(shifted.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn upsample_then_avgpool_recovers_the_input(
        c in 1usize..4, h in 1usize..6, w in 1usize..6, factor in 1usize..4, seed in any::<u64>()
    ) {
        let x = random::uniform(Shape::nchw(1, c, h, w), -1.0, 1.0, seed);
        let up = pool::upsample_nearest(&x, factor).unwrap();
        let back = pool::avg_pool2d(&up, factor).unwrap();
        prop_assert_eq!(back.shape(), x.shape());
        for (a, b) in x.data().iter().zip(back.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn concat_then_slice_round_trips(
        c1 in 1usize..5, c2 in 1usize..5, h in 1usize..5, w in 1usize..5, seed in any::<u64>()
    ) {
        let a = random::uniform(Shape::nchw(1, c1, h, w), -1.0, 1.0, seed);
        let b = random::uniform(Shape::nchw(1, c2, h, w), -1.0, 1.0, seed.wrapping_add(3));
        let cat = Tensor::concat_channels(&[&a, &b]).unwrap();
        prop_assert_eq!(cat.slice_channels(0, c1).unwrap(), a);
        prop_assert_eq!(cat.slice_channels(c1, c2).unwrap(), b);
    }

    #[test]
    fn argmax_is_consistent_with_softmax(
        c in 2usize..6, h in 1usize..4, w in 1usize..4, seed in any::<u64>()
    ) {
        let x = random::uniform(Shape::nchw(1, c, h, w), -3.0, 3.0, seed);
        let labels_logits = x.argmax_channels().unwrap();
        let labels_probs = ops::softmax_channels(&x).unwrap().argmax_channels().unwrap();
        prop_assert_eq!(labels_logits, labels_probs);
    }
}
