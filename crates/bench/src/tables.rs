//! Table reproductions (Tables 2–7 of the paper).
//!
//! Each function takes a [`SharedSetup`], runs (or reuses) the relevant
//! experiments, and returns the table as a formatted string plus the
//! structured rows, so the `reproduce` binary can print it and the
//! integration tests can assert on the numbers.

use crate::workloads::{SharedSetup, Variant};
use shadowtutor::bounds::{throughput_bounds, traffic_bounds, BoundInputs};
use shadowtutor::config::{DistillationMode, PlacementPolicy, ShadowTutorConfig};
use shadowtutor::loadgen::{
    percentile, run_capacity_load, run_skewed_load, CapacityLoadSpec, PacedTeacher, SkewedLoadSpec,
};
use shadowtutor::runtime::live::{run_live_multi_with, ClientDriverMode, StreamSpec};
use shadowtutor::serve::{FrameStore, PoolConfig, SessionWeights};
use shadowtutor::stride::StridePolicy;
use shadowtutor::ExperimentRecord;
use st_net::{KeyFrameTraffic, LinkModel, NaiveTraffic};
use st_nn::snapshot::{PayloadSizes, SnapshotScope, WeightSnapshot};
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::{Concurrency, ContentionModel, DedupModel, DEFAULT_DISPATCH_OVERHEAD};
use st_teacher::{CnnTeacher, OracleTeacher, Teacher};
use st_video::dataset::tiny_stream;
use st_video::SceneKind;
use std::time::{Duration, Instant};

/// A reproduced table: a human-readable rendering plus machine-readable rows.
#[derive(Debug, Clone)]
pub struct TableOutput {
    /// Table identifier, e.g. `"Table 3"`.
    pub id: String,
    /// Formatted text rendering.
    pub text: String,
    /// Row labels in order.
    pub row_labels: Vec<String>,
    /// Named numeric columns, one vector per column aligned with `row_labels`.
    pub columns: Vec<(String, Vec<f64>)>,
}

impl TableOutput {
    pub(crate) fn new(id: &str) -> Self {
        TableOutput {
            id: id.to_string(),
            text: String::new(),
            row_labels: Vec::new(),
            columns: Vec::new(),
        }
    }

    /// Look up a column by name.
    pub fn column(&self, name: &str) -> Option<&[f64]> {
        self.columns
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_slice())
    }

    pub(crate) fn render(&mut self, title: &str) {
        let mut text = String::new();
        text.push_str(title);
        text.push('\n');
        let mut widths = vec!["video".len()];
        for (name, _) in &self.columns {
            widths.push(name.len());
        }
        for (i, label) in self.row_labels.iter().enumerate() {
            widths[0] = widths[0].max(label.len());
            for (c, (_, values)) in self.columns.iter().enumerate() {
                widths[c + 1] = widths[c + 1].max(format!("{:.2}", values[i]).len());
            }
        }
        let mut header = vec![format!("{:<w$}", "video", w = widths[0])];
        for (c, (name, _)) in self.columns.iter().enumerate() {
            header.push(format!("{:>w$}", name, w = widths[c + 1]));
        }
        text.push_str(&header.join("  "));
        text.push('\n');
        for (i, label) in self.row_labels.iter().enumerate() {
            let mut row = vec![format!("{:<w$}", label, w = widths[0])];
            for (c, (_, values)) in self.columns.iter().enumerate() {
                row.push(format!("{:>w$.2}", values[i], w = widths[c + 1]));
            }
            text.push_str(&row.join("  "));
            text.push('\n');
        }
        self.text = text;
    }
}

/// Replay a record's trace at paper-scale payload sizes and the 80 Mbps link
/// to get a paper-comparable throughput value.
fn paper_scale_fps(setup: &SharedSetup, record: &ExperimentRecord, mode: DistillationMode) -> f64 {
    let (frame_bytes, update_bytes) = setup.paper_payload(mode);
    record
        .with_payload_sizes(frame_bytes, update_bytes)
        .replay_fps(&setup.link, Concurrency::Full)
}

/// Naive-offloading throughput at paper scale (720p frames, prediction
/// downlink) under a link.
pub fn naive_paper_fps(setup: &SharedSetup, link: &LinkModel) -> f64 {
    let traffic = NaiveTraffic::for_frame(1280, 720);
    let per_frame = link.uplink_time(traffic.to_server_bytes)
        + setup.latency.teacher_inference
        + link.downlink_time(traffic.to_client_bytes);
    1.0 / per_frame
}

/// Table 2: distillation-step latency and mean number of distillation steps,
/// partial vs full. The latency row comes from the latency profile (measured
/// on the paper's hardware; the Criterion bench `table2_distill_step`
/// measures the host machine's own value); the mean-steps row comes from the
/// actual runs.
pub fn table2(setup: &SharedSetup) -> TableOutput {
    let mut out = TableOutput::new("Table 2");
    let partial_runs = setup.run_all_categories(Variant::Partial { delay: 1 });
    let full_runs = setup.run_all_categories(Variant::Full { delay: 1 });
    let mean_steps = |runs: &[ExperimentRecord]| {
        let total: f64 = runs.iter().map(|r| r.mean_distill_steps()).sum();
        total / runs.len() as f64
    };
    out.row_labels = vec!["one step (ms)".to_string(), "mean # of steps".to_string()];
    out.columns = vec![
        (
            "Partial".to_string(),
            vec![
                setup.latency.distill_step_partial * 1e3,
                mean_steps(&partial_runs),
            ],
        ),
        (
            "Full".to_string(),
            vec![
                setup.latency.distill_step_full * 1e3,
                mean_steps(&full_runs),
            ],
        ),
    ];
    let mut table = TableOutput {
        row_labels: out.row_labels.clone(),
        ..out
    };
    table.render("Table 2: execution time and mean number of distillation steps");
    table
}

/// Tables 3 and 5 share the same runs; this bundle carries them together.
#[derive(Debug, Clone)]
pub struct ThroughputTables {
    /// Table 3 (FPS per category, Partial / Full / Naive).
    pub table3: TableOutput,
    /// Table 5 (key-frame ratio % and network traffic Mbps).
    pub table5: TableOutput,
    /// The underlying partial-distillation records (reused by Figure 4 and
    /// the bounds check).
    pub partial_records: Vec<ExperimentRecord>,
}

/// Tables 3 and 5: throughput, key-frame ratio, and network traffic.
pub fn tables_3_and_5(setup: &SharedSetup) -> ThroughputTables {
    let partial = setup.run_all_categories(Variant::Partial { delay: 8 });
    let full = setup.run_all_categories(Variant::Full { delay: 8 });
    let naive_fps = naive_paper_fps(setup, &setup.link);

    // ---- Table 3 ----
    let mut t3 = TableOutput::new("Table 3");
    t3.row_labels = partial.iter().map(|r| r.label.clone()).collect();
    t3.columns = vec![
        (
            "Partial".to_string(),
            partial
                .iter()
                .map(|r| paper_scale_fps(setup, r, DistillationMode::Partial))
                .collect(),
        ),
        (
            "Full".to_string(),
            full.iter()
                .map(|r| paper_scale_fps(setup, r, DistillationMode::Full))
                .collect(),
        ),
        ("Naive".to_string(), vec![naive_fps; partial.len()]),
    ];
    t3.render("Table 3: frames processed per second (paper-scale replay)");

    // ---- Table 5 ----
    let (frame_bytes, update_bytes) = setup.paper_payload(DistillationMode::Partial);
    let mut t5 = TableOutput::new("Table 5");
    t5.row_labels = partial.iter().map(|r| r.label.clone()).collect();
    let partial_ratio: Vec<f64> = partial
        .iter()
        .map(|r| r.key_frame_ratio_percent())
        .collect();
    let full_ratio: Vec<f64> = full.iter().map(|r| r.key_frame_ratio_percent()).collect();
    let partial_traffic: Vec<f64> = partial
        .iter()
        .map(|r| {
            let scaled = r.with_payload_sizes(frame_bytes, update_bytes);
            let time = scaled.replay_total_time(&setup.link, Concurrency::Full);
            (scaled.uplink_bytes + scaled.downlink_bytes) as f64 * 8.0 / 1e6 / time
        })
        .collect();
    let naive_traffic_mbps = {
        let traffic = NaiveTraffic::for_frame(1280, 720);
        traffic.total_bytes() as f64 * 8.0 / 1e6 * naive_fps
    };
    t5.columns = vec![
        ("KF% Partial".to_string(), partial_ratio),
        ("KF% Full".to_string(), full_ratio),
        ("Traffic Partial (Mbps)".to_string(), partial_traffic),
        (
            "Traffic Naive (Mbps)".to_string(),
            vec![naive_traffic_mbps; partial.len()],
        ),
    ];
    t5.render("Table 5: key-frame ratio (%) and network traffic (Mbps, paper-scale replay)");

    ThroughputTables {
        table3: t3,
        table5: t5,
        partial_records: partial,
    }
}

/// Table 4: data transmitted on each key frame (MB), using the paper-scale
/// student (≈0.5 M parameters) and a 720p frame. The partial/full update
/// sizes are measured from the real Rust student's encoded snapshots.
pub fn table4() -> TableOutput {
    use st_net::{ClientToServer, Payload, ServerToClient};
    use st_nn::snapshot::{SnapshotScope, WeightSnapshot};

    let mut student = StudentNet::new(StudentConfig::paper()).expect("paper-scale student");
    student.freeze = DistillationMode::Partial.freeze_point();
    let sizes = PayloadSizes::of(&mut student);
    let frame_bytes = 3 * 1280 * 720;

    // Measured wire sizes: the framed byte length of the *actual encoded
    // messages* the binary codec would put on a wire — a `KeyFrame` carrying
    // a 720p 8-bit RGB payload up, a `StudentUpdate` carrying the encoded
    // snapshot down — rather than the modelled payload arithmetic.
    let wire_up = st_net::wire::frame_len(&ClientToServer::KeyFrame {
        frame_index: 0,
        payload: Payload::with_data(bytes::Bytes::from(vec![0u8; frame_bytes])),
    });
    let wire_down_of = |snapshot: &WeightSnapshot| {
        st_net::wire::frame_len(&ServerToClient::StudentUpdate {
            frame_index: 0,
            metric: 0.0,
            distill_steps: 0,
            payload: Payload::with_data(snapshot.encode()),
        })
    };
    let partial_snapshot = WeightSnapshot::capture(&mut student, SnapshotScope::TrainableOnly);
    let full_snapshot = WeightSnapshot::capture(&mut student, SnapshotScope::Full);
    let partial = KeyFrameTraffic::new(frame_bytes, sizes.partial_bytes)
        .with_wire_bytes(wire_up, wire_down_of(&partial_snapshot));
    let full = KeyFrameTraffic::new(frame_bytes, sizes.full_bytes)
        .with_wire_bytes(wire_up, wire_down_of(&full_snapshot));
    // Naive ships every frame up and the framed label map (one class byte
    // per pixel) back down.
    let naive = NaiveTraffic::for_frame(1280, 720).with_wire_bytes(
        wire_up,
        st_net::wire::frame_len(&bytes::Bytes::from(vec![0u8; 1280 * 720])),
    );

    let mut out = TableOutput::new("Table 4");
    out.row_labels = vec![
        "To Server".to_string(),
        "To Client".to_string(),
        "Total".to_string(),
    ];
    let (pu, pd, pt) = partial.megabytes();
    let (fu, fd, ft) = full.megabytes();
    let nu = naive.to_server_bytes as f64 / 1e6;
    let nd = naive.to_client_bytes as f64 / 1e6;
    let (pwu, pwd, pwt) = partial.wire_megabytes();
    let (fwu, fwd, fwt) = full.wire_megabytes();
    let nwu = naive.wire_bytes_up as f64 / 1e6;
    let nwd = naive.wire_bytes_down as f64 / 1e6;
    out.columns = vec![
        ("Partial".to_string(), vec![pu, pd, pt]),
        ("Full".to_string(), vec![fu, fd, ft]),
        ("Naive".to_string(), vec![nu, nd, nu + nd]),
        ("Partial/wire".to_string(), vec![pwu, pwd, pwt]),
        ("Full/wire".to_string(), vec![fwu, fwd, fwt]),
        ("Naive/wire".to_string(), vec![nwu, nwd, nwu + nwd]),
    ];
    out.render(
        "Table 4: data transmitted on each key frame (MB; modelled columns, then \
         */wire columns measured from the framed binary codec output)",
    );
    out
}

/// Table 6: mean IoU of Wild, P-1, P-8, F-1 and Naive per category.
pub fn table6(setup: &SharedSetup) -> TableOutput {
    let wild = setup.run_all_categories(Variant::Wild);
    let p1 = setup.run_all_categories(Variant::Partial { delay: 1 });
    let p8 = setup.run_all_categories(Variant::Partial { delay: 8 });
    let f1 = setup.run_all_categories(Variant::Full { delay: 1 });

    let mut out = TableOutput::new("Table 6");
    out.row_labels = wild.iter().map(|r| r.label.clone()).collect();
    let col = |runs: &[ExperimentRecord]| runs.iter().map(|r| r.mean_miou_percent()).collect();
    out.columns = vec![
        ("Wild".to_string(), col(&wild)),
        ("P-1".to_string(), col(&p1)),
        ("P-8".to_string(), col(&p8)),
        ("F-1".to_string(), col(&f1)),
        ("Naive".to_string(), vec![100.0; wild.len()]),
    ];
    out.render("Table 6: mean IoU (%) against the teacher output");
    out
}

/// Table 7: mean IoU and key-frame ratio for the 7 FPS resampled streams.
pub fn table7(setup: &SharedSetup) -> TableOutput {
    let p1: Vec<ExperimentRecord> = setup
        .categories
        .iter()
        .map(|d| setup.run_resampled(d, Variant::Partial { delay: 1 }))
        .collect();
    let p8: Vec<ExperimentRecord> = setup
        .categories
        .iter()
        .map(|d| setup.run_resampled(d, Variant::Partial { delay: 8 }))
        .collect();

    let mut out = TableOutput::new("Table 7");
    out.row_labels = p1.iter().map(|r| r.label.clone()).collect();
    out.columns = vec![
        (
            "P-1".to_string(),
            p1.iter().map(|r| r.mean_miou_percent()).collect(),
        ),
        (
            "P-8".to_string(),
            p8.iter().map(|r| r.mean_miou_percent()).collect(),
        ),
        (
            "KF%".to_string(),
            p1.iter().map(|r| r.key_frame_ratio_percent()).collect(),
        ),
    ];
    out.render("Table 7: mean IoU (%) and key-frame ratio for 7 FPS streams");
    out
}

/// The §4.4 / §6.2 bounds check: compute the analytic traffic and throughput
/// bounds and report whether the paper-scale replays of the measured traces
/// fall inside them.
pub fn bounds_check(setup: &SharedSetup, partial_records: &[ExperimentRecord]) -> TableOutput {
    let config = ShadowTutorConfig::paper();
    let (frame_bytes, update_bytes) = setup.paper_payload(DistillationMode::Partial);
    let t_net = setup.link.key_frame_round_trip(frame_bytes, update_bytes);
    let inputs = BoundInputs::new(&setup.latency, true, t_net, frame_bytes + update_bytes);
    let traffic = traffic_bounds(&config, &inputs);
    let throughput = throughput_bounds(&config, &inputs);

    let mut out = TableOutput::new("Bounds");
    out.row_labels = partial_records.iter().map(|r| r.label.clone()).collect();
    let fps: Vec<f64> = partial_records
        .iter()
        .map(|r| paper_scale_fps(setup, r, DistillationMode::Partial))
        .collect();
    let mbps: Vec<f64> = partial_records
        .iter()
        .map(|r| {
            let scaled = r.with_payload_sizes(frame_bytes, update_bytes);
            let time = scaled.replay_total_time(&setup.link, Concurrency::Full);
            (scaled.uplink_bytes + scaled.downlink_bytes) as f64 * 8.0 / 1e6 / time
        })
        .collect();
    let fps_ok: Vec<f64> = fps
        .iter()
        .map(|&v| if throughput.contains_fps(v) { 1.0 } else { 0.0 })
        .collect();
    let mbps_ok: Vec<f64> = mbps
        .iter()
        .map(|&v| if traffic.contains_mbps(v) { 1.0 } else { 0.0 })
        .collect();
    out.columns = vec![
        ("FPS".to_string(), fps),
        ("FPS in bounds".to_string(), fps_ok),
        ("Mbps".to_string(), mbps),
        ("Mbps in bounds".to_string(), mbps_ok),
    ];
    out.render(&format!(
        "Bounds check: throughput in [{:.2}, {:.2}] FPS, traffic in [{:.2}, {:.2}] Mbps",
        throughput.lower_fps,
        throughput.upper_fps,
        traffic.lower_mbps(),
        traffic.upper_mbps()
    ));
    out
}

/// Ablation: compare key-frame scheduling policies (Algorithm 2 vs fixed
/// strides vs exponential back-off) on accuracy and key-frame ratio.
pub fn ablation_stride(setup: &SharedSetup) -> TableOutput {
    use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
    use st_teacher::OracleTeacher;
    use st_video::VideoGenerator;

    let policies = [
        StridePolicy::Adaptive,
        StridePolicy::Fixed { stride: 8 },
        StridePolicy::Fixed { stride: 64 },
        StridePolicy::ExponentialBackoff,
    ];
    // Use a representative dynamic category (moving/street) for the ablation.
    let descriptor = setup
        .categories
        .iter()
        .find(|d| d.name == "moving/street")
        .unwrap_or(&setup.categories[0])
        .clone();
    let mut out = TableOutput::new("Ablation");
    let mut miou_col = Vec::new();
    let mut ratio_col = Vec::new();
    for policy in policies {
        let runtime = SimRuntime::paper(DistillationMode::Partial)
            .with_delay_model(DelayModel::Frames(1))
            .with_stride_policy(policy);
        let mut video = VideoGenerator::new(descriptor.config).expect("descriptor config");
        let record = runtime
            .run(
                &descriptor.name,
                &mut video,
                setup.scale.frames(),
                setup.checkpoint.clone(),
                OracleTeacher::perfect(descriptor.config.seed ^ 0x9999),
            )
            .expect("ablation run");
        out.row_labels.push(policy.label());
        miou_col.push(record.mean_miou_percent());
        ratio_col.push(record.key_frame_ratio_percent());
    }
    out.columns = vec![
        ("mIoU %".to_string(), miou_col),
        ("KF %".to_string(), ratio_col),
    ];
    out.render("Ablation: key-frame scheduling policies (moving/street)");
    out
}

/// Table 9 (new in this reproduction, no paper counterpart) — fairness under
/// skewed arrivals: per-stream round trips and server-side queue waits when
/// one hot stream sends a multiple of the base key-frame rate against a
/// one-shard pool, next to the analytic skewed-contention predictions
/// (cold-stream fair delay vs what a FIFO drain would have cost everyone).
///
/// `multipliers` is the hot-stream sweep (e.g. `[1, 4, 8]`); `streams` and
/// `key_frames_per_stream` size the run (the `--skew` smoke sweep in CI uses
/// tiny values).
pub fn table9_skewed(
    multipliers: &[usize],
    streams: usize,
    key_frames_per_stream: usize,
) -> TableOutput {
    let mut out = TableOutput::new("Table 9");
    let mut cold_p50 = Vec::new();
    let mut cold_p99 = Vec::new();
    let mut hot_p50 = Vec::new();
    let mut cold_wait = Vec::new();
    let mut hot_wait = Vec::new();
    let mut throttled = Vec::new();
    let mut dropped = Vec::new();
    let mut model_cold = Vec::new();
    let mut model_fifo = Vec::new();
    // Real wall-clock teacher pacing so queueing is physical; the base send
    // interval leaves a one-shard pool comfortably underloaded at 1x and
    // saturated by the hot stream at 8x.
    let pace = Duration::from_millis(2);
    let send_interval = Duration::from_millis(20);
    let student = StudentNet::new(StudentConfig::tiny()).expect("tiny student");
    for &multiplier in multipliers {
        let outcome = run_skewed_load(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 1,
                recv_timeout: Duration::from_millis(200),
                ..PoolConfig::default_pool()
            },
            student.clone(),
            0.013,
            |shard| PacedTeacher::new(OracleTeacher::perfect(1700 + shard as u64), pace),
            SkewedLoadSpec {
                streams,
                hot_multiplier: multiplier,
                key_frames_per_stream,
                send_interval,
                seed: 4242 + multiplier as u64,
            },
        )
        .expect("skewed load run");

        let cold_rts: Vec<f64> = outcome
            .cold()
            .iter()
            .flat_map(|r| r.round_trips.iter().copied().map(|s| 1e3 * s))
            .collect();
        let hot_rts: Vec<f64> = outcome.hot().round_trips.iter().map(|s| 1e3 * s).collect();
        let mean_wait_ms = |ids: &mut dyn Iterator<Item = u64>| -> f64 {
            let waits: Vec<f64> = ids
                .filter_map(|id| outcome.pool.streams.get(&id))
                .map(|s| 1e3 * s.mean_queue_wait_secs())
                .collect();
            if waits.is_empty() {
                0.0
            } else {
                waits.iter().sum::<f64>() / waits.len() as f64
            }
        };

        // Feed the model the *measured* mean per-key-frame service time so
        // its predictions are in the same wall-clock units as the run.
        let key_frames = outcome.pool.total_key_frames().max(1);
        let busy: f64 = outcome
            .pool
            .shards
            .iter()
            .map(|s| s.busy_time.as_secs_f64())
            .sum();
        let service = busy / key_frames as f64;
        let model = ContentionModel::with_workers(1);
        let inter = send_interval.as_secs_f64();

        out.row_labels.push(format!("hot x{multiplier}"));
        cold_p50.push(percentile(&cold_rts, 50.0));
        cold_p99.push(percentile(&cold_rts, 99.0));
        hot_p50.push(percentile(&hot_rts, 50.0));
        cold_wait.push(mean_wait_ms(&mut (1..streams as u64)));
        hot_wait.push(mean_wait_ms(&mut std::iter::once(0u64)));
        throttled.push(outcome.pool.throttled() as f64);
        dropped.push(outcome.pool.dropped_jobs() as f64);
        model_cold.push(1e3 * model.skewed_delay_cold_fair(streams, service, inter));
        model_fifo.push(1e3 * model.skewed_delay_fifo(streams, multiplier as f64, service, inter));
    }
    out.columns = vec![
        ("cold p50 ms".to_string(), cold_p50),
        ("cold p99 ms".to_string(), cold_p99),
        ("hot p50 ms".to_string(), hot_p50),
        ("cold wait ms".to_string(), cold_wait),
        ("hot wait ms".to_string(), hot_wait),
        ("throttled".to_string(), throttled),
        ("dropped".to_string(), dropped),
        ("model cold ms".to_string(), model_cold),
        ("model FIFO ms".to_string(), model_fifo),
    ];
    out.render(&format!(
        "Table 9 — fairness under skewed arrivals ({streams} streams, 1 shard, DRR + admission control)"
    ));
    out
}

/// Table 11 (new in this reproduction, no paper counterpart) — elastic pool
/// under skewed load: the same hot-stream sweep as Table 9, but across a
/// multi-shard pool, run twice per multiplier — placement-only
/// ([`PlacementPolicy::LeastLoaded`], no migration) versus work stealing
/// ([`PlacementPolicy::Rebalance`]) — with a per-stream frame budget tight
/// enough that the LRU eviction / re-share path is also exercised.
///
/// Columns come from the client-side round trips and from the pool's
/// operator report (`PoolStats::snapshot()`): cold-stream p99 round trips
/// with stealing off/on, the measured busy time of the *cold* shards —
/// every shard except the hot stream's home — off/on (stealing reclaims
/// their idle time by moving the hot backlog onto them; a stream's own
/// service stays serialized, so the home shard's loss is their gain),
/// steal/eviction/re-share counts, and the analytic
/// [`ContentionModel::static_hot_shard_delay`] vs
/// [`ContentionModel::stealing_delay`] predictions fed with the measured
/// service time.
///
/// `streams` clients over `shards` shards with `streams > shards` places
/// one cold stream next to the hot one (connect order is id order), which
/// is the shard the stealing relieves. The in-flight cap matches the frame
/// budget, so every parked job's re-shared frame fits resident at once —
/// a budget far below the in-flight window would thrash (evict re-shared
/// frames before their jobs run).
pub fn table11_steal(
    multipliers: &[usize],
    streams: usize,
    shards: usize,
    key_frames_per_stream: usize,
) -> TableOutput {
    let mut out = TableOutput::new("Table 11");
    let pace = Duration::from_millis(6);
    let send_interval = Duration::from_millis(40);
    let max_in_flight = 12;
    let student = StudentNet::new(StudentConfig::tiny()).expect("tiny student");
    // Budget for `max_in_flight` frames per stream: the hot stream
    // pre-shares far more, so recovery traffic (NeedFrame → ReShare) is
    // part of the measurement, while every in-flight job's re-shared frame
    // can be resident simultaneously (no thrash).
    let probe = tiny_stream(SceneKind::People, 1, 1);
    let budget = max_in_flight * FrameStore::frame_cost(&probe[0]);
    let mut cold_p99_off = Vec::new();
    let mut cold_p99_on = Vec::new();
    let mut cold_busy_off = Vec::new();
    let mut cold_busy_on = Vec::new();
    let mut steals = Vec::new();
    let mut evictions = Vec::new();
    let mut reshares = Vec::new();
    let mut dropped = Vec::new();
    let mut model_static = Vec::new();
    let mut model_steal = Vec::new();
    for &multiplier in multipliers {
        let run = |placement: PlacementPolicy| {
            run_skewed_load(
                // Few distillation steps per key frame: service must be
                // shorter than the cold send interval, or a cold shard is
                // never idle while its neighbour still has shard-mates —
                // and donations stop once the colds retire.
                ShadowTutorConfig {
                    max_updates: 2,
                    ..ShadowTutorConfig::paper()
                },
                PoolConfig {
                    shards,
                    placement,
                    max_in_flight,
                    frame_budget_bytes: Some(budget),
                    steal_poll: Duration::from_millis(1),
                    // The cold streams' idle gaps between their own
                    // arrivals are ~10 ms; the thief must get patient
                    // within a gap or it will never ask while the victim
                    // still has a shard-mate to keep (donations stop once
                    // the colds retire and the hot session is alone).
                    steal_patience: Duration::from_millis(3),
                    recv_timeout: Duration::from_millis(200),
                    // One forward per batch: co-scheduling would amortize
                    // the hot stream's excess away and hide the very
                    // imbalance this table measures.
                    max_batch: 1,
                    adaptive_batch: false,
                    ..PoolConfig::default_pool()
                },
                student.clone(),
                0.013,
                |shard| PacedTeacher::new(OracleTeacher::perfect(2100 + shard as u64), pace),
                SkewedLoadSpec {
                    streams,
                    hot_multiplier: multiplier,
                    key_frames_per_stream,
                    send_interval,
                    seed: 5500 + multiplier as u64,
                },
            )
            .expect("table11 run")
        };
        let off = run(PlacementPolicy::LeastLoaded);
        let on = run(PlacementPolicy::Rebalance);

        let cold_p99_ms = |outcome: &shadowtutor::loadgen::SkewedLoadOutcome| {
            let rts: Vec<f64> = outcome
                .cold()
                .iter()
                .flat_map(|r| r.round_trips.iter().copied().map(|s| 1e3 * s))
                .collect();
            percentile(&rts, 99.0)
        };
        // Busy time summed over the cold shards — everything except the hot
        // stream's home (connect order is id order, so the hot stream lands
        // on shard 0). Without stealing this is just their own cold
        // streams' service; with stealing it also contains adopted hot work.
        let cold_busy_ms = |outcome: &shadowtutor::loadgen::SkewedLoadOutcome| {
            outcome
                .pool
                .snapshot()
                .shards
                .iter()
                .filter(|s| s.shard != 0)
                .map(|s| 1e3 * s.busy_secs)
                .sum::<f64>()
        };
        let report_on = on.pool.snapshot();

        // Feed the model the stealing run's measured mean service time so
        // both predictions are in the run's own wall-clock units.
        let key_frames = report_on.total_key_frames.max(1);
        let busy: f64 = report_on.shards.iter().map(|s| s.busy_secs).sum();
        let service = busy / key_frames as f64;
        let model = ContentionModel::with_workers(shards);
        let inter = send_interval.as_secs_f64();

        // Cold streams co-located with the hot one under id-order
        // least-loaded placement: ids ≡ 0 (mod shards), minus the hot
        // stream itself.
        let mates = (streams - 1) / shards;
        out.row_labels.push(format!("hot x{multiplier}"));
        cold_p99_off.push(cold_p99_ms(&off));
        cold_p99_on.push(cold_p99_ms(&on));
        cold_busy_off.push(cold_busy_ms(&off));
        cold_busy_on.push(cold_busy_ms(&on));
        steals.push(report_on.streams_stolen as f64);
        evictions.push(report_on.frame_evictions as f64);
        reshares.push(report_on.reshared_frames as f64);
        dropped.push((off.pool.dropped_jobs() + on.pool.dropped_jobs()) as f64);
        model_static
            .push(1e3 * model.static_hot_shard_delay(mates, multiplier as f64, service, inter));
        model_steal.push(1e3 * model.stealing_delay(streams, multiplier as f64, service, inter));
    }
    out.columns = vec![
        ("cold p99 off ms".to_string(), cold_p99_off),
        ("cold p99 steal ms".to_string(), cold_p99_on),
        ("cold busy off ms".to_string(), cold_busy_off),
        ("cold busy steal ms".to_string(), cold_busy_on),
        ("steals".to_string(), steals),
        ("evictions".to_string(), evictions),
        ("reshares".to_string(), reshares),
        ("dropped".to_string(), dropped),
        ("model static ms".to_string(), model_static),
        ("model steal ms".to_string(), model_steal),
    ];
    out.render(&format!(
        "Table 11 — work stealing under skewed load ({streams} streams, {shards} shards, LRU frame budget)"
    ));
    out
}

/// Table 12 (new in this reproduction, no paper counterpart) — stream
/// capacity of a fixed worker set: how many concurrent open-loop streams
/// the pool sustains while the p99 *queue wait* (client round trip minus
/// mean service time) stays under `target_wait_ms`, with the OS thread
/// count pinned at `threads` in both topologies.
///
/// Thread-per-shard partitions the workers: `shards == threads`, each
/// stream statically pinned (`StaticModulo`), so a burst on one shard
/// queues behind that shard's other streams even while neighbour threads
/// sit idle. The reactor pools them: `shards == streams` (one mostly-idle
/// shard per stream) hosted by `reactor_threads == threads` event-driven
/// workers, so any free thread takes any ready job. Work stealing stays
/// off and batching is pinned to one frame per forward in BOTH modes —
/// this table isolates partitioned-vs-pooled dispatch, not migration or
/// amortization.
///
/// Each ladder rung runs both topologies under the same jittered arrival
/// schedule and reports p99 queue waits plus throttle/drop counts; the
/// title line reports the measured capacities (largest rung still under
/// target; zero if even the smallest rung misses — the ladder quantizes,
/// so a mode's true capacity sits between its last passing rung and the
/// next) beside the analytic [`ContentionModel::thread_per_shard_capacity`]
/// / [`ContentionModel::reactor_capacity`] predictions fed the measured
/// mean service time.
pub fn table12_capacity(
    stream_ladder: &[usize],
    threads: usize,
    key_frames_per_stream: usize,
    target_wait_ms: f64,
) -> TableOutput {
    let mut out = TableOutput::new("Table 12");
    let pace = Duration::from_millis(60);
    let send_interval = Duration::from_millis(800);
    let student = StudentNet::new(StudentConfig::tiny()).expect("tiny student");
    // One distillation step per update keeps service dominated by the
    // teacher pace, so the measured capacities answer to the same service
    // time the model is fed.
    let config = ShadowTutorConfig {
        max_updates: 1,
        ..ShadowTutorConfig::paper()
    };
    let mut shard_wait = Vec::new();
    let mut reactor_wait = Vec::new();
    let mut shard_throttled = Vec::new();
    let mut reactor_throttled = Vec::new();
    let mut shard_dropped = Vec::new();
    let mut reactor_dropped = Vec::new();
    let mut shard_service = Vec::new();
    let mut reactor_service = Vec::new();
    let mut service_sum = 0.0;
    let mut service_runs = 0usize;
    for &streams in stream_ladder {
        let run = |reactor: bool| {
            run_capacity_load(
                config,
                PoolConfig {
                    shards: if reactor { streams } else { threads },
                    reactor_threads: if reactor { Some(threads) } else { None },
                    // Static pinning in both modes: stealing would
                    // partially pool the partitioned baseline and blur
                    // the comparison this table exists to make.
                    placement: PlacementPolicy::StaticModulo,
                    // Admission generous enough that queue wait, not
                    // back-pressure, is what fails first as rungs grow.
                    max_in_flight: 64,
                    max_batch: 1,
                    adaptive_batch: false,
                    recv_timeout: Duration::from_millis(100),
                    ..PoolConfig::default_pool()
                },
                student.clone(),
                0.001,
                |shard| PacedTeacher::new(OracleTeacher::perfect(6200 + shard as u64), pace),
                CapacityLoadSpec {
                    streams,
                    key_frames_per_stream,
                    send_interval,
                    // Same seed for both modes of a rung: identical frame
                    // content and arrival schedule, different topology.
                    seed: 6400 + streams as u64,
                },
            )
            .expect("table12 run")
        };
        let per_shard = run(false);
        let reactor = run(true);
        service_sum += per_shard.mean_service_secs() + reactor.mean_service_secs();
        service_runs += 2;
        out.row_labels.push(format!("{streams} streams"));
        shard_wait.push(1e3 * per_shard.percentile_queue_wait(99.0));
        reactor_wait.push(1e3 * reactor.percentile_queue_wait(99.0));
        shard_throttled.push(per_shard.throttled as f64);
        reactor_throttled.push(reactor.throttled as f64);
        shard_dropped.push(per_shard.dropped as f64);
        reactor_dropped.push(reactor.dropped as f64);
        shard_service.push(1e3 * per_shard.mean_service_secs());
        reactor_service.push(1e3 * reactor.mean_service_secs());
    }
    let capacity = |waits: &[f64]| -> usize {
        waits
            .iter()
            .zip(stream_ladder)
            .filter(|(wait, _)| **wait <= target_wait_ms)
            .map(|(_, streams)| *streams)
            .max()
            .unwrap_or(0)
    };
    let cap_shard = capacity(&shard_wait);
    let cap_reactor = capacity(&reactor_wait);
    let service = service_sum / service_runs.max(1) as f64;
    let model = ContentionModel::with_workers(threads);
    let inter = send_interval.as_secs_f64();
    let target = target_wait_ms * 1e-3;
    let model_shard = model.thread_per_shard_capacity(target, service, inter);
    let model_reactor = model.reactor_capacity(target, service, inter, DEFAULT_DISPATCH_OVERHEAD);
    out.columns = vec![
        ("per-shard p99 wait ms".to_string(), shard_wait),
        ("reactor p99 wait ms".to_string(), reactor_wait),
        ("per-shard throttled".to_string(), shard_throttled),
        ("reactor throttled".to_string(), reactor_throttled),
        ("per-shard dropped".to_string(), shard_dropped),
        ("reactor dropped".to_string(), reactor_dropped),
        ("per-shard service ms".to_string(), shard_service),
        ("reactor service ms".to_string(), reactor_service),
    ];
    out.render(&format!(
        "Table 12 — stream capacity at p99 queue wait <= {target_wait_ms:.1} ms, {threads} threads \
         (measured: thread-per-shard {cap_shard} vs reactor {cap_reactor}; \
         model: {model_shard} vs {model_reactor})"
    ));
    out
}

/// Table 10 (new in this reproduction, no paper counterpart) — batched
/// teacher throughput: wall-clock cost of one genuinely batched
/// [`CnnTeacher`] forward (`pseudo_label_batch`) as the co-scheduled batch
/// size grows. This is the kernel-level amortization the multi-stream pool
/// buys when it co-schedules key frames: per-frame cost must *fall* with
/// batch size (the CI bench gates on exactly that).
///
/// `batch_sizes` is the sweep (e.g. `[1, 2, 4, 8]`); `width_multiple` sizes
/// the teacher network; `reps` timed repetitions per size (the median is
/// reported; one untimed warm-up precedes each size).
pub fn table10_batched(batch_sizes: &[usize], width_multiple: usize, reps: usize) -> TableOutput {
    let mut out = TableOutput::new("Table 10");
    let max_batch = batch_sizes.iter().copied().max().unwrap_or(1);
    let mut teacher = CnnTeacher::untrained(width_multiple, 77).expect("teacher");
    let frames = tiny_stream(SceneKind::People, 7700, max_batch);
    let mut medians = Vec::new();
    for &batch in batch_sizes {
        let refs: Vec<&st_video::Frame> = frames[..batch].iter().collect();
        teacher.pseudo_label_batch(&refs).expect("warm-up forward");
        let mut samples: Vec<f64> = (0..reps.max(1))
            .map(|_| {
                let started = Instant::now();
                std::hint::black_box(teacher.pseudo_label_batch(&refs).expect("timed forward"));
                started.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        medians.push(samples[samples.len() / 2]);
    }
    // Baseline for the speedup column: the smallest batch size in the sweep
    // (batch 1 in the canonical sweep), wherever it appears in the order.
    let baseline_per_frame = batch_sizes
        .iter()
        .zip(&medians)
        .map(|(&batch, &median)| (batch, median / batch as f64))
        .min_by_key(|&(batch, _)| batch)
        .map(|(_, per_frame)| per_frame)
        .unwrap_or(f64::NAN);
    let mut total_ms = Vec::new();
    let mut per_frame_ms = Vec::new();
    let mut fps = Vec::new();
    let mut speedup = Vec::new();
    for (&batch, &median) in batch_sizes.iter().zip(&medians) {
        let per_frame = median / batch as f64;
        out.row_labels.push(format!("batch {batch}"));
        total_ms.push(1e3 * median);
        per_frame_ms.push(1e3 * per_frame);
        fps.push(batch as f64 / median);
        speedup.push(baseline_per_frame / per_frame);
    }
    out.columns = vec![
        ("total ms".to_string(), total_ms),
        ("per-frame ms".to_string(), per_frame_ms),
        ("frames/s".to_string(), fps),
        ("speedup vs solo".to_string(), speedup),
    ];
    out.render(&format!(
        "Table 10 — batched CnnTeacher forward throughput (width x{width_multiple}, 32x24 frames, median of {reps})"
    ));
    out
}

/// Table 13 (new in this reproduction, no paper counterpart) — resident
/// weight memory and update wire bytes across a stream-count ladder. Each
/// rung runs the same workload twice against a live pool: once with the
/// content-keyed weight store (copy-on-write sessions + delta-encoded
/// updates) and once with the pre-store layout (deep-cloned sessions +
/// full-snapshot updates). Measured residency and wire bytes sit beside the
/// analytic [`DedupModel`] laws: `template + S × trainable` against
/// `S × template` for memory, and the converged-update discount for wire.
pub fn table13_weight_dedup(stream_ladder: &[usize], frames_per_stream: usize) -> TableOutput {
    let mut out = TableOutput::new("Table 13");
    let config = ShadowTutorConfig::paper();
    let mut student = StudentNet::new(StudentConfig::tiny()).expect("tiny student");
    student.freeze = config.mode.freeze_point();
    let template_bytes = WeightSnapshot::capture(&mut student, SnapshotScope::Full)
        .encode()
        .len();
    let trainable_bytes = WeightSnapshot::capture(&mut student, SnapshotScope::TrainableOnly)
        .encode()
        .len();
    let model = DedupModel::new(template_bytes, trainable_bytes);
    let scenes = [SceneKind::People, SceneKind::Animals, SceneKind::Street];

    let kib = |bytes: usize| bytes as f64 / 1024.0;
    let mut cow_resident = Vec::new();
    let mut clone_resident = Vec::new();
    let mut model_cow = Vec::new();
    let mut model_clone = Vec::new();
    let mut cow_per_gb = Vec::new();
    let mut clone_per_gb = Vec::new();
    let mut delta_wire = Vec::new();
    let mut full_wire = Vec::new();
    let mut delta_rejections = Vec::new();
    for &streams in stream_ladder {
        let run = |session_weights: SessionWeights, delta_updates: bool| {
            let specs: Vec<StreamSpec> = (0..streams)
                .map(|i| StreamSpec {
                    stream_id: i as u64,
                    label: format!("stream-{i}"),
                    frames: tiny_stream(
                        scenes[i % scenes.len()],
                        1300 + i as u64,
                        frames_per_stream,
                    ),
                })
                .collect();
            run_live_multi_with(
                config,
                specs,
                student.clone(),
                PoolConfig {
                    session_weights,
                    delta_updates,
                    ..PoolConfig::default_pool()
                },
                |shard| OracleTeacher::perfect(1350 + shard as u64),
                ClientDriverMode::Multiplexed,
            )
            .expect("table13 run")
        };
        let cow = run(SessionWeights::CopyOnWrite, true);
        let clone = run(SessionWeights::DeepClone, false);
        let cow_report = cow.pool.snapshot();
        let clone_report = clone.pool.snapshot();

        cow_resident.push(kib(cow_report.weights_resident_bytes()));
        clone_resident.push(kib(clone_report.weights_resident_bytes()));
        model_cow.push(kib(model.cow_resident_bytes(streams)));
        model_clone.push(kib(model.clone_resident_bytes(streams)));
        cow_per_gb.push(cow_report.streams_per_gb());
        clone_per_gb.push(clone_report.streams_per_gb());
        // Wire comparison within the delta run: bytes actually sent against
        // what the *same* updates would have cost as full envelopes.
        delta_wire.push(kib(cow_report.update_bytes_sent));
        full_wire.push(kib(cow_report.update_bytes_full_equiv));
        delta_rejections.push(
            cow.streams
                .iter()
                .map(|s| s.delta.delta_rejections)
                .sum::<usize>() as f64,
        );
        out.row_labels.push(format!("{streams} streams"));
    }
    out.columns = vec![
        ("cow resident KiB".to_string(), cow_resident),
        ("clone resident KiB".to_string(), clone_resident),
        ("model cow KiB".to_string(), model_cow),
        ("model clone KiB".to_string(), model_clone),
        ("cow streams/GB".to_string(), cow_per_gb),
        ("clone streams/GB".to_string(), clone_per_gb),
        ("delta wire KiB".to_string(), delta_wire),
        ("full-equiv wire KiB".to_string(), full_wire),
        ("delta rejections".to_string(), delta_rejections),
    ];
    out.render(&format!(
        "Table 13 — content-keyed weight store: resident memory and update wire bytes \
         (template {template_bytes} B, trainable {trainable_bytes} B)"
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::ExperimentScale;

    #[test]
    fn table4_matches_paper_shape() {
        let t = table4();
        // Uplink frame ≈ 2.76 MB (paper: 2.637 MB measured after encoding).
        let partial = t.column("Partial").unwrap();
        let full = t.column("Full").unwrap();
        assert!(
            (partial[0] - 2.76).abs() < 0.2,
            "frame {:.3} MB",
            partial[0]
        );
        // Partial downlink is several times smaller than full downlink.
        assert!(
            partial[1] < full[1] / 2.5,
            "partial {} vs full {}",
            partial[1],
            full[1]
        );
        // Totals are the sums.
        assert!((partial[2] - partial[0] - partial[1]).abs() < 1e-9);
        assert_eq!(t.row_labels.len(), 3);
    }

    #[test]
    fn naive_paper_fps_matches_reported_order() {
        let setup = SharedSetup::new(ExperimentScale::Smoke);
        let fps = naive_paper_fps(&setup, &setup.link);
        // Paper Table 3: 2.09 FPS for naive offloading at 80 Mbps.
        assert!((fps - 2.09).abs() < 0.6, "naive fps {fps}");
    }
}
