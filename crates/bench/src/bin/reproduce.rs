//! `reproduce` — regenerate the paper's tables and figures from the Rust
//! reproduction.
//!
//! Usage:
//!
//! ```text
//! reproduce [scale] [target...] [--json <path>] [--skew <multiplier>]
//!           [--transport <channel|shm>]
//!
//! scale   smoke | default | extended      (default: default)
//! target  table2 table3 table4 table5 table6 table7 table9 table11 table12 figure4
//!         bounds ablation shm all         (default: all)
//! --json  also write every reproduced table as JSON to <path>
//!         (CI uploads this as the run's machine-readable artifact)
//! --skew  hot-stream multiplier for the table9 skewed-arrival sweep; also
//!         recorded in the JSON schema's `skew` field (default 8 when the
//!         table9 target is requested without --skew)
//! --transport  channel (default, in-process) or shm: run the two-process
//!         shared-memory demo — client and server pool as separate OS
//!         processes over the ring transport, traffic measured from encoded
//!         frames. Equivalent to the explicit `shm` target; deliberately not
//!         part of `all`, so plain runs never spawn processes.
//! ```
//!
//! Example: `cargo run --release -p st-bench --bin reproduce -- smoke table6`

use st_bench::figures::figure4;
use st_bench::json::run_to_json;
use st_bench::tables::{
    ablation_stride, bounds_check, table11_steal, table12_capacity, table2, table4, table6, table7,
    table9_skewed, tables_3_and_5, TableOutput,
};
use st_bench::{ExperimentScale, SharedSetup};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Hidden role: `reproduce shm-client <segment> <record-out> <frames> <seed>`
    // is the child process half of the `--transport shm` demo. It must be
    // intercepted before ordinary argument parsing.
    if args.first().map(String::as_str) == Some("shm-client") {
        std::process::exit(st_bench::shm_demo::shm_client_main(&args[1..]));
    }
    let mut scale = ExperimentScale::Default;
    let mut targets: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut skew: Option<usize> = None;
    let mut args_iter = args.iter();
    while let Some(arg) = args_iter.next() {
        if arg == "--transport" {
            match args_iter.next().map(String::as_str) {
                Some("channel") => {} // the default backend; nothing extra to run
                Some("shm") => targets.push("shm".to_string()),
                _ => {
                    eprintln!("--transport requires `channel` or `shm`");
                    std::process::exit(2);
                }
            }
        } else if arg == "--json" {
            json_path = args_iter.next().cloned();
            if json_path.is_none() {
                eprintln!("--json requires a path argument");
                std::process::exit(2);
            }
        } else if arg == "--skew" {
            let Some(value) = args_iter.next().and_then(|v| v.parse::<usize>().ok()) else {
                eprintln!("--skew requires a positive integer multiplier");
                std::process::exit(2);
            };
            if value == 0 {
                eprintln!("--skew requires a positive integer multiplier");
                std::process::exit(2);
            }
            skew = Some(value);
        } else if let Some(s) = ExperimentScale::parse(arg) {
            scale = s;
        } else {
            targets.push(arg.clone());
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    // The two-process shm demo runs only on the explicit `shm` target (or
    // `--transport shm`), never as part of `all`: spawning child processes
    // does not belong in every smoke run.
    let want = |name: &str| targets.iter().any(|t| t == name || t == "all");
    let want_shm = targets.iter().any(|t| t == "shm");
    let needs_setup = targets.iter().any(|t| t != "shm");

    println!("ShadowTutor reproduction harness (scale: {scale:?})");
    let start = Instant::now();
    let setup = if needs_setup {
        println!("building shared setup (pre-training the student checkpoint)...");
        let setup = SharedSetup::new(scale);
        println!("setup ready in {:.1}s\n", start.elapsed().as_secs_f64());
        Some(setup)
    } else {
        None
    };

    let mut produced: Vec<TableOutput> = Vec::new();
    let emit = |table: TableOutput, produced: &mut Vec<TableOutput>| {
        println!("{}", table.text);
        produced.push(table);
    };

    if want_shm {
        match st_bench::shm_demo::table_shm(scale) {
            Ok(table) => emit(table, &mut produced),
            Err(e) => {
                eprintln!("shm transport demo failed: {e}");
                std::process::exit(1);
            }
        }
    }
    let setup = match setup {
        Some(setup) => setup,
        None => {
            finish(start, json_path, skew, scale, &produced);
            return;
        }
    };
    let setup = &setup;

    if want("table2") {
        emit(table2(setup), &mut produced);
    }
    if want("table4") {
        emit(table4(), &mut produced);
    }
    let mut throughput = None;
    if want("table3") || want("table5") || want("bounds") {
        let t = tables_3_and_5(setup);
        if want("table3") {
            emit(t.table3.clone(), &mut produced);
        }
        if want("table5") {
            emit(t.table5.clone(), &mut produced);
        }
        throughput = Some(t);
    }
    if want("bounds") {
        if let Some(t) = &throughput {
            emit(bounds_check(setup, &t.partial_records), &mut produced);
        }
    }
    if want("table6") {
        emit(table6(setup), &mut produced);
    }
    if want("table7") {
        emit(table7(setup), &mut produced);
    }
    if want("figure4") {
        let f = figure4(setup);
        println!("{}", f.render());
    }
    if want("ablation") {
        emit(ablation_stride(setup), &mut produced);
    }
    if want("table9") || skew.is_some() {
        // The skewed-arrival fairness sweep runs the live pool under an
        // adversarial hot stream; --skew sets the top multiplier.
        let top = skew.unwrap_or(8).max(1);
        let sweep: Vec<usize> = if top == 1 { vec![1] } else { vec![1, top] };
        let (streams, key_frames) = match scale {
            ExperimentScale::Smoke => (4, 3),
            ExperimentScale::Default => (4, 6),
            ExperimentScale::Extended => (8, 10),
        };
        emit(table9_skewed(&sweep, streams, key_frames), &mut produced);
    }
    if want("table11") {
        // The elastic-pool sweep: skewed load over a multi-shard pool with
        // work stealing off vs on, under an LRU frame budget.
        let top = skew.unwrap_or(8).max(1);
        let sweep: Vec<usize> = if top == 1 { vec![1] } else { vec![1, top] };
        let (streams, shards, key_frames) = match scale {
            ExperimentScale::Smoke => (3, 2, 2),
            ExperimentScale::Default => (5, 4, 6),
            ExperimentScale::Extended => (9, 4, 10),
        };
        emit(
            table11_steal(&sweep, streams, shards, key_frames),
            &mut produced,
        );
    }
    if want("table12") {
        // The fixed-worker-set capacity ladder: thread-per-shard vs the
        // event-driven reactor at the same OS thread count.
        let (ladder, threads, key_frames): (&[usize], usize, usize) = match scale {
            ExperimentScale::Smoke => (&[2, 4], 2, 3),
            ExperimentScale::Default => (&[8, 16, 32], 8, 6),
            ExperimentScale::Extended => (&[8, 16, 32, 64], 8, 12),
        };
        emit(
            table12_capacity(ladder, threads, key_frames, 25.0),
            &mut produced,
        );
    }
    finish(start, json_path, skew, scale, &produced);
}

/// Print the wall-time footer and, when requested, write the JSON artifact.
fn finish(
    start: Instant,
    json_path: Option<String>,
    skew: Option<usize>,
    scale: ExperimentScale,
    produced: &[TableOutput],
) {
    let total = start.elapsed().as_secs_f64();
    println!("total wall time: {total:.1}s");

    if let Some(path) = json_path {
        let scale_label = format!("{scale:?}").to_lowercase();
        let json = run_to_json(&scale_label, skew, produced, total);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote JSON artifact: {path}");
    }
}
