//! `reproduce` — regenerate the paper's tables and figures from the Rust
//! reproduction.
//!
//! Usage:
//!
//! ```text
//! reproduce [scale] [target...]
//!
//! scale   smoke | default | extended      (default: default)
//! target  table2 table3 table4 table5 table6 table7 figure4 bounds ablation all
//!         (default: all)
//! ```
//!
//! Example: `cargo run --release -p st-bench --bin reproduce -- smoke table6`

use st_bench::figures::figure4;
use st_bench::tables::{ablation_stride, bounds_check, table2, table4, table6, table7, tables_3_and_5};
use st_bench::{ExperimentScale, SharedSetup};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Default;
    let mut targets: Vec<String> = Vec::new();
    for arg in &args {
        if let Some(s) = ExperimentScale::parse(arg) {
            scale = s;
        } else {
            targets.push(arg.clone());
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let want = |name: &str| targets.iter().any(|t| t == name || t == "all");

    println!("ShadowTutor reproduction harness (scale: {scale:?})");
    println!("building shared setup (pre-training the student checkpoint)...");
    let start = Instant::now();
    let setup = SharedSetup::new(scale);
    println!("setup ready in {:.1}s\n", start.elapsed().as_secs_f64());

    if want("table2") {
        let t = table2(&setup);
        println!("{}", t.text);
    }
    if want("table4") {
        let t = table4();
        println!("{}", t.text);
    }
    let mut throughput = None;
    if want("table3") || want("table5") || want("bounds") {
        let t = tables_3_and_5(&setup);
        if want("table3") {
            println!("{}", t.table3.text);
        }
        if want("table5") {
            println!("{}", t.table5.text);
        }
        throughput = Some(t);
    }
    if want("bounds") {
        if let Some(t) = &throughput {
            let b = bounds_check(&setup, &t.partial_records);
            println!("{}", b.text);
        }
    }
    if want("table6") {
        let t = table6(&setup);
        println!("{}", t.text);
    }
    if want("table7") {
        let t = table7(&setup);
        println!("{}", t.text);
    }
    if want("figure4") {
        let f = figure4(&setup);
        println!("{}", f.render());
    }
    if want("ablation") {
        let t = ablation_stride(&setup);
        println!("{}", t.text);
    }
    println!("total wall time: {:.1}s", start.elapsed().as_secs_f64());
}
