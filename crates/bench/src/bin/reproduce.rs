//! `reproduce` — regenerate the paper's tables and figures from the Rust
//! reproduction.
//!
//! Usage:
//!
//! ```text
//! reproduce [scale] [target...] [--json <path>]
//!
//! scale   smoke | default | extended      (default: default)
//! target  table2 table3 table4 table5 table6 table7 figure4 bounds ablation all
//!         (default: all)
//! --json  also write every reproduced table as JSON to <path>
//!         (CI uploads this as the run's machine-readable artifact)
//! ```
//!
//! Example: `cargo run --release -p st-bench --bin reproduce -- smoke table6`

use st_bench::figures::figure4;
use st_bench::json::run_to_json;
use st_bench::tables::{
    ablation_stride, bounds_check, table2, table4, table6, table7, tables_3_and_5, TableOutput,
};
use st_bench::{ExperimentScale, SharedSetup};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = ExperimentScale::Default;
    let mut targets: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut args_iter = args.iter();
    while let Some(arg) = args_iter.next() {
        if arg == "--json" {
            json_path = args_iter.next().cloned();
            if json_path.is_none() {
                eprintln!("--json requires a path argument");
                std::process::exit(2);
            }
        } else if let Some(s) = ExperimentScale::parse(arg) {
            scale = s;
        } else {
            targets.push(arg.clone());
        }
    }
    if targets.is_empty() {
        targets.push("all".to_string());
    }
    let want = |name: &str| targets.iter().any(|t| t == name || t == "all");

    println!("ShadowTutor reproduction harness (scale: {scale:?})");
    println!("building shared setup (pre-training the student checkpoint)...");
    let start = Instant::now();
    let setup = SharedSetup::new(scale);
    println!("setup ready in {:.1}s\n", start.elapsed().as_secs_f64());

    let mut produced: Vec<TableOutput> = Vec::new();
    let emit = |table: TableOutput, produced: &mut Vec<TableOutput>| {
        println!("{}", table.text);
        produced.push(table);
    };

    if want("table2") {
        emit(table2(&setup), &mut produced);
    }
    if want("table4") {
        emit(table4(), &mut produced);
    }
    let mut throughput = None;
    if want("table3") || want("table5") || want("bounds") {
        let t = tables_3_and_5(&setup);
        if want("table3") {
            emit(t.table3.clone(), &mut produced);
        }
        if want("table5") {
            emit(t.table5.clone(), &mut produced);
        }
        throughput = Some(t);
    }
    if want("bounds") {
        if let Some(t) = &throughput {
            emit(bounds_check(&setup, &t.partial_records), &mut produced);
        }
    }
    if want("table6") {
        emit(table6(&setup), &mut produced);
    }
    if want("table7") {
        emit(table7(&setup), &mut produced);
    }
    if want("figure4") {
        let f = figure4(&setup);
        println!("{}", f.render());
    }
    if want("ablation") {
        emit(ablation_stride(&setup), &mut produced);
    }
    let total = start.elapsed().as_secs_f64();
    println!("total wall time: {total:.1}s");

    if let Some(path) = json_path {
        let scale_label = format!("{scale:?}").to_lowercase();
        let json = run_to_json(&scale_label, &produced, total);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote JSON artifact: {path}");
    }
}
