//! Figure reproductions (Figure 4 of the paper).

use crate::tables::naive_paper_fps;
use crate::workloads::{SharedSetup, Variant};
use shadowtutor::bounds::{throughput_bounds, BoundInputs};
use shadowtutor::config::{DistillationMode, ShadowTutorConfig};
use st_net::LinkModel;
use st_sim::Concurrency;

/// The bandwidth sweep of Figure 4 (Mbps values from the paper's x-axis).
pub const FIGURE4_BANDWIDTHS_MBPS: [f64; 7] = [8.0, 12.0, 20.0, 40.0, 60.0, 80.0, 90.0];

/// One series of Figure 4: a video (or the naive baseline) and its
/// throughput at each bandwidth.
#[derive(Debug, Clone)]
pub struct Figure4Series {
    /// Series label (video name, `"naive"`, or the bound names).
    pub label: String,
    /// Throughput (FPS) at each entry of [`FIGURE4_BANDWIDTHS_MBPS`].
    pub fps: Vec<f64>,
}

/// The complete Figure 4 data: per-video series, the naive baseline, and the
/// analytic throughput bound band.
#[derive(Debug, Clone)]
pub struct Figure4 {
    /// Bandwidths on the x-axis (Mbps).
    pub bandwidths_mbps: Vec<f64>,
    /// One series per named video plus the naive baseline.
    pub series: Vec<Figure4Series>,
    /// Lower throughput bound at each bandwidth (grey band in the paper).
    pub bound_lower: Vec<f64>,
    /// Upper throughput bound at each bandwidth.
    pub bound_upper: Vec<f64>,
}

impl Figure4 {
    /// Render as an aligned text table (one row per bandwidth).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 4: network bandwidth (Mbps) vs system throughput (FPS), paper-scale replay\n",
        );
        let mut header = vec![format!("{:>6}", "Mbps")];
        for s in &self.series {
            header.push(format!("{:>15}", s.label));
        }
        header.push(format!("{:>10}", "bound-lo"));
        header.push(format!("{:>10}", "bound-hi"));
        out.push_str(&header.join(" "));
        out.push('\n');
        for (i, bw) in self.bandwidths_mbps.iter().enumerate() {
            let mut row = vec![format!("{bw:>6.0}")];
            for s in &self.series {
                row.push(format!("{:>15.2}", s.fps[i]));
            }
            row.push(format!("{:>10.2}", self.bound_lower[i]));
            row.push(format!("{:>10.2}", self.bound_upper[i]));
            out.push_str(&row.join(" "));
            out.push('\n');
        }
        out
    }

    /// The series with the given label, if present.
    pub fn series_named(&self, label: &str) -> Option<&Figure4Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// Reproduce Figure 4: run each named video once (collecting its distillation
/// trace), then replay the trace's timing at every bandwidth; add the naive
/// baseline and the analytic bound band.
pub fn figure4(setup: &SharedSetup) -> Figure4 {
    let (frame_bytes, update_bytes) = setup.paper_payload(DistillationMode::Partial);
    let config = ShadowTutorConfig::paper();

    let mut series = Vec::new();
    for descriptor in &setup.figure4 {
        let record = setup.run_variant(descriptor, Variant::Partial { delay: 8 });
        let scaled = record.with_payload_sizes(frame_bytes, update_bytes);
        let fps: Vec<f64> = FIGURE4_BANDWIDTHS_MBPS
            .iter()
            .map(|&mbps| scaled.replay_fps(&LinkModel::symmetric_mbps(mbps), Concurrency::Full))
            .collect();
        series.push(Figure4Series {
            label: descriptor.name.clone(),
            fps,
        });
    }
    // Naive baseline series.
    let naive_fps: Vec<f64> = FIGURE4_BANDWIDTHS_MBPS
        .iter()
        .map(|&mbps| naive_paper_fps(setup, &LinkModel::symmetric_mbps(mbps)))
        .collect();
    series.push(Figure4Series {
        label: "naive".to_string(),
        fps: naive_fps,
    });

    // Analytic bound band at each bandwidth.
    let mut bound_lower = Vec::new();
    let mut bound_upper = Vec::new();
    for &mbps in &FIGURE4_BANDWIDTHS_MBPS {
        let link = LinkModel::symmetric_mbps(mbps);
        let t_net = link.key_frame_round_trip(frame_bytes, update_bytes);
        let inputs = BoundInputs::new(&setup.latency, true, t_net, frame_bytes + update_bytes);
        let bounds = throughput_bounds(&config, &inputs);
        bound_lower.push(bounds.lower_fps);
        bound_upper.push(bounds.upper_fps);
    }

    Figure4 {
        bandwidths_mbps: FIGURE4_BANDWIDTHS_MBPS.to_vec(),
        series,
        bound_lower,
        bound_upper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_axis_matches_paper() {
        assert_eq!(FIGURE4_BANDWIDTHS_MBPS.len(), 7);
        assert_eq!(FIGURE4_BANDWIDTHS_MBPS[0], 8.0);
        assert_eq!(FIGURE4_BANDWIDTHS_MBPS[6], 90.0);
    }
}
