//! # st-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ShadowTutor paper from the Rust reproduction.
//!
//! The heavy lifting lives in [`workloads`]: it builds the per-category video
//! streams, pre-trains a student checkpoint once, runs the virtual-time
//! runtime for every system variant, and converts the resulting
//! [`shadowtutor::ExperimentRecord`]s into the rows of each table. The
//! `reproduce` binary (`cargo run -p st-bench --bin reproduce -- <target>`)
//! prints the tables; the Criterion benches measure the latency quantities
//! (tensor kernels, distillation steps, student inference) and print the
//! corresponding table as part of their setup so `cargo bench` regenerates
//! everything in one pass.

pub mod figures;
pub mod json;
pub mod shm_demo;
pub mod tables;
pub mod transport;
pub mod workloads;

pub use workloads::{ExperimentScale, SharedSetup};
