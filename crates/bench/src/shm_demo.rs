//! The `reproduce --transport shm` demo: client and server pool as two real
//! OS processes over the shared-memory ring transport.
//!
//! The host side (this process) creates the segment, spawns the `reproduce`
//! binary again in its hidden `shm-client` role, hosts the server pool, and
//! bridges ring ↔ pool ([`shadowtutor::runtime::shm_live`]). The child
//! drives the unmodified Algorithm-4 client and ships its
//! [`ExperimentRecord`] back as one framed wire blob — so the run record
//! crosses the process boundary through the same versioned binary codec as
//! every key frame did.
//!
//! The table it produces is the measured counterpart of Table 4/5's traffic
//! claim: key-frame wire bytes (what actually crossed the ring) against the
//! naive baseline's full-frame wire bytes, both counted from encoded frames
//! rather than modelled payload arithmetic.

use crate::tables::TableOutput;
use crate::ExperimentScale;
use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::report::ExperimentRecord;
use shadowtutor::runtime::shm_live::{host_stream_over_shm, run_shm_client};
use shadowtutor::serve::PoolConfig;
use st_net::{ClientToServer, KeyFrameTraffic, NaiveTraffic, Payload, ShmConfig};
use st_nn::student::{StudentConfig, StudentNet};
use st_teacher::OracleTeacher;
use st_video::dataset::Resolution;
use st_video::generator::VideoConfig;
use st_video::scene::{CameraMotion, VideoCategory};
use st_video::{Frame, SceneKind, VideoGenerator};
use std::path::PathBuf;
use std::time::Duration;

/// Frame count and teacher seed of the demo stream at each scale. Both
/// processes derive the identical stream from these, so no frame content
/// needs a side channel beyond the pool's ordinary connect-time pre-share.
pub fn demo_params(scale: ExperimentScale) -> (usize, u64) {
    match scale {
        ExperimentScale::Smoke => (24, 7),
        ExperimentScale::Default => (48, 7),
        ExperimentScale::Extended => (96, 7),
    }
}

/// The demo stream: a fixed-camera people scene at `Medium` (128×96)
/// resolution, so encoded frames and weight snapshots land in the paper's
/// proportion (frame bytes comparable to update bytes) and the measured
/// key-frame-vs-naive comparison exercises the regime the paper argues
/// about, not a degenerate tiny-frame one.
pub fn demo_frames(count: usize, seed: u64) -> Vec<Frame> {
    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::People,
    };
    let (w, h) = Resolution::Medium.dims();
    let mut generator = VideoGenerator::new(VideoConfig::for_category(cat, w, h, seed))
        .expect("demo stream config is valid");
    generator.take_frames(count)
}

/// Measured wire bytes the naive baseline would move for `frames`: every
/// frame ships up as a framed `KeyFrame` message, and the per-pixel label
/// map ships back down as a framed byte blob.
pub fn naive_wire_bytes(frames: &[Frame]) -> (usize, usize) {
    let mut up = 0usize;
    let mut down = 0usize;
    for frame in frames {
        up += st_net::wire::frame_len(&ClientToServer::KeyFrame {
            frame_index: frame.index,
            payload: Payload::with_data(bytes::Bytes::from(vec![0u8; frame.raw_rgb_bytes()])),
        });
        down += st_net::wire::frame_len(&bytes::Bytes::from(vec![0u8; frame.raw_rgb_bytes() / 3]));
    }
    (up, down)
}

/// Entry point of the hidden `shm-client` role: open the segment the host
/// created, drive the client, and write the framed run record to
/// `record_out`. Returns the process exit code.
pub fn shm_client_main(args: &[String]) -> i32 {
    let [segment, record_out, frame_count, seed] = args else {
        eprintln!("usage: reproduce shm-client <segment> <record-out> <frames> <seed>");
        return 2;
    };
    let (Ok(frame_count), Ok(seed)) = (frame_count.parse::<usize>(), seed.parse::<u64>()) else {
        eprintln!("shm-client: <frames> and <seed> must be integers");
        return 2;
    };
    let frames = demo_frames(frame_count, seed);
    let student = match StudentNet::new(StudentConfig::tiny()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("shm-client: student init failed: {e}");
            return 1;
        }
    };
    let record = match run_shm_client(
        ShadowTutorConfig::paper(),
        &frames,
        student,
        "fixed/people",
        &PathBuf::from(segment),
        Duration::from_secs(20),
    ) {
        Ok(record) => record,
        Err(e) => {
            eprintln!("shm-client: session failed: {e}");
            return 1;
        }
    };
    if let Err(e) = std::fs::write(record_out, st_net::wire::encode_frame(&record)) {
        eprintln!("shm-client: writing record failed: {e}");
        return 1;
    }
    0
}

/// Host side of the two-process demo. Spawns `reproduce shm-client ...` as a
/// child process, hosts the pool, and renders the measured-traffic table.
pub fn table_shm(scale: ExperimentScale) -> Result<TableOutput, String> {
    if !cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        return Err("shared-memory transport is only wired up on x86_64 Linux".into());
    }
    let (frame_count, seed) = demo_params(scale);
    let frames = demo_frames(frame_count, seed);
    let pid = std::process::id();
    let segment = st_net::shm::default_segment_path(&format!("st-shm-demo-{pid}"));
    let record_out = std::env::temp_dir().join(format!("st-shm-record-{pid}.bin"));
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let mut child = std::process::Command::new(exe)
        .arg("shm-client")
        .arg(&segment)
        .arg(&record_out)
        .arg(frame_count.to_string())
        .arg(seed.to_string())
        .spawn()
        .map_err(|e| format!("spawning shm client process: {e}"))?;

    let host = host_stream_over_shm(
        ShadowTutorConfig::paper(),
        PoolConfig::with_shards(1),
        StudentNet::new(StudentConfig::tiny()).map_err(|e| format!("student init: {e}"))?,
        0.013,
        |_| OracleTeacher::perfect(7),
        0,
        &frames,
        &segment,
        ShmConfig::default(),
    );
    let status = child
        .wait()
        .map_err(|e| format!("waiting for child: {e}"))?;
    let host = host.map_err(|e| format!("hosting shm stream: {e}"))?;
    if !status.success() {
        return Err(format!("shm client process failed: {status}"));
    }
    let record_bytes =
        std::fs::read(&record_out).map_err(|e| format!("reading child record: {e}"))?;
    let _ = std::fs::remove_file(&record_out);
    let record: ExperimentRecord = st_net::wire::decode_frame(&record_bytes)
        .map_err(|e| format!("decoding child record: {e}"))?;

    // The measured comparison: what the session actually moved over the ring
    // versus what naive full-frame offloading would have moved, both from
    // framed codec output.
    let key_frames = record
        .frame_records
        .iter()
        .filter(|f| f.is_key_frame)
        .count();
    let measured = KeyFrameTraffic::new(record.frame_bytes, record.update_bytes)
        .with_wire_bytes(host.wire_bytes_up, host.wire_bytes_down);
    let (naive_up, naive_down) = naive_wire_bytes(&frames);
    let naive = NaiveTraffic::for_frame(0, 0).with_wire_bytes(naive_up, naive_down);

    println!(
        "shm: two-process session over {}: host pid {pid}, client exit {status}",
        segment.display()
    );
    println!(
        "shm: client processed {} frames ({} key frames); pool served {} key frames",
        record.frames,
        key_frames,
        host.pool.total_key_frames()
    );
    println!(
        "shm: measured ring bytes up {} / down {} ({} / {} messages)",
        host.wire_bytes_up, host.wire_bytes_down, host.messages_up, host.messages_down
    );
    let verdict = if measured.wire_total_bytes() < naive.wire_total_bytes() {
        "PASS"
    } else {
        "FAIL"
    };
    println!(
        "shm: key-frame wire total {} B < naive wire total {} B: {verdict}",
        measured.wire_total_bytes(),
        naive.wire_total_bytes()
    );

    let mut out = TableOutput::new("SHM");
    out.row_labels = vec![
        "Wire up (MB)".to_string(),
        "Wire down (MB)".to_string(),
        "Wire total (MB)".to_string(),
        "Messages".to_string(),
    ];
    let (mu, md, mt) = measured.wire_megabytes();
    out.columns = vec![
        (
            "ShadowTutor/shm (measured)".to_string(),
            vec![mu, md, mt, (host.messages_up + host.messages_down) as f64],
        ),
        (
            "Naive (measured)".to_string(),
            vec![
                naive_up as f64 / 1e6,
                naive_down as f64 / 1e6,
                naive.wire_total_bytes() as f64 / 1e6,
                (2 * frames.len()) as f64,
            ],
        ),
    ];
    out.render(
        "SHM: two-process traffic, measured from framed binary codec output on the shared-memory ring",
    );
    Ok(out)
}
