//! Minimal JSON export of the reproduced tables.
//!
//! The build environment has no registry access, so the vendored `serde` is
//! marker-only and cannot serialize; this module hand-rolls the tiny subset
//! of JSON the `reproduce` harness needs so CI can upload the run's numbers
//! as a machine-readable artifact. The format is one object per table:
//! `{"id": ..., "rows": [...], "columns": {"name": [numbers...]}}`.

use crate::tables::TableOutput;
use std::fmt::Write as _;

/// Escape a string for a JSON string literal.
fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 2);
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite float as JSON (JSON has no NaN/Inf; they become null).
fn number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// Render one table as a JSON object.
pub fn table_to_json(table: &TableOutput) -> String {
    let mut out = String::new();
    let _ = write!(out, "{{\"id\":\"{}\",\"rows\":[", escape(&table.id));
    for (i, label) in table.row_labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\"", escape(label));
    }
    out.push_str("],\"columns\":{");
    for (i, (name, values)) in table.columns.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":[", escape(name));
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&number(*v));
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

/// Render a full reproduce run (scale label + skew knob + tables + wall
/// time) as JSON.
///
/// `skew` is the hot-stream multiplier the run's skewed-arrival sweep
/// (`reproduce --skew N`, Table 9) was driven with; `None` renders as
/// `null`, so consumers can tell "no skew sweep ran" from "ran at 1x".
pub fn run_to_json(
    scale: &str,
    skew: Option<usize>,
    tables: &[TableOutput],
    total_seconds: f64,
) -> String {
    let mut out = String::new();
    let skew_json = skew.map_or("null".to_string(), |s| s.to_string());
    let _ = write!(
        out,
        "{{\"scale\":\"{}\",\"skew\":{},\"total_seconds\":{},\"tables\":[",
        escape(scale),
        skew_json,
        number(total_seconds)
    );
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&table_to_json(table));
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table() -> TableOutput {
        TableOutput {
            id: "Table X".into(),
            text: String::new(),
            row_labels: vec!["fixed/people".into(), "say \"hi\"".into()],
            columns: vec![
                ("fps".into(), vec![6.54, 7.0]),
                ("ratio".into(), vec![0.0538, f64::NAN]),
            ],
        }
    }

    #[test]
    fn tables_render_valid_json_shapes() {
        let json = table_to_json(&table());
        assert!(json.starts_with("{\"id\":\"Table X\""));
        assert!(json.contains("\"rows\":[\"fixed/people\",\"say \\\"hi\\\"\"]"));
        assert!(json.contains("\"fps\":[6.54,7]"));
        // Non-finite values become null rather than invalid JSON.
        assert!(json.contains("null"));
        // Balanced braces/brackets (a cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn runs_embed_every_table() {
        let json = run_to_json("smoke", None, &[table(), table()], 12.5);
        assert!(json.starts_with("{\"scale\":\"smoke\",\"skew\":null,\"total_seconds\":12.5"));
        assert_eq!(json.matches("\"id\":\"Table X\"").count(), 2);
    }

    #[test]
    fn skew_knob_lands_in_the_schema() {
        let json = run_to_json("smoke", Some(8), &[table()], 1.0);
        assert!(json.contains("\"skew\":8,"));
        // Balanced braces/brackets with the new field in place.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn control_characters_are_escaped() {
        assert_eq!(escape("a\nb"), "a\\nb");
        assert_eq!(escape("a\u{1}b"), "a\\u0001b");
        assert_eq!(escape("back\\slash"), "back\\\\slash");
    }
}
