//! Shared workload builders for the table/figure reproductions.

use shadowtutor::baseline::{run_naive, run_wild};
use shadowtutor::config::{DistillationMode, PaperConstants};
use shadowtutor::pretrain::{pretrain_student, PretrainConfig};
use shadowtutor::runtime::sim::{DelayModel, SimRuntime};
use shadowtutor::ExperimentRecord;
use st_net::LinkModel;
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::LatencyProfile;
use st_teacher::OracleTeacher;
use st_video::dataset::{category_videos, figure4_videos, Resolution, VideoDescriptor};
use st_video::resample::Resampler;
use st_video::VideoGenerator;

/// How large an experiment to run.
///
/// Every scale runs the *same code paths*; only frame counts, resolution and
/// student width change. `Smoke` is what the Criterion benches and CI use;
/// `Default` is the scale EXPERIMENTS.md reports; `Extended` approaches the
/// paper's 5000-frame streams (slow on a laptop CPU).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// ~100 frames per stream at 32×24 with the tiny student.
    Smoke,
    /// ~300 frames per stream at 32×24 with the tiny student.
    Default,
    /// ~1000 frames per stream at 64×48 with the small student.
    Extended,
}

impl ExperimentScale {
    /// Frames processed per video stream.
    pub fn frames(self) -> usize {
        match self {
            ExperimentScale::Smoke => 96,
            ExperimentScale::Default => 288,
            ExperimentScale::Extended => 1000,
        }
    }

    /// Video resolution.
    pub fn resolution(self) -> Resolution {
        match self {
            ExperimentScale::Smoke | ExperimentScale::Default => Resolution::Tiny,
            ExperimentScale::Extended => Resolution::Small,
        }
    }

    /// Student width configuration.
    pub fn student_config(self) -> StudentConfig {
        match self {
            ExperimentScale::Smoke | ExperimentScale::Default => StudentConfig::tiny(),
            ExperimentScale::Extended => StudentConfig::small(),
        }
    }

    /// Pre-training configuration ("public education").
    pub fn pretrain_config(self) -> PretrainConfig {
        match self {
            ExperimentScale::Smoke => PretrainConfig {
                steps: 30,
                resolution: Resolution::Tiny,
                ..PretrainConfig::quick()
            },
            ExperimentScale::Default => PretrainConfig {
                steps: 90,
                resolution: Resolution::Tiny,
                ..PretrainConfig::quick()
            },
            ExperimentScale::Extended => PretrainConfig::standard(),
        }
    }

    /// Parse from a CLI string.
    pub fn parse(text: &str) -> Option<Self> {
        match text {
            "smoke" => Some(ExperimentScale::Smoke),
            "default" => Some(ExperimentScale::Default),
            "extended" => Some(ExperimentScale::Extended),
            _ => None,
        }
    }
}

/// System variants compared across the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// ShadowTutor with partial distillation and an `n`-frame update delay.
    Partial {
        /// Frames between the key frame and the update application.
        delay: usize,
    },
    /// ShadowTutor with full distillation and an `n`-frame update delay.
    Full {
        /// Frames between the key frame and the update application.
        delay: usize,
    },
    /// The pre-trained student with no server contact.
    Wild,
    /// Naive offloading of every frame.
    Naive,
}

impl Variant {
    /// Column label used in tables.
    pub fn label(self) -> String {
        match self {
            Variant::Partial { delay } => format!("P-{delay}"),
            Variant::Full { delay } => format!("F-{delay}"),
            Variant::Wild => "Wild".to_string(),
            Variant::Naive => "Naive".to_string(),
        }
    }
}

/// Everything shared by the table reproductions: the pre-trained student
/// checkpoint, the category descriptors, and memoised experiment runs.
pub struct SharedSetup {
    /// Scale the setup was built at.
    pub scale: ExperimentScale,
    /// The "publicly educated" student checkpoint every run starts from.
    pub checkpoint: StudentNet,
    /// One video descriptor per paper category.
    pub categories: Vec<VideoDescriptor>,
    /// The named Figure-4 videos.
    pub figure4: Vec<VideoDescriptor>,
    /// The paper's reported constants (payload sizes, latencies).
    pub paper: PaperConstants,
    /// Latency profile used for every virtual clock.
    pub latency: LatencyProfile,
    /// Link model used for the main experiments (80 Mbps).
    pub link: LinkModel,
}

impl SharedSetup {
    /// Build the shared setup: pre-train the student and enumerate videos.
    pub fn new(scale: ExperimentScale) -> Self {
        let (checkpoint, _report) =
            pretrain_student(scale.student_config(), &scale.pretrain_config())
                .expect("pre-training the student checkpoint");
        SharedSetup {
            scale,
            checkpoint,
            categories: category_videos(scale.resolution(), 7_000),
            figure4: figure4_videos(scale.resolution(), 9_000),
            paper: PaperConstants::reported(),
            latency: LatencyProfile::paper(),
            link: LinkModel::paper_default(),
        }
    }

    /// Paper-scale payload sizes `(frame_bytes, update_bytes)` for a
    /// distillation mode: a 720p RGB frame uplink and the measured update
    /// downlink (0.395 MB partial / 1.846 MB full).
    pub fn paper_payload(&self, mode: DistillationMode) -> (usize, usize) {
        let frame = (self.paper.frame_mb * 1e6) as usize;
        let update = match mode {
            DistillationMode::Partial => (self.paper.partial_update_mb * 1e6) as usize,
            DistillationMode::Full => (self.paper.full_update_mb * 1e6) as usize,
        };
        (frame, update)
    }

    /// Run one ShadowTutor variant over one video descriptor.
    pub fn run_variant(&self, descriptor: &VideoDescriptor, variant: Variant) -> ExperimentRecord {
        let frames = self.scale.frames();
        let teacher = OracleTeacher::perfect(descriptor.config.seed ^ 0x5151);
        match variant {
            Variant::Partial { delay } | Variant::Full { delay } => {
                let mode = if matches!(variant, Variant::Partial { .. }) {
                    DistillationMode::Partial
                } else {
                    DistillationMode::Full
                };
                let runtime = SimRuntime::paper(mode)
                    .with_delay_model(DelayModel::Frames(delay))
                    .with_link(self.link);
                let mut video =
                    VideoGenerator::new(descriptor.config).expect("valid descriptor config");
                runtime
                    .run(
                        &descriptor.name,
                        &mut video,
                        frames,
                        self.checkpoint.clone(),
                        teacher,
                    )
                    .expect("sim run")
            }
            Variant::Wild => {
                let mut video =
                    VideoGenerator::new(descriptor.config).expect("valid descriptor config");
                run_wild(
                    &descriptor.name,
                    &mut video,
                    frames,
                    &self.checkpoint,
                    teacher,
                    &self.latency,
                )
                .expect("wild run")
            }
            Variant::Naive => {
                let mut video =
                    VideoGenerator::new(descriptor.config).expect("valid descriptor config");
                run_naive(
                    &descriptor.name,
                    &mut video,
                    frames,
                    teacher,
                    &self.latency,
                    &self.link,
                )
                .expect("naive run")
            }
        }
    }

    /// Run one variant over a 7-FPS resampled version of a descriptor
    /// (the §6.5 real-time experiment).
    pub fn run_resampled(
        &self,
        descriptor: &VideoDescriptor,
        variant: Variant,
    ) -> ExperimentRecord {
        let frames = self.scale.frames();
        let teacher = OracleTeacher::perfect(descriptor.config.seed ^ 0x7171);
        let source = VideoGenerator::new(descriptor.config).expect("valid descriptor config");
        let mut video = Resampler::to_fps(source, descriptor.config.fps, 7.0).expect("resampler");
        match variant {
            Variant::Partial { delay } | Variant::Full { delay } => {
                let mode = if matches!(variant, Variant::Partial { .. }) {
                    DistillationMode::Partial
                } else {
                    DistillationMode::Full
                };
                let runtime = SimRuntime::paper(mode)
                    .with_delay_model(DelayModel::Frames(delay))
                    .with_link(self.link);
                runtime
                    .run(
                        &descriptor.name,
                        &mut video,
                        frames,
                        self.checkpoint.clone(),
                        teacher,
                    )
                    .expect("resampled sim run")
            }
            Variant::Wild => run_wild(
                &descriptor.name,
                &mut video,
                frames,
                &self.checkpoint,
                teacher,
                &self.latency,
            )
            .expect("resampled wild run"),
            Variant::Naive => run_naive(
                &descriptor.name,
                &mut video,
                frames,
                teacher,
                &self.latency,
                &self.link,
            )
            .expect("resampled naive run"),
        }
    }

    /// Run every paper category under a variant.
    pub fn run_all_categories(&self, variant: Variant) -> Vec<ExperimentRecord> {
        self.categories
            .iter()
            .map(|d| self.run_variant(d, variant))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing_and_sizes() {
        assert_eq!(
            ExperimentScale::parse("smoke"),
            Some(ExperimentScale::Smoke)
        );
        assert_eq!(
            ExperimentScale::parse("default"),
            Some(ExperimentScale::Default)
        );
        assert_eq!(
            ExperimentScale::parse("extended"),
            Some(ExperimentScale::Extended)
        );
        assert_eq!(ExperimentScale::parse("bogus"), None);
        assert!(ExperimentScale::Extended.frames() > ExperimentScale::Smoke.frames());
    }

    #[test]
    fn variant_labels() {
        assert_eq!(Variant::Partial { delay: 1 }.label(), "P-1");
        assert_eq!(Variant::Full { delay: 8 }.label(), "F-8");
        assert_eq!(Variant::Wild.label(), "Wild");
        assert_eq!(Variant::Naive.label(), "Naive");
    }

    #[test]
    fn paper_payload_sizes_differ_by_mode() {
        let setup = SharedSetup::new(ExperimentScale::Smoke);
        let (frame_p, update_p) = setup.paper_payload(DistillationMode::Partial);
        let (frame_f, update_f) = setup.paper_payload(DistillationMode::Full);
        assert_eq!(frame_p, frame_f);
        assert!(update_p < update_f);
        assert_eq!(setup.categories.len(), 7);
        assert_eq!(setup.figure4.len(), 5);
    }
}
