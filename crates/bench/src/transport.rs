//! Transport micro-benchmark table: codec throughput per message type and
//! shared-memory ring latency, in the µs-per-datum style of IPC benchmark
//! suites.
//!
//! The `transport_ops` Criterion bench drives this and prints the table; the
//! measurements themselves are hand-timed loops so the table can report
//! bytes, µs/op, and MB/s side by side for every scenario (Criterion's
//! statistics stay available in the bench's own output).

use crate::tables::TableOutput;
use st_net::shm::{ring_channel, RingConsumer, RingProducer};
use st_net::{ClientToServer, Payload, ServerToClient, ShmConfig, StreamTagged};
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::{StudentConfig, StudentNet};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// One measured scenario: what moved, how big one datum was, how long one
/// operation took.
struct Sample {
    label: String,
    datum_bytes: usize,
    us_per_op: f64,
}

impl Sample {
    fn megabytes_per_second(&self) -> f64 {
        if self.us_per_op == 0.0 {
            return 0.0;
        }
        (self.datum_bytes as f64 / 1e6) / (self.us_per_op / 1e6)
    }
}

/// Time `f` over `iters` iterations (after `iters / 10 + 1` warm-up runs)
/// and return the mean microseconds per call.
fn measure_us<F: FnMut()>(iters: usize, mut f: F) -> f64 {
    for _ in 0..iters / 10 + 1 {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

/// Deterministic non-trivial payload bytes (all-zero buffers flatter memcpy).
fn patterned(len: usize) -> bytes::Bytes {
    bytes::Bytes::from((0..len).map(|i| (i * 31 % 251) as u8).collect::<Vec<u8>>())
}

fn codec_samples(iters: usize) -> Vec<Sample> {
    let mut samples = Vec::new();
    let mut push = |label: &str, encoded: Vec<u8>, encode_us: f64, decode_us: f64| {
        samples.push(Sample {
            label: format!("encode/{label}"),
            datum_bytes: encoded.len(),
            us_per_op: encode_us,
        });
        samples.push(Sample {
            label: format!("decode/{label}"),
            datum_bytes: encoded.len(),
            us_per_op: decode_us,
        });
    };

    // Control-plane message: the smallest thing the protocol ships.
    let register = ClientToServer::Register;
    push(
        "register",
        st_net::wire::encode_frame(&register),
        measure_us(iters * 10, || {
            black_box(st_net::wire::encode_frame(black_box(&register)));
        }),
        {
            let bytes = st_net::wire::encode_frame(&register);
            measure_us(iters * 10, || {
                black_box(st_net::wire::decode_frame::<ClientToServer>(black_box(&bytes)).unwrap());
            })
        },
    );

    // Key frame with a 64 KiB encoded-RGB payload — the uplink data plane.
    let key_frame = ClientToServer::KeyFrame {
        frame_index: 42,
        payload: Payload::with_data(patterned(64 * 1024)),
    };
    push(
        "key_frame_64k",
        st_net::wire::encode_frame(&key_frame),
        measure_us(iters, || {
            black_box(st_net::wire::encode_frame(black_box(&key_frame)));
        }),
        {
            let bytes = st_net::wire::encode_frame(&key_frame);
            measure_us(iters, || {
                black_box(st_net::wire::decode_frame::<ClientToServer>(black_box(&bytes)).unwrap());
            })
        },
    );

    // Student update carrying a real partial weight snapshot — the downlink
    // data plane.
    let mut student = StudentNet::new(StudentConfig::tiny()).expect("student init");
    let snapshot = WeightSnapshot::capture(&mut student, SnapshotScope::TrainableOnly);
    let update = ServerToClient::StudentUpdate {
        frame_index: 42,
        metric: 0.875,
        distill_steps: 12,
        payload: Payload::with_data(snapshot.encode()),
    };
    push(
        "student_update",
        st_net::wire::encode_frame(&update),
        measure_us(iters, || {
            black_box(st_net::wire::encode_frame(black_box(&update)));
        }),
        {
            let bytes = st_net::wire::encode_frame(&update);
            measure_us(iters, || {
                black_box(st_net::wire::decode_frame::<ServerToClient>(black_box(&bytes)).unwrap());
            })
        },
    );

    // The multiplexed envelope the pool actually routes on.
    let tagged = StreamTagged::new(
        7,
        ClientToServer::KeyFrame {
            frame_index: 42,
            payload: Payload::with_data(patterned(64 * 1024)),
        },
    );
    push(
        "tagged_key_frame",
        st_net::wire::encode_frame(&tagged),
        measure_us(iters, || {
            black_box(st_net::wire::encode_frame(black_box(&tagged)));
        }),
        {
            let bytes = st_net::wire::encode_frame(&tagged);
            measure_us(iters, || {
                black_box(
                    st_net::wire::decode_frame::<StreamTagged<ClientToServer>>(black_box(&bytes))
                        .unwrap(),
                );
            })
        },
    );

    samples
}

/// Ping one chunk through the ring (enqueue + dequeue in one thread) —
/// the uncontended latency floor.
fn ring_1p1c(producer: &RingProducer, consumer: &RingConsumer, chunk: &[u8], iters: usize) -> f64 {
    let mut out = Vec::with_capacity(chunk.len());
    measure_us(iters, || {
        assert!(producer.push_timeout(chunk, Duration::from_secs(5)));
        out.clear();
        assert!(consumer.try_pop(&mut out));
        black_box(&out);
    })
}

/// `producers` threads each push `per_producer` chunks while this thread
/// drains; returns mean µs per chunk end to end.
fn ring_contended(
    producer: &RingProducer,
    consumer: &RingConsumer,
    chunk: &[u8],
    producers: usize,
    per_producer: usize,
) -> f64 {
    let total = producers * per_producer;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..producers {
            let producer = producer.clone();
            scope.spawn(move || {
                for _ in 0..per_producer {
                    assert!(producer.push_timeout(chunk, Duration::from_secs(10)));
                }
            });
        }
        let mut out = Vec::with_capacity(chunk.len());
        let mut received = 0usize;
        while received < total {
            out.clear();
            if consumer.try_pop(&mut out) {
                black_box(&out);
                received += 1;
            } else {
                std::hint::spin_loop();
            }
        }
    });
    start.elapsed().as_secs_f64() * 1e6 / total as f64
}

fn ring_samples(sweep: &[usize], per_producer: usize, iters: usize) -> Vec<Sample> {
    let chunk_bytes = 4 * 1024;
    let path =
        st_net::shm::default_segment_path(&format!("transport-bench-{}", std::process::id()));
    let (producer, consumer) =
        ring_channel(&path, ShmConfig::default()).expect("create bench ring segment");
    let chunk: Vec<u8> = (0..chunk_bytes).map(|i| (i % 255) as u8).collect();

    let mut samples = vec![Sample {
        label: "ring/1p_1c_ping".to_string(),
        datum_bytes: chunk_bytes,
        us_per_op: ring_1p1c(&producer, &consumer, &chunk, iters),
    }];
    for &producers in sweep {
        samples.push(Sample {
            label: format!("ring/{producers}p_1c"),
            datum_bytes: chunk_bytes,
            us_per_op: ring_contended(&producer, &consumer, &chunk, producers, per_producer),
        });
    }
    drop((producer, consumer));
    let _ = std::fs::remove_file(&path);
    samples
}

/// Build the transport micro-benchmark table.
///
/// `sweep` is the list of concurrent producer counts for the contended ring
/// scenarios; `per_producer` the chunks each producer pushes; `iters` the
/// iteration count for the single-threaded codec / ping loops.
pub fn table_transport(sweep: &[usize], per_producer: usize, iters: usize) -> TableOutput {
    let mut samples = codec_samples(iters);
    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        samples.extend(ring_samples(sweep, per_producer, iters));
    } else {
        println!("transport: shared-memory ring scenarios skipped (needs x86_64 Linux)");
    }

    let mut out = TableOutput::new("TRANSPORT");
    out.row_labels = samples.iter().map(|s| s.label.clone()).collect();
    out.columns = vec![
        (
            "datum (B)".to_string(),
            samples.iter().map(|s| s.datum_bytes as f64).collect(),
        ),
        (
            "µs/op".to_string(),
            samples.iter().map(|s| s.us_per_op).collect(),
        ),
        (
            "MB/s".to_string(),
            samples.iter().map(Sample::megabytes_per_second).collect(),
        ),
    ];
    out.render(
        "TRANSPORT: wire codec throughput per message type and shared-memory ring latency (measured)",
    );
    out
}
