//! Table 9 (new in this reproduction, no paper counterpart) — fairness under
//! skewed arrivals: one hot stream sending a multiple of the base key-frame
//! rate against the fair (deficit-round-robin + admission-control) server
//! pool, sweeping the hot-stream share and reporting per-class p50/p99 round
//! trips, server-side queue waits, throttle/drop counts, and the analytic
//! skewed-contention predictions.
//!
//! Criterion additionally measures the scheduler hot path: one
//! deficit-round-robin drain over a deeply skewed backlog.
//!
//! Knobs (for CI's tiny smoke sweep):
//!
//! * `TABLE9_SWEEP=smoke` shrinks the sweep and per-stream key-frame counts.
//! * `TABLE9_JSON=<path>` additionally writes the table as JSON (uploaded
//!   next to the reproduce artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::serve::FairScheduler;
use st_bench::json::table_to_json;
use st_bench::tables::table9_skewed;
use std::time::Instant;

/// A scheduler with one hot stream holding a deep backlog plus cold
/// single-job streams — the drain pattern the worker runs per batch.
fn loaded_scheduler() -> FairScheduler {
    let mut scheduler = FairScheduler::new(1);
    let now = Instant::now();
    for i in 0..64 {
        scheduler.push(0, i, now);
    }
    for stream in 1..8u64 {
        scheduler.push(stream, 0, now);
    }
    scheduler
}

fn skewed_streams_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table9_skewed_streams");
    group.sample_size(10);
    group.bench_function("drr_drain_batch8", |bench| {
        bench.iter(|| {
            let mut scheduler = loaded_scheduler();
            let mut drained = 0usize;
            while !scheduler.is_empty() {
                drained += scheduler.next_batch(8).len();
            }
            drained
        })
    });
    group.finish();

    // The fairness sweep itself: hot-stream share vs per-class round trips.
    let smoke = std::env::var("TABLE9_SWEEP").as_deref() == Ok("smoke");
    let (sweep, streams, key_frames): (&[usize], usize, usize) = if smoke {
        (&[1, 8], 4, 2)
    } else {
        (&[1, 4, 8], 4, 6)
    };
    let table = table9_skewed(sweep, streams, key_frames);
    println!("\n{}", table.text);

    if let Ok(path) = std::env::var("TABLE9_JSON") {
        let json = table_to_json(&table);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote JSON artifact: {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

criterion_group!(benches, skewed_streams_benchmark);
criterion_main!(benches);
