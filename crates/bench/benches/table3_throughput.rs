//! Table 3 — system throughput (FPS) per camera×scene category for partial /
//! full distillation and the naive baseline.
//!
//! Criterion measures the host's student-inference latency (the `t_si` that
//! dominates steady-state throughput); the printed table replays the
//! measured distillation traces at paper-scale payload sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::tables::tables_3_and_5;
use st_bench::{ExperimentScale, SharedSetup};
use st_nn::student::{StudentConfig, StudentNet};
use st_tensor::{random, Shape};
use std::hint::black_box;

fn throughput_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_throughput");
    group.sample_size(20);

    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    let frame = random::uniform(Shape::nchw(1, 3, 24, 32), 0.0, 1.0, 1);
    group.bench_function("student_inference_tiny_24x32", |bench| {
        bench.iter(|| student.forward_inference(black_box(&frame)).unwrap())
    });
    let small = StudentNet::new(StudentConfig::small()).unwrap();
    let frame_small = random::uniform(Shape::nchw(1, 3, 48, 64), 0.0, 1.0, 2);
    group.bench_function("student_inference_small_48x64", |bench| {
        bench.iter(|| small.forward_inference(black_box(&frame_small)).unwrap())
    });
    group.finish();

    let mut setup = SharedSetup::new(ExperimentScale::Smoke);
    setup.categories.truncate(3); // keep `cargo bench` wall time bounded
    let tables = tables_3_and_5(&setup);
    println!("\n{}", tables.table3.text);
}

criterion_group!(benches, throughput_benchmark);
criterion_main!(benches);
