//! Micro-benchmarks of the tensor substrate kernels that dominate student
//! inference and distillation: GEMM, im2col convolution, and channel softmax.

use criterion::{criterion_group, criterion_main, Criterion};
use st_tensor::conv::{conv2d_forward, Conv2dSpec};
use st_tensor::{matmul, ops, random, Shape};
use std::hint::black_box;

fn bench_tensor_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("tensor_ops");
    group.sample_size(20);

    let a = random::uniform(Shape::matrix(64, 256), -1.0, 1.0, 1);
    let b = random::uniform(Shape::matrix(256, 192), -1.0, 1.0, 2);
    group.bench_function("matmul_64x256x192", |bench| {
        bench.iter(|| matmul::matmul(black_box(&a), black_box(&b)).unwrap())
    });

    let spec = Conv2dSpec::square(16, 16, 3, 1);
    let input = random::uniform(Shape::nchw(1, 16, 24, 32), -1.0, 1.0, 3);
    let weight = random::uniform(spec.weight_shape(), -0.2, 0.2, 4);
    group.bench_function("conv3x3_16ch_24x32", |bench| {
        bench.iter(|| conv2d_forward(black_box(&input), black_box(&weight), None, &spec).unwrap())
    });

    let logits = random::uniform(Shape::nchw(1, 9, 48, 64), -3.0, 3.0, 5);
    group.bench_function("softmax_9ch_48x64", |bench| {
        bench.iter(|| ops::softmax_channels(black_box(&logits)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench_tensor_ops);
criterion_main!(benches);
