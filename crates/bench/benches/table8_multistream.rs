//! Table 8 (new in this reproduction, no paper counterpart) — multi-stream
//! serving: throughput and server queueing versus concurrent stream count.
//!
//! The paper evaluates one client per server; this bench drives the sharded
//! [`shadowtutor::serve::ServerPool`] with 1–8 concurrent client streams and
//! reports aggregate frames per wall-clock second, the mean server-side
//! queue wait per key frame, and the mean co-scheduled teacher batch size.
//! Criterion additionally measures the latency of one batched shard step —
//! the unit of work a pool worker performs per co-scheduled batch.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::runtime::live::{run_live_multi, StreamSpec};
use shadowtutor::serve::{FrameStore, PoolConfig, ServeShard, ShardJob};
use st_nn::student::{StudentConfig, StudentNet};
use st_teacher::OracleTeacher;
use st_video::dataset::tiny_stream as frames_for;
use st_video::SceneKind;

const SCENES: [SceneKind; 3] = [SceneKind::People, SceneKind::Animals, SceneKind::Street];

fn specs(streams: usize, frames_per_stream: usize) -> Vec<StreamSpec> {
    (0..streams)
        .map(|i| {
            let scene = SCENES[i % SCENES.len()];
            StreamSpec {
                stream_id: i as u64,
                label: format!("stream-{i}"),
                frames: frames_for(scene, 8_000 + i as u64, frames_per_stream),
            }
        })
        .collect()
}

/// A shard with `streams` registered sessions and one key-frame job each.
fn loaded_shard(streams: usize) -> (ServeShard<OracleTeacher>, Vec<ShardJob>) {
    let mut shard = ServeShard::new(
        ShadowTutorConfig::paper(),
        StudentNet::new(StudentConfig::tiny()).unwrap(),
        OracleTeacher::perfect(17),
        0.013,
    );
    let mut jobs = Vec::with_capacity(streams);
    for i in 0..streams {
        let frames = frames_for(SCENES[i % SCENES.len()], 9_000 + i as u64, 1);
        let frame_index = frames[0].index;
        shard.register(i as u64, FrameStore::from_frames(&frames, None), false);
        jobs.push(ShardJob {
            stream_id: i as u64,
            frame_index,
        });
    }
    (shard, jobs)
}

fn multistream_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table8_multistream");
    group.sample_size(10);
    group.bench_function("shard_step_batch1", |bench| {
        bench.iter_batched(
            || loaded_shard(1),
            |(mut shard, jobs)| shard.process_batch(&jobs).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("shard_step_batch4", |bench| {
        bench.iter_batched(
            || loaded_shard(4),
            |(mut shard, jobs)| shard.process_batch(&jobs).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();

    // Throughput vs stream count, two shards (the default pool) — what a
    // production deployment would watch while scaling stream admission.
    let student = StudentNet::new(StudentConfig::tiny()).unwrap();
    println!("\nTable 8 — multi-stream serving vs stream count (2 shards, wall clock)");
    println!(
        "{:>7}  {:>9}  {:>14}  {:>11}  {:>10}",
        "streams", "agg FPS", "wait/key (ms)", "mean batch", "key frames"
    );
    for &streams in &[1usize, 2, 4, 8] {
        let outcome = run_live_multi(
            ShadowTutorConfig::paper(),
            specs(streams, 16),
            student.clone(),
            PoolConfig::with_shards(2),
            |shard| OracleTeacher::perfect(600 + shard as u64),
        )
        .unwrap();
        println!(
            "{:>7}  {:>9.1}  {:>14.3}  {:>11.2}  {:>10}",
            streams,
            outcome.aggregate_fps(),
            1e3 * outcome.mean_queue_wait_secs(),
            outcome.pool.mean_batch_size(),
            outcome.pool.total_key_frames(),
        );
    }
}

criterion_group!(benches, multistream_benchmark);
criterion_main!(benches);
