//! Table 7 — mean IoU and key-frame ratio on 7 FPS resampled streams
//! (the §6.5 real-time feasibility experiment).
//!
//! Criterion measures frame generation plus resampling (the input pipeline a
//! real-time deployment would run); the printed table comes from the
//! resampled smoke-scale runs.

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::tables::table7;
use st_bench::{ExperimentScale, SharedSetup};
use st_video::resample::Resampler;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

fn realtime_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table7_realtime");
    group.sample_size(20);

    let cat = VideoCategory {
        camera: CameraMotion::Moving,
        scene: SceneKind::Street,
    };
    let config = VideoConfig::for_category(cat, 32, 24, 1);
    group.bench_function("generate_and_resample_28_to_7fps", |bench| {
        bench.iter(|| {
            let gen = VideoGenerator::new(config).unwrap();
            let resampled: Vec<_> = Resampler::to_fps(gen, 28.0, 7.0).unwrap().take(8).collect();
            resampled.len()
        })
    });
    group.finish();

    let mut setup = SharedSetup::new(ExperimentScale::Smoke);
    setup.categories.truncate(3);
    println!("\n{}", table7(&setup).text);
}

criterion_group!(benches, realtime_benchmark);
criterion_main!(benches);
