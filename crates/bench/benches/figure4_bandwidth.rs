//! Figure 4 — throughput vs network bandwidth for five named videos, the
//! naive baseline, and the analytic bound band.
//!
//! Criterion measures the per-bandwidth replay evaluation; the printed
//! figure data comes from real smoke-scale traces replayed across the
//! paper's bandwidth axis.

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::bounds::{throughput_bounds, BoundInputs};
use shadowtutor::config::ShadowTutorConfig;
use st_bench::figures::{figure4, FIGURE4_BANDWIDTHS_MBPS};
use st_bench::{ExperimentScale, SharedSetup};
use st_net::LinkModel;
use st_sim::LatencyProfile;
use std::hint::black_box;

fn bandwidth_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure4_bandwidth");
    group.sample_size(50);

    let config = ShadowTutorConfig::paper();
    let latency = LatencyProfile::paper();
    group.bench_function("bound_band_over_bandwidth_axis", |bench| {
        bench.iter(|| {
            FIGURE4_BANDWIDTHS_MBPS
                .iter()
                .map(|&mbps| {
                    let link = LinkModel::symmetric_mbps(mbps);
                    let t_net = link.key_frame_round_trip(2_637_000, 395_000);
                    let inputs = BoundInputs::new(&latency, true, t_net, 3_032_000);
                    throughput_bounds(black_box(&config), &inputs).upper_fps
                })
                .sum::<f64>()
        })
    });
    group.finish();

    let mut setup = SharedSetup::new(ExperimentScale::Smoke);
    setup.figure4.truncate(3);
    println!("\n{}", figure4(&setup).render());
}

criterion_group!(benches, bandwidth_benchmark);
criterion_main!(benches);
