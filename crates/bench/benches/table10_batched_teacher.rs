//! Table 10 (new in this reproduction, no paper counterpart) — batched
//! teacher throughput: per-frame wall cost of the genuinely batched
//! `CnnTeacher` forward as the co-scheduled batch size sweeps 1/2/4/8.
//!
//! Doubles as the CI threshold gate for the kernel-level batching win: the
//! bench **exits non-zero** when the measured per-frame cost at the largest
//! batch size is not below the per-frame cost at batch 1 — if batching stops
//! amortizing, CI fails rather than silently shipping a regression.
//!
//! Knobs (for CI's tiny smoke sweep):
//!
//! * `TABLE10_SWEEP=smoke` shrinks the teacher and the repetition count.
//! * `TABLE10_JSON=<path>` additionally writes the table as JSON (uploaded
//!   next to the reproduce artifact).

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::json::table_to_json;
use st_bench::tables::table10_batched;
use st_teacher::{CnnTeacher, Teacher};
use st_video::dataset::tiny_stream;
use st_video::SceneKind;

fn batched_teacher_benchmark(c: &mut Criterion) {
    // Criterion micro view of one co-scheduled forward at batch 4.
    let mut group = c.benchmark_group("table10_batched_teacher");
    group.sample_size(10);
    let mut teacher = CnnTeacher::untrained(1, 42).expect("teacher");
    let frames = tiny_stream(SceneKind::People, 4200, 4);
    let refs: Vec<&st_video::Frame> = frames.iter().collect();
    group.bench_function("cnn_forward_batch4", |bench| {
        bench.iter(|| teacher.pseudo_label_batch(&refs).unwrap())
    });
    group.finish();

    // The throughput sweep itself: per-frame cost vs batch size.
    let smoke = std::env::var("TABLE10_SWEEP").as_deref() == Ok("smoke");
    let (width, reps) = if smoke { (1, 5) } else { (2, 9) };
    let sweep = [1usize, 2, 4, 8];
    let table = table10_batched(&sweep, width, reps);
    println!("\n{}", table.text);

    if let Ok(path) = std::env::var("TABLE10_JSON") {
        let json = table_to_json(&table);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote JSON artifact: {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Threshold gate: batching must amortize at the deepest window.
    let per_frame = table.column("per-frame ms").expect("per-frame column");
    let (solo, deepest) = (per_frame[0], per_frame[per_frame.len() - 1]);
    if deepest >= solo {
        eprintln!(
            "FAIL: batched per-frame cost did not amortize \
             (batch {} at {deepest:.3} ms/frame >= batch 1 at {solo:.3} ms/frame)",
            sweep[sweep.len() - 1]
        );
        std::process::exit(1);
    }
    println!(
        "batched-forward amortization OK: batch {} runs {deepest:.3} ms/frame vs {solo:.3} solo",
        sweep[sweep.len() - 1]
    );
}

criterion_group!(benches, batched_teacher_benchmark);
criterion_main!(benches);
