//! Table 4 — data transmitted per key frame (MB).
//!
//! Criterion measures the cost of capturing and encoding the partial/full
//! weight snapshots of the paper-scale student (the operation whose output
//! size *is* Table 4); the printed table reports the measured byte sizes.

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::config::DistillationMode;
use st_bench::tables::table4;
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::{StudentConfig, StudentNet};

fn payload_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_payload");
    group.sample_size(10);

    let mut student = StudentNet::new(StudentConfig::paper()).unwrap();
    student.freeze = DistillationMode::Partial.freeze_point();

    group.bench_function("encode_partial_snapshot", |bench| {
        bench.iter(|| WeightSnapshot::capture(&mut student, SnapshotScope::TrainableOnly).encode())
    });
    group.bench_function("encode_full_snapshot", |bench| {
        bench.iter(|| WeightSnapshot::capture(&mut student, SnapshotScope::Full).encode())
    });
    group.finish();

    println!("\n{}", table4().text);
}

criterion_group!(benches, payload_benchmark);
criterion_main!(benches);
