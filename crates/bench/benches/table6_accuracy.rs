//! Table 6 — mean IoU of Wild, P-1, P-8, F-1 and Naive.
//!
//! Criterion measures the mIoU computation itself (the per-frame accuracy
//! evaluation the runtime performs); the printed table comes from real
//! online-distillation runs at the smoke scale.

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::tables::table6;
use st_bench::{ExperimentScale, SharedSetup};
use st_nn::metrics::miou;
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator, NUM_CLASSES};
use std::hint::black_box;

fn accuracy_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table6_accuracy");
    group.sample_size(30);

    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::Street,
    };
    let mut gen = VideoGenerator::new(VideoConfig::for_category(cat, 64, 48, 1)).unwrap();
    let a = gen.next_frame();
    let b = gen.next_frame();
    group.bench_function("miou_64x48", |bench| {
        bench.iter(|| {
            miou(
                black_box(&a.ground_truth),
                black_box(&b.ground_truth),
                NUM_CLASSES,
            )
            .unwrap()
        })
    });
    group.finish();

    let mut setup = SharedSetup::new(ExperimentScale::Smoke);
    setup.categories.truncate(3);
    println!("\n{}", table6(&setup).text);
}

criterion_group!(benches, accuracy_benchmark);
criterion_main!(benches);
