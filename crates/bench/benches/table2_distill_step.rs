//! Table 2 — latency of one distillation step and mean number of steps,
//! partial vs full.
//!
//! Criterion measures the *host machine's* per-step latency for the tiny
//! student (the paper's Table 2 top row is the Jetson/RTX measurement, which
//! the latency profile reproduces); the printed table uses the simulation
//! runs for the mean-steps row.

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::config::{DistillationMode, ShadowTutorConfig};
use shadowtutor::train::train_student;
use st_bench::tables::table2;
use st_bench::{ExperimentScale, SharedSetup};
use st_nn::optim::Adam;
use st_nn::student::{StudentConfig, StudentNet};
use st_teacher::{OracleTeacher, Teacher};
use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};
use std::hint::black_box;

fn distill_step_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_distill_step");
    group.sample_size(10);

    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene: SceneKind::People,
    };
    let mut gen = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, 1)).unwrap();
    let frame = gen.next_frame();
    let mut teacher = OracleTeacher::perfect(1);
    let label = teacher.pseudo_label(&frame).unwrap();

    for mode in [DistillationMode::Partial, DistillationMode::Full] {
        let config = ShadowTutorConfig {
            mode,
            max_updates: 1,   // exactly one optimization step per call
            threshold: 0.999, // never skip the step
            ..ShadowTutorConfig::paper()
        };
        group.bench_function(format!("one_step_{}", mode.label()), |bench| {
            bench.iter_batched(
                || {
                    let mut student = StudentNet::new(StudentConfig::tiny()).unwrap();
                    student.freeze = mode.freeze_point();
                    (student, Adam::new(config.learning_rate))
                },
                |(mut student, mut opt)| {
                    train_student(&mut student, &mut opt, black_box(&frame), &label, &config)
                        .unwrap()
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    group.finish();

    // Print the reproduced table (smoke scale) so `cargo bench` regenerates it.
    let setup = SharedSetup::new(ExperimentScale::Smoke);
    println!("\n{}", table2(&setup).text);
}

criterion_group!(benches, distill_step_benchmark);
criterion_main!(benches);
