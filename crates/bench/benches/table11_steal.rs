//! Table 11 (new in this reproduction, no paper counterpart) — elastic
//! server pool under skewed load: the hot-stream sweep of Table 9 run over
//! a multi-shard pool twice per multiplier, with cross-shard work stealing
//! off (`PlacementPolicy::LeastLoaded`) and on (`Rebalance`), under a
//! per-stream LRU frame budget. Reports cold-stream p99 round trips and the
//! least-busy shard's measured busy time in both modes, steal / eviction /
//! re-share counts from the pool's operator report, and the analytic
//! static-hot-shard vs stealing delay predictions.
//!
//! Criterion additionally measures the elastic pool's new hot paths: LRU
//! frame-cache churn (insert + touch under a tight budget) and a full
//! deficit-round-robin drain with a mid-drain whole-stream removal — the
//! scheduler operation a migration performs.
//!
//! Knobs (for CI's tiny smoke sweep):
//!
//! * `TABLE11_SWEEP=smoke` shrinks the sweep, the pool, and the per-stream
//!   key-frame counts.
//! * `TABLE11_JSON=<path>` additionally writes the table as JSON (uploaded
//!   next to the table9/table10 artifacts).

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::serve::{FairScheduler, FrameStore};
use st_bench::json::table_to_json;
use st_bench::tables::table11_steal;
use st_video::dataset::tiny_stream;
use st_video::SceneKind;
use std::time::Instant;

fn steal_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table11_steal");
    group.sample_size(10);

    // LRU churn: repeatedly insert a stream's frames into a store with room
    // for a quarter of them, touching as the shard's resolve step does.
    let frames = tiny_stream(SceneKind::People, 11, 32);
    let budget = 8 * FrameStore::frame_cost(&frames[0]);
    group.bench_function("frame_store_churn_32f_budget8", |bench| {
        bench.iter(|| {
            let mut store = FrameStore::new(Some(budget));
            for frame in &frames {
                store.insert(frame.clone());
                store.touch(frame.index);
            }
            (store.evictions(), store.resident_bytes())
        })
    });

    // DRR drain with a mid-drain migration: remove the busiest stream's
    // whole queue (what a donation does), then finish draining.
    group.bench_function("drr_drain_with_migration", |bench| {
        bench.iter(|| {
            let now = Instant::now();
            let mut scheduler = FairScheduler::new(1);
            for i in 0..64 {
                scheduler.push(0, i, now);
            }
            for stream in 1..8u64 {
                scheduler.push(stream, 0, now);
            }
            let mut drained = 0usize;
            drained += scheduler.next_batch(8).len();
            let (busiest, _) = scheduler.busiest_stream().expect("backlog present");
            let migrated = scheduler.remove_stream(busiest).len();
            while !scheduler.is_empty() {
                drained += scheduler.next_batch(8).len();
            }
            (drained, migrated)
        })
    });
    group.finish();

    // The stealing sweep itself: skewed load with migration off vs on.
    let smoke = std::env::var("TABLE11_SWEEP").as_deref() == Ok("smoke");
    let (sweep, streams, shards, key_frames): (&[usize], usize, usize, usize) = if smoke {
        (&[8], 3, 2, 2)
    } else {
        (&[1, 4, 8], 5, 4, 6)
    };
    let table = table11_steal(sweep, streams, shards, key_frames);
    println!("\n{}", table.text);

    if let Ok(path) = std::env::var("TABLE11_JSON") {
        let json = table_to_json(&table);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote JSON artifact: {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

criterion_group!(benches, steal_benchmark);
criterion_main!(benches);
