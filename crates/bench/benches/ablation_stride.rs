//! Ablation — key-frame scheduling policies (Algorithm 2 vs fixed strides vs
//! exponential back-off).
//!
//! Criterion measures the scheduling rule itself (it runs once per key frame
//! on the mobile device, so the paper argues it must be cheap); the printed
//! table compares the policies' accuracy and key-frame ratios on a dynamic
//! street video.

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::next_stride;
use shadowtutor::stride::StridePolicy;
use st_bench::tables::ablation_stride;
use st_bench::{ExperimentScale, SharedSetup};
use std::hint::black_box;

fn stride_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_stride");
    group.sample_size(50);

    let config = ShadowTutorConfig::paper();
    group.bench_function("adaptive_next_stride", |bench| {
        bench.iter(|| {
            let mut stride = 8usize;
            for m in 0..64 {
                stride = next_stride(black_box(&config), stride, (m % 20) as f64 / 20.0);
            }
            stride
        })
    });
    group.bench_function("backoff_next_stride", |bench| {
        let policy = StridePolicy::ExponentialBackoff;
        bench.iter(|| {
            let mut stride = 8usize;
            for m in 0..64 {
                stride = policy.next(black_box(&config), stride, (m % 20) as f64 / 20.0);
            }
            stride
        })
    });
    group.finish();

    let setup = SharedSetup::new(ExperimentScale::Smoke);
    println!("\n{}", ablation_stride(&setup).text);
}

criterion_group!(benches, stride_benchmark);
criterion_main!(benches);
