//! Table 5 — key-frame ratio (%) and network traffic (Mbps).
//!
//! Criterion measures the trace-replay computation (the model that converts
//! a distillation trace plus a link model into traffic numbers); the printed
//! table comes from the measured traces at paper-scale payloads.

use criterion::{criterion_group, criterion_main, Criterion};
use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::report::{ExperimentRecord, FrameRecord, KeyFrameRecord};
use st_bench::tables::tables_3_and_5;
use st_bench::{ExperimentScale, SharedSetup};
use st_net::LinkModel;
use st_sim::{Concurrency, LatencyProfile};
use std::hint::black_box;

fn synthetic_record() -> ExperimentRecord {
    let frames = 5000usize;
    let key_every = 18usize;
    let key_frames: Vec<KeyFrameRecord> = (0..frames / key_every)
        .map(|i| KeyFrameRecord {
            frame_index: i * key_every,
            steps: 4,
            initial_metric: 0.6,
            metric: 0.85,
            stride_after: key_every,
        })
        .collect();
    ExperimentRecord {
        label: "synthetic".into(),
        variant: "partial".into(),
        frames,
        frame_records: (0..frames)
            .map(|i| FrameRecord {
                index: i,
                is_key_frame: i % key_every == 0,
                miou: 0.72,
                waited: false,
            })
            .collect(),
        key_frames,
        frame_bytes: 2_637_000,
        update_bytes: 395_000,
        uplink_bytes: 0,
        downlink_bytes: 0,
        total_time: 0.0,
        config: ShadowTutorConfig::paper(),
        latency: LatencyProfile::paper(),
    }
}

fn traffic_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table5_traffic");
    group.sample_size(30);
    let record = synthetic_record();
    let link = LinkModel::paper_default();
    group.bench_function("replay_5000_frame_trace", |bench| {
        bench.iter(|| black_box(&record).replay_fps(&link, Concurrency::Full))
    });
    group.finish();

    let mut setup = SharedSetup::new(ExperimentScale::Smoke);
    setup.categories.truncate(3);
    let tables = tables_3_and_5(&setup);
    println!("\n{}", tables.table5.text);
}

criterion_group!(benches, traffic_benchmark);
criterion_main!(benches);
