//! Table 12 (new in this reproduction, no paper counterpart) — stream
//! capacity of a fixed worker set: a ladder of concurrent open-loop
//! streams driven against the pool twice per rung, once partitioned
//! (thread-per-shard, `shards == threads`, static pinning) and once
//! pooled (reactor, `shards == streams`, `reactor_threads == threads`),
//! with the OS thread count identical in both modes. The table reports
//! p99 queue waits per rung and the measured capacity — the largest rung
//! whose p99 wait stays under the target — beside the analytic
//! partitioned/pooled predictions.
//!
//! Criterion additionally measures the reactor's client-side hot path:
//! one poller wake-up round trip (wake → poll → drain) at two token
//! counts, the per-event cost the multiplexed drivers pay.
//!
//! Knobs (for CI's tiny smoke sweep):
//!
//! * `TABLE12_SWEEP=smoke` shrinks the ladder and the per-stream
//!   key-frame counts.
//! * `TABLE12_JSON=<path>` additionally writes the table as JSON
//!   (uploaded next to the table9/table10/table11 artifacts).

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::json::table_to_json;
use st_bench::tables::table12_capacity;
use st_net::Poller;
use std::time::Duration;

fn capacity_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table12_capacity");
    group.sample_size(10);

    // Poller wake-up round trip: the dispatch overhead every reactor event
    // pays before any real work happens. Measured at 1 and 256 registered
    // tokens — the reactor's promise is that mostly-idle registrations are
    // (near) free.
    for &tokens in &[1usize, 256] {
        group.bench_function(format!("poller_wake_roundtrip_{tokens}tokens"), |bench| {
            let poller = Poller::new();
            let wakers: Vec<_> = (0..tokens).map(|t| poller.waker(t)).collect();
            bench.iter(|| {
                wakers[tokens / 2].wake();
                let ready = poller.poll(Duration::from_millis(10));
                assert!(ready.contains(tokens / 2));
                ready.tokens().len()
            })
        });
    }
    group.finish();

    // The capacity ladder itself: partitioned vs pooled at a fixed thread
    // count. Thread and target choices match the committed
    // BENCH_table12.json numbers.
    let smoke = std::env::var("TABLE12_SWEEP").as_deref() == Ok("smoke");
    let (ladder, threads, key_frames, target_ms): (&[usize], usize, usize, f64) = if smoke {
        (&[2, 4], 2, 3, 25.0)
    } else {
        (&[8, 16, 32, 64], 8, 12, 25.0)
    };
    let table = table12_capacity(ladder, threads, key_frames, target_ms);
    println!("\n{}", table.text);

    // The point of the reactor: at the same thread count and the same
    // wait target, the pooled topology must carry strictly more streams.
    // (The full ladder asserts the 4x headline; smoke only sanity-checks
    // that pooling is not worse on its tiny ladder.)
    let capacity = |column: &str| -> usize {
        table
            .column(column)
            .expect("wait column")
            .iter()
            .zip(ladder)
            .filter(|(wait, _)| **wait <= target_ms)
            .map(|(_, streams)| *streams)
            .max()
            .unwrap_or(0)
    };
    let per_shard = capacity("per-shard p99 wait ms");
    let reactor = capacity("reactor p99 wait ms");
    if smoke {
        if reactor < per_shard {
            eprintln!(
                "reactor capacity regressed below thread-per-shard on the smoke ladder: \
                 {reactor} < {per_shard} streams at p99 wait <= {target_ms} ms"
            );
            std::process::exit(1);
        }
    } else if reactor < 4 * per_shard.max(1) {
        eprintln!(
            "reactor capacity fell below the 4x headline: {reactor} streams vs \
             thread-per-shard {per_shard} at p99 wait <= {target_ms} ms"
        );
        std::process::exit(1);
    }

    if let Ok(path) = std::env::var("TABLE12_JSON") {
        let json = table_to_json(&table);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote JSON artifact: {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

criterion_group!(benches, capacity_benchmark);
criterion_main!(benches);
