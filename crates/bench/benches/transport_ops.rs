//! Transport micro-benchmarks: the versioned wire codec and the
//! shared-memory ring.
//!
//! Criterion measures the two hot paths (framing a 64 KiB key frame both
//! ways, and a chunk's uncontended trip through the ring); the printed table
//! additionally reports bytes, µs/op, and MB/s for every message type plus
//! an N-producer contention sweep, in the style of IPC benchmark suites.
//!
//! Knobs (for CI's tiny smoke run):
//!
//! * `TRANSPORT_SWEEP=smoke` shrinks the producer sweep and iteration
//!   counts.
//! * `TRANSPORT_JSON=<path>` additionally writes the table as JSON
//!   (uploaded next to the other reproduce artifacts).

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::json::table_to_json;
use st_bench::transport::table_transport;
use st_net::{ClientToServer, Payload, ShmConfig};
use std::hint::black_box;
use std::time::Duration;

fn transport_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("transport_ops");
    group.sample_size(20);

    let payload: Vec<u8> = (0..64 * 1024).map(|i| (i % 255) as u8).collect();
    let key_frame = ClientToServer::KeyFrame {
        frame_index: 42,
        payload: Payload::with_data(bytes::Bytes::from(payload)),
    };
    group.bench_function("encode_key_frame_64k", |bench| {
        bench.iter(|| st_net::wire::encode_frame(black_box(&key_frame)))
    });
    let encoded = st_net::wire::encode_frame(&key_frame);
    group.bench_function("decode_key_frame_64k", |bench| {
        bench.iter(|| st_net::wire::decode_frame::<ClientToServer>(black_box(&encoded)).unwrap())
    });

    if cfg!(all(target_os = "linux", target_arch = "x86_64")) {
        let path = st_net::shm::default_segment_path(&format!(
            "transport-ops-bench-{}",
            std::process::id()
        ));
        let (producer, consumer) =
            st_net::shm::ring_channel(&path, ShmConfig::default()).expect("bench ring segment");
        let chunk = vec![0xA5u8; 4 * 1024];
        let mut out = Vec::with_capacity(chunk.len());
        group.bench_function("ring_push_pop_4k", |bench| {
            bench.iter(|| {
                assert!(producer.push_timeout(black_box(&chunk), Duration::from_secs(5)));
                out.clear();
                assert!(consumer.try_pop(&mut out));
                out.len()
            })
        });
        drop((producer, consumer));
        let _ = std::fs::remove_file(&path);
    }
    group.finish();

    let smoke = std::env::var("TRANSPORT_SWEEP").as_deref() == Ok("smoke");
    let (sweep, per_producer, iters): (&[usize], usize, usize) = if smoke {
        (&[1, 2], 256, 200)
    } else {
        (&[1, 2, 4], 2048, 2000)
    };
    let table = table_transport(sweep, per_producer, iters);
    println!("\n{}", table.text);

    if let Ok(path) = std::env::var("TRANSPORT_JSON") {
        let json = table_to_json(&table);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote JSON artifact: {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

criterion_group!(benches, transport_benchmark);
criterion_main!(benches);
