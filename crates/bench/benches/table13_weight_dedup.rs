//! Table 13 (new in this reproduction, no paper counterpart) — weight
//! deduplication under multi-stream serving: a ladder of stream counts, each
//! rung run twice against a live pool — content-keyed weight store
//! (copy-on-write sessions + delta-encoded updates) vs the pre-store layout
//! (deep-cloned sessions + full-snapshot updates). The table reports
//! measured resident weight bytes and update wire bytes per rung beside the
//! analytic `DedupModel` laws (`template + S × trainable` vs
//! `S × template`).
//!
//! Criterion additionally measures the store's own hot-path costs: interning
//! an already-resident checkpoint (the dedup fast path) and computing one
//! delta against a synced digest (the per-update encode cost).
//!
//! Knobs (for CI's tiny smoke sweep):
//!
//! * `TABLE13_SWEEP=smoke` shrinks the ladder and the per-stream frame
//!   counts.
//! * `TABLE13_JSON=<path>` additionally writes the table as JSON.

use criterion::{criterion_group, criterion_main, Criterion};
use st_bench::json::table_to_json;
use st_bench::tables::table13_weight_dedup;
use st_nn::delta::{CheckpointDigest, WeightDelta};
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::store::WeightStore;
use st_nn::student::{StudentConfig, StudentNet};

fn weight_dedup_benchmark(c: &mut Criterion) {
    let mut group = c.benchmark_group("table13_weight_dedup");
    group.sample_size(10);

    // Store fast paths: re-interning a resident checkpoint must be hash +
    // refcount work only (no copies), and a no-change delta must reduce to
    // hashing the update's chunks.
    let mut student = StudentNet::new(StudentConfig::tiny()).expect("tiny student");
    let snapshot = WeightSnapshot::capture(&mut student, SnapshotScope::Full);
    group.bench_function("intern_resident_checkpoint", |bench| {
        let store = WeightStore::new();
        let (pinned, _) = store.intern(&snapshot);
        bench.iter(|| {
            let (reref, stats) = store.intern(&snapshot);
            assert_eq!(stats.new_bytes, 0);
            store.release(reref);
            stats.shared_bytes
        });
        store.release(pinned);
    });
    group.bench_function("delta_compute_synced", |bench| {
        let digest = CheckpointDigest::of(&snapshot);
        bench.iter(|| {
            let delta = WeightDelta::compute(&snapshot, &digest);
            assert_eq!(delta.entry_count(), 0);
            delta.base()
        });
    });
    group.finish();

    let smoke = std::env::var("TABLE13_SWEEP").as_deref() == Ok("smoke");
    // Streams need enough frames for some key frames to early-stop at an
    // unchanged checkpoint (the converged-update discount): too-short
    // streams train on every key frame and the delta's envelope overhead
    // would wash out its savings.
    let (ladder, frames_per_stream): (&[usize], usize) = if smoke {
        (&[2, 4], 20)
    } else {
        (&[2, 4, 8, 16], 32)
    };
    let table = table13_weight_dedup(ladder, frames_per_stream);
    println!("\n{}", table.text);

    let column = |name: &str| table.column(name).expect("table13 column");
    let cow = column("cow resident KiB");
    let clone = column("clone resident KiB");
    let delta_wire = column("delta wire KiB");
    let full_wire = column("full-equiv wire KiB");
    let rejections = column("delta rejections");

    for (i, &streams) in ladder.iter().enumerate() {
        // Residency, per rung: the store must hold fewer resident bytes than
        // deep cloning (every rung has ≥ 2 streams, so the shared template
        // amortizes).
        if cow[i] >= clone[i] {
            eprintln!(
                "weight store residency regressed at {streams} streams: \
                 cow {} KiB >= clone {} KiB",
                cow[i], clone[i]
            );
            std::process::exit(1);
        }
        // In-spec runs never reject a delta: the server only sends one when
        // the stream's track is synced.
        if rejections[i] != 0.0 {
            eprintln!(
                "clients rejected {} deltas at {streams} streams",
                rejections[i]
            );
            std::process::exit(1);
        }
    }
    // Wire bytes, across the sweep: the delta stream must cost strictly
    // fewer bytes than the same updates sent as full envelopes. Aggregated
    // over the ladder rather than per rung — the discount comes from key
    // frames that early-stop at an unchanged checkpoint, and a single tiny
    // rung may train on every one of its few key frames, leaving only the
    // delta's envelope overhead (a fraction of a KiB) on that row.
    let delta_total: f64 = delta_wire.iter().sum();
    let full_total: f64 = full_wire.iter().sum();
    if delta_total >= full_total {
        eprintln!(
            "delta encoding saved nothing across the sweep: \
             delta {delta_total} KiB >= full {full_total} KiB"
        );
        std::process::exit(1);
    }
    // Sublinear residency across the ladder: growing the population from
    // the first rung to the last must cost less than the proportional
    // (clone-law) growth, because only trainable stages are added.
    let first = ladder[0] as f64;
    let last = *ladder.last().expect("non-empty ladder") as f64;
    if last > first {
        let proportional = cow[0] * last / first;
        let measured = cow[ladder.len() - 1];
        if measured >= proportional {
            eprintln!(
                "cow residency is not sublinear: {measured} KiB at {last} streams vs \
                 proportional {proportional} KiB from {first} streams"
            );
            std::process::exit(1);
        }
    }

    if let Ok(path) = std::env::var("TABLE13_JSON") {
        let json = table_to_json(&table);
        match std::fs::write(&path, json) {
            Ok(()) => println!("wrote JSON artifact: {path}"),
            Err(e) => {
                eprintln!("failed to write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

criterion_group!(benches, weight_dedup_benchmark);
criterion_main!(benches);
