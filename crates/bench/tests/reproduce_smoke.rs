//! End-to-end smoke test of the `reproduce` binary: run it on the smallest
//! workload and check it exits cleanly with the expected table output.

use std::process::Command;

#[test]
fn reproduce_binary_runs_end_to_end_on_a_tiny_workload() {
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["smoke", "table4"])
        .output()
        .expect("reproduce binary should spawn");
    assert!(
        output.status.success(),
        "reproduce exited with {:?}\nstderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("Table 4: data transmitted on each key frame"),
        "missing table header in output:\n{stdout}"
    );
    assert!(
        stdout.contains("To Server"),
        "missing table rows:\n{stdout}"
    );
    assert!(
        stdout.contains("total wall time"),
        "missing completion footer:\n{stdout}"
    );
}

#[test]
fn reproduce_binary_rejects_nothing_and_defaults_sanely() {
    // An unknown target simply produces no tables but must still exit 0 with
    // the harness banner (argument parsing is permissive by design).
    let output = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .args(["smoke", "no_such_table"])
        .output()
        .expect("reproduce binary should spawn");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("ShadowTutor reproduction harness"));
}
