//! End-to-end two-process test: the `reproduce` binary's hidden
//! `shm-client` role in a real child process, this test process hosting the
//! server pool, a file-backed shared-memory ring as the only link.
//!
//! This is the cross-process counterpart of the in-process bridge test in
//! `shadowtutor::runtime::shm_live` — here the client really is another
//! address space, so every assertion below is about bytes the versioned
//! wire codec produced and moved.

#![cfg(all(target_os = "linux", target_arch = "x86_64"))]

use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::report::ExperimentRecord;
use shadowtutor::runtime::shm_live::host_stream_over_shm;
use shadowtutor::serve::PoolConfig;
use st_bench::shm_demo::{demo_frames, demo_params, naive_wire_bytes};
use st_bench::ExperimentScale;
use st_net::ShmConfig;
use st_nn::student::{StudentConfig, StudentNet};
use st_teacher::OracleTeacher;
use std::process::Command;

#[test]
fn two_process_session_conserves_bytes_and_beats_naive() {
    let (frame_count, seed) = demo_params(ExperimentScale::Smoke);
    let frames = demo_frames(frame_count, seed);
    let pid = std::process::id();
    let segment = st_net::shm::default_segment_path(&format!("st-e2e-two-process-{pid}"));
    let record_out = std::env::temp_dir().join(format!("st-e2e-record-{pid}.bin"));

    // The real client binary, in its own process, over the real segment.
    let mut child = Command::new(env!("CARGO_BIN_EXE_reproduce"))
        .arg("shm-client")
        .arg(&segment)
        .arg(&record_out)
        .arg(frame_count.to_string())
        .arg(seed.to_string())
        .spawn()
        .expect("spawn shm client process");

    let host = host_stream_over_shm(
        ShadowTutorConfig::paper(),
        PoolConfig::with_shards(1),
        StudentNet::new(StudentConfig::tiny()).expect("student init"),
        0.013,
        |_| OracleTeacher::perfect(7),
        0,
        &frames,
        &segment,
        ShmConfig::default(),
    )
    .expect("host side of the shm session");
    let status = child.wait().expect("wait for shm client process");
    assert!(status.success(), "client process failed: {status}");

    let record_bytes = std::fs::read(&record_out).expect("read child record");
    let _ = std::fs::remove_file(&record_out);
    let record: ExperimentRecord =
        st_net::wire::decode_frame(&record_bytes).expect("decode child record");

    // The child processed the whole stream it derived from the shared spec.
    assert_eq!(record.frames, frames.len());
    assert!(host.pool.total_key_frames() > 0, "no key frames served");
    assert!(
        host.pool.total_key_frames() >= record.key_frames.len(),
        "pool served fewer key frames than the client applied"
    );

    // Byte conservation across the process boundary: what the child's
    // endpoint counted (framed messages), plus the ring's 4-byte stream
    // prefix per message, is exactly what the host's ring counters saw.
    assert!(record.uplink_bytes > 0 && record.downlink_bytes > 0);
    assert_eq!(
        host.wire_bytes_up,
        record.uplink_bytes + 4 * host.messages_up,
        "uplink byte conservation"
    );
    assert_eq!(
        host.wire_bytes_down,
        record.downlink_bytes + 4 * host.messages_down,
        "downlink byte conservation"
    );
    // The pool's own wire meter saw the bridged traffic too.
    assert!(host.pool.wire_bytes_up > 0);
    assert!(host.pool.wire_bytes_down > 0);

    // The paper's traffic claim, on measured wire bytes: key-frame
    // offloading moved strictly less than naive full-frame offloading would.
    let (naive_up, naive_down) = naive_wire_bytes(&frames);
    assert!(
        record.uplink_bytes + record.downlink_bytes < naive_up + naive_down,
        "key-frame wire total {} B not below naive wire total {} B",
        record.uplink_bytes + record.downlink_bytes,
        naive_up + naive_down
    );

    let _ = std::fs::remove_file(&segment);
}
