//! Property-based tests of the video generator's guarantees: determinism,
//! valid labels, temporal coherence, and resampling equivalence.

use proptest::prelude::*;
use st_video::dataset::{category_videos, Resolution};
use st_video::resample::Resampler;
use st_video::{Frame, VideoCategory, VideoConfig, VideoGenerator, NUM_CLASSES};

fn any_category() -> impl Strategy<Value = VideoCategory> {
    (0usize..7).prop_map(|i| VideoCategory::paper_categories()[i])
}

fn label_diff(a: &Frame, b: &Frame) -> usize {
    a.ground_truth
        .iter()
        .zip(b.ground_truth.iter())
        .filter(|(x, y)| x != y)
        .count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every frame has valid labels, unit-range pixels, and matching sizes.
    #[test]
    fn frames_are_always_well_formed(category in any_category(), seed in any::<u64>()) {
        let config = VideoConfig::for_category(category, 32, 24, seed);
        let mut generator = VideoGenerator::new(config).unwrap();
        for _ in 0..6 {
            let frame = generator.next_frame();
            prop_assert_eq!(frame.ground_truth.len(), 32 * 24);
            prop_assert_eq!(frame.image.shape().dims(), &[1, 3, 24, 32]);
            prop_assert!(frame.ground_truth.iter().all(|&c| c < NUM_CLASSES));
            prop_assert!(frame.image.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
            prop_assert!(frame.image.all_finite());
        }
    }

    /// The same seed reproduces the identical stream; different seeds differ.
    #[test]
    fn streams_are_deterministic_per_seed(category in any_category(), seed in any::<u64>()) {
        let config = VideoConfig::for_category(category, 32, 24, seed);
        let a: Vec<Frame> = VideoGenerator::new(config).unwrap().take_frames(4);
        let b: Vec<Frame> = VideoGenerator::new(config).unwrap().take_frames(4);
        for (fa, fb) in a.iter().zip(b.iter()) {
            prop_assert_eq!(&fa.image, &fb.image);
            prop_assert_eq!(&fa.ground_truth, &fb.ground_truth);
        }
    }

    /// Adjacent frames never differ by more than a bounded fraction of the
    /// pixels away from scene changes — the temporal-coherence property the
    /// whole system exploits.
    #[test]
    fn adjacent_frames_are_coherent(category in any_category(), seed in any::<u64>()) {
        let mut config = VideoConfig::for_category(category, 32, 24, seed);
        config.scene_change_interval = 0; // isolate smooth motion
        let frames: Vec<Frame> = VideoGenerator::new(config).unwrap().take_frames(5);
        for pair in frames.windows(2) {
            let changed = label_diff(&pair[0], &pair[1]);
            prop_assert!(
                (changed as f64) < 0.35 * pair[0].ground_truth.len() as f64,
                "adjacent frames differ on {changed} pixels"
            );
        }
    }

    /// Resampling at stride k yields exactly the frames the native stream
    /// produces at indices 0, k, 2k, ...
    #[test]
    fn resampling_matches_decimation(category in any_category(), seed in any::<u64>(), k in 2usize..5) {
        let config = VideoConfig::for_category(category, 32, 24, seed);
        let native: Vec<Frame> = VideoGenerator::new(config).unwrap().take_frames(2 * k + 1);
        let resampled: Vec<Frame> = Resampler::new(VideoGenerator::new(config).unwrap(), k)
            .unwrap()
            .take(3)
            .collect();
        for (i, frame) in resampled.iter().enumerate() {
            prop_assert_eq!(&frame.image, &native[i * k].image);
            prop_assert_eq!(frame.index, i);
        }
    }
}

#[test]
fn category_dataset_is_stable_across_calls() {
    let a = category_videos(Resolution::Tiny, 5);
    let b = category_videos(Resolution::Tiny, 5);
    assert_eq!(a, b);
    assert_eq!(a.len(), 7);
}
