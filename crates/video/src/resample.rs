//! Frame-rate resampling.
//!
//! Section 6.5 of the paper re-samples every video to 7 FPS (keeping every
//! fourth frame of a 28 FPS stream) to stretch the temporal distance between
//! adjacent frames and test whether ShadowTutor still works when coherence is
//! weaker. [`Resampler`] wraps any frame iterator and performs exactly that
//! stride-based decimation, renumbering frames so downstream consumers see a
//! contiguous stream.

use crate::generator::Frame;
use crate::Result;
use st_tensor::TensorError;

/// Stride-decimating frame resampler.
#[derive(Debug, Clone)]
pub struct Resampler<I> {
    inner: I,
    keep_every: usize,
    emitted: usize,
}

impl<I: Iterator<Item = Frame>> Resampler<I> {
    /// Keep one frame out of every `keep_every` source frames.
    pub fn new(inner: I, keep_every: usize) -> Result<Self> {
        if keep_every == 0 {
            return Err(TensorError::InvalidArgument(
                "keep_every must be non-zero".into(),
            ));
        }
        Ok(Resampler {
            inner,
            keep_every,
            emitted: 0,
        })
    }

    /// Build a resampler that converts a `source_fps` stream to approximately
    /// `target_fps` (e.g. 28 → 7 keeps every 4th frame, as in §6.5).
    pub fn to_fps(inner: I, source_fps: f64, target_fps: f64) -> Result<Self> {
        if target_fps <= 0.0 || source_fps <= 0.0 {
            return Err(TensorError::InvalidArgument("fps must be positive".into()));
        }
        let keep_every = (source_fps / target_fps).round().max(1.0) as usize;
        Resampler::new(inner, keep_every)
    }

    /// The decimation stride.
    pub fn stride(&self) -> usize {
        self.keep_every
    }
}

impl<I: Iterator<Item = Frame>> Iterator for Resampler<I> {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        // Keep the first of every `keep_every` frames.
        let mut frame = self.inner.next()?;
        for _ in 1..self.keep_every {
            // Discard the in-between frames (they are still generated so the
            // world advances by the same amount of "time").
            if self.inner.next().is_none() {
                break;
            }
        }
        frame.index = self.emitted;
        self.emitted += 1;
        Some(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{VideoConfig, VideoGenerator};
    use crate::scene::{CameraMotion, SceneKind, VideoCategory};

    fn gen(seed: u64) -> VideoGenerator {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        };
        VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap()
    }

    #[test]
    fn keeps_every_kth_frame() {
        let source: Vec<Frame> = gen(1).take_frames(12);
        let resampled: Vec<Frame> = Resampler::new(gen(1), 4).unwrap().take(3).collect();
        assert_eq!(resampled.len(), 3);
        // Resampled frame i equals source frame 4*i (images identical).
        for (i, f) in resampled.iter().enumerate() {
            assert_eq!(f.index, i, "renumbered index");
            assert_eq!(f.image, source[i * 4].image);
        }
    }

    #[test]
    fn to_fps_computes_stride() {
        let r = Resampler::to_fps(gen(2), 28.0, 7.0).unwrap();
        assert_eq!(r.stride(), 4);
        let r2 = Resampler::to_fps(gen(2), 25.0, 25.0).unwrap();
        assert_eq!(r2.stride(), 1);
        assert!(Resampler::to_fps(gen(2), 28.0, 0.0).is_err());
    }

    #[test]
    fn rejects_zero_stride() {
        assert!(Resampler::new(gen(3), 0).is_err());
    }

    #[test]
    fn resampled_stream_is_less_coherent() {
        let diff = |a: &Frame, b: &Frame| {
            a.ground_truth
                .iter()
                .zip(b.ground_truth.iter())
                .filter(|(x, y)| x != y)
                .count()
        };
        let native: Vec<Frame> = gen(4).take_frames(2);
        let resampled: Vec<Frame> = Resampler::new(gen(4), 4).unwrap().take(2).collect();
        assert!(diff(&resampled[0], &resampled[1]) >= diff(&native[0], &native[1]));
    }
}
