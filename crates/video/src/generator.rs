//! The procedural video generator.
//!
//! A [`VideoGenerator`] produces a strictly temporally ordered sequence of
//! [`Frame`]s: an RGB image tensor plus the per-pixel ground-truth class map
//! used by the oracle teacher. Temporal coherence comes from objects moving
//! smoothly with bounded velocity and the background evolving slowly; it is
//! broken (deliberately) at scene-change events, whose frequency is a scene
//! property — that is what drives the adaptive key-frame scheduler in the
//! experiments.

use crate::classes::SegClass;
use crate::object::MovingObject;
use crate::scene::{SceneKind, VideoCategory};
use crate::Result;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use st_tensor::{Shape, Tensor, TensorError};

/// One video frame: the RGB image and its ground-truth segmentation.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index in the stream (0-based, strictly increasing).
    pub index: usize,
    /// RGB image, `(1, 3, H, W)`, values in `[0, 1]`.
    pub image: Tensor,
    /// Per-pixel ground-truth class indices, length `H*W`.
    pub ground_truth: Vec<usize>,
    /// Height in pixels.
    pub height: usize,
    /// Width in pixels.
    pub width: usize,
}

impl Frame {
    /// Raw (uncompressed) byte size of the frame if shipped as 8-bit RGB,
    /// which is how the naive-offloading baseline and the uplink payload of
    /// Table 4 are sized.
    pub fn raw_rgb_bytes(&self) -> usize {
        3 * self.height * self.width
    }

    /// Quantize the `[0, 1]` float image to the 8-bit RGB bytes a camera
    /// would ship (the uplink representation of Table 4).
    pub fn quantized_rgb(&self) -> Vec<u8> {
        self.image
            .data()
            .iter()
            .map(|v| (v.clamp(0.0, 1.0) * 255.0) as u8)
            .collect()
    }
}

/// The cross-process wire encoding of a frame: what a key-frame upload
/// physically carries when client and pool are separate OS processes.
///
/// Layout: frame index, height, width (u64 LE each), then the 8-bit
/// quantized RGB pixels (`u32` length + `3·H·W` bytes — deliberately lossy,
/// the same video representation the live uplink models), then the
/// per-pixel ground-truth class map (`u32` length + `H·W` bytes, one class
/// id per pixel — the oracle teacher's stand-in for what a real server-side
/// teacher would infer from the pixels). Decoding reconstructs the float
/// image as `byte / 255`.
impl st_net::Wire for Frame {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.index.encode_into(out);
        self.height.encode_into(out);
        self.width.encode_into(out);
        let rgb = self.quantized_rgb();
        (rgb.len() as u32).encode_into(out);
        out.extend_from_slice(&rgb);
        (self.ground_truth.len() as u32).encode_into(out);
        out.extend(self.ground_truth.iter().map(|&c| c as u8));
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, st_net::WireError> {
        let index = usize::decode(input)?;
        let height = usize::decode(input)?;
        let width = usize::decode(input)?;
        let pixels = height
            .checked_mul(width)
            .filter(|&p| p > 0 && p <= (1 << 26))
            .ok_or(st_net::WireError::InvalidValue {
                what: "frame dimensions out of range",
            })?;
        let rgb_len = u32::decode(input)? as usize;
        if rgb_len != 3 * pixels {
            return Err(st_net::WireError::InvalidValue {
                what: "RGB byte count does not match frame dimensions",
            });
        }
        if input.len() < rgb_len {
            return Err(st_net::WireError::Truncated {
                needed: rgb_len,
                available: input.len(),
            });
        }
        let (rgb, rest) = input.split_at(rgb_len);
        *input = rest;
        let values: Vec<f32> = rgb.iter().map(|&b| b as f32 / 255.0).collect();
        let image = Tensor::from_vec(Shape::new(&[1, 3, height, width]), values).map_err(|_| {
            st_net::WireError::InvalidValue {
                what: "frame image tensor rejected",
            }
        })?;
        let gt_len = u32::decode(input)? as usize;
        if gt_len != pixels {
            return Err(st_net::WireError::InvalidValue {
                what: "ground-truth length does not match frame dimensions",
            });
        }
        if input.len() < gt_len {
            return Err(st_net::WireError::Truncated {
                needed: gt_len,
                available: input.len(),
            });
        }
        let (gt, rest) = input.split_at(gt_len);
        *input = rest;
        let mut ground_truth = Vec::with_capacity(pixels);
        for &b in gt {
            let class = b as usize;
            if class >= crate::classes::NUM_CLASSES {
                return Err(st_net::WireError::InvalidValue {
                    what: "ground-truth class id out of range",
                });
            }
            ground_truth.push(class);
        }
        Ok(Frame {
            index,
            image,
            ground_truth,
            height,
            width,
        })
    }

    fn encoded_len(&self) -> usize {
        3 * 8 + 4 + self.raw_rgb_bytes() + 4 + self.height * self.width
    }
}

/// Configuration of a generated video stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Frame width in pixels (must be divisible by 4 for the student).
    pub width: usize,
    /// Frame height in pixels (must be divisible by 4 for the student).
    pub height: usize,
    /// Frames per second of the source video (25–30 in the paper).
    pub fps: f64,
    /// Camera × scene category.
    pub category: VideoCategory,
    /// Number of simultaneously visible objects.
    pub object_count: usize,
    /// Object speed in pixels per frame.
    pub object_speed: f32,
    /// Mean frames between scene-change events (0 disables scene changes).
    pub scene_change_interval: usize,
    /// RNG seed (the whole stream is deterministic given the config).
    pub seed: u64,
}

impl VideoConfig {
    /// A config for a category at the given resolution, using the scene's
    /// typical dynamics scaled to the resolution.
    pub fn for_category(category: VideoCategory, width: usize, height: usize, seed: u64) -> Self {
        let scale = width as f32 / 100.0;
        VideoConfig {
            width,
            height,
            fps: 28.0,
            category,
            object_count: category.scene.typical_object_count(),
            object_speed: category.scene.typical_speed() * scale,
            scene_change_interval: category.scene.scene_change_interval(),
            seed,
        }
    }

    /// Validate resolution constraints.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.height == 0 {
            return Err(TensorError::InvalidArgument(
                "frame size must be non-zero".into(),
            ));
        }
        if !self.width.is_multiple_of(4) || !self.height.is_multiple_of(4) {
            return Err(TensorError::InvalidArgument(format!(
                "frame size must be divisible by 4, got {}x{}",
                self.width, self.height
            )));
        }
        if self.fps <= 0.0 {
            return Err(TensorError::InvalidArgument("fps must be positive".into()));
        }
        Ok(())
    }
}

/// A deterministic, infinite video stream.
#[derive(Debug)]
pub struct VideoGenerator {
    /// The configuration this stream was built from.
    pub config: VideoConfig,
    rng: StdRng,
    objects: Vec<MovingObject>,
    cam_x: f32,
    cam_y: f32,
    cam_drift_angle: f32,
    background_phase: f32,
    frame_index: usize,
}

impl VideoGenerator {
    /// Create a generator for a configuration.
    pub fn new(config: VideoConfig) -> Result<Self> {
        config.validate()?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let classes = config.category.scene.object_classes();
        let objects = (0..config.object_count)
            .map(|i| {
                let class = classes[i % classes.len()];
                MovingObject::spawn(
                    class,
                    config.width,
                    config.height,
                    config.object_speed,
                    &mut rng,
                )
            })
            .collect();
        let cam_drift_angle = rng.random::<f32>() * std::f32::consts::TAU;
        Ok(VideoGenerator {
            config,
            rng,
            objects,
            cam_x: 0.0,
            cam_y: 0.0,
            cam_drift_angle,
            background_phase: 0.0,
            frame_index: 0,
        })
    }

    /// Convenience: a generator for a paper category at a given resolution.
    pub fn for_category(
        category: VideoCategory,
        width: usize,
        height: usize,
        seed: u64,
    ) -> Result<Self> {
        VideoGenerator::new(VideoConfig::for_category(category, width, height, seed))
    }

    /// Background colour/texture at a pixel for the current state.
    fn background_pixel(&self, x: f32, y: f32) -> [f32; 3] {
        let base = SegClass::Background.base_color();
        let scene_tint: [f32; 3] = match self.config.category.scene {
            SceneKind::Animals => [0.05, 0.12, 0.02],
            SceneKind::People => [0.08, 0.06, 0.10],
            SceneKind::Street => [0.02, 0.02, 0.05],
        };
        // Slowly varying low-frequency pattern; the camera offset shifts it so
        // a moving camera changes background appearance, which the student
        // must relearn at key frames.
        let gx = (x + self.cam_x) * 0.07;
        let gy = (y + self.cam_y) * 0.05;
        let pattern = 0.5
            + 0.25 * (gx + self.background_phase).sin() * (gy - self.background_phase * 0.7).cos();
        [
            (base[0] + scene_tint[0]) * pattern,
            (base[1] + scene_tint[1]) * pattern,
            (base[2] + scene_tint[2]) * pattern,
        ]
    }

    /// Trigger a scene change: most objects re-spawn and the background phase
    /// jumps, breaking temporal coherence.
    fn scene_change(&mut self) {
        let classes = self.config.category.scene.object_classes();
        let n = self.objects.len();
        for (i, obj) in self.objects.iter_mut().enumerate() {
            // Re-spawn roughly two-thirds of the objects.
            if i * 3 < n * 2 {
                let class = classes[(i + self.frame_index) % classes.len()];
                *obj = MovingObject::spawn(
                    class,
                    self.config.width,
                    self.config.height,
                    self.config.object_speed,
                    &mut self.rng,
                );
            }
        }
        self.background_phase += std::f32::consts::PI * (0.5 + self.rng.random::<f32>());
        self.cam_drift_angle = self.rng.random::<f32>() * std::f32::consts::TAU;
    }

    /// Advance the world by one frame.
    fn step_world(&mut self) {
        let (w, h) = (self.config.width, self.config.height);
        for obj in &mut self.objects {
            obj.step(w, h);
        }
        let cam = self.config.category.camera;
        let scale = w as f32 / 100.0;
        let drift = cam.drift_per_frame() * scale;
        self.cam_x += drift * self.cam_drift_angle.cos();
        self.cam_y += drift * self.cam_drift_angle.sin();
        let jitter = cam.jitter() * scale;
        if jitter > 0.0 {
            self.cam_x += jitter * (self.rng.random::<f32>() - 0.5);
            self.cam_y += jitter * (self.rng.random::<f32>() - 0.5);
        }
        // Slowly rotate the drift direction so moving-camera videos pan around.
        self.cam_drift_angle += 0.01;
        self.background_phase += 0.02;
        if self.config.scene_change_interval > 0
            && self.frame_index > 0
            && self
                .frame_index
                .is_multiple_of(self.config.scene_change_interval)
        {
            self.scene_change();
        }
    }

    /// Render the current world state into a frame.
    fn render(&self) -> Frame {
        let (w, h) = (self.config.width, self.config.height);
        let plane = w * h;
        let mut image = Tensor::zeros(Shape::nchw(1, 3, h, w));
        let mut labels = vec![SegClass::Background.index(); plane];
        {
            let data = image.data_mut();
            // Background.
            for y in 0..h {
                for x in 0..w {
                    let px = self.background_pixel(x as f32, y as f32);
                    let idx = y * w + x;
                    data[idx] = px[0];
                    data[plane + idx] = px[1];
                    data[2 * plane + idx] = px[2];
                }
            }
            // Objects (later objects paint over earlier ones).
            for obj in &self.objects {
                let Some((x0, y0, x1, y1)) = obj.bbox(w, h, self.cam_x, self.cam_y) else {
                    continue;
                };
                let color = obj.class.base_color();
                for y in y0..=y1 {
                    for x in x0..=x1 {
                        if obj.covers(x as f32, y as f32, self.cam_x, self.cam_y) {
                            let t = obj.texture(x as f32, y as f32);
                            let idx = y * w + x;
                            data[idx] = (color[0] * (0.6 + 0.4 * t)).clamp(0.0, 1.0);
                            data[plane + idx] = (color[1] * (0.6 + 0.4 * t)).clamp(0.0, 1.0);
                            data[2 * plane + idx] = (color[2] * (0.6 + 0.4 * t)).clamp(0.0, 1.0);
                            labels[idx] = obj.class.index();
                        }
                    }
                }
            }
        }
        Frame {
            index: self.frame_index,
            image,
            ground_truth: labels,
            height: h,
            width: w,
        }
    }

    /// Produce the next frame.
    pub fn next_frame(&mut self) -> Frame {
        if self.frame_index > 0 {
            self.step_world();
        }
        let frame = self.render();
        self.frame_index += 1;
        frame
    }

    /// Collect the next `n` frames into a vector.
    pub fn take_frames(&mut self, n: usize) -> Vec<Frame> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

impl Iterator for VideoGenerator {
    type Item = Frame;

    fn next(&mut self) -> Option<Frame> {
        Some(self.next_frame())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{CameraMotion, SceneKind};

    fn category() -> VideoCategory {
        VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::Animals,
        }
    }

    fn small_config(seed: u64) -> VideoConfig {
        VideoConfig::for_category(category(), 32, 24, seed)
    }

    #[test]
    fn frames_have_consistent_shapes() {
        let mut gen = VideoGenerator::new(small_config(1)).unwrap();
        let f = gen.next_frame();
        assert_eq!(f.image.shape().dims(), &[1, 3, 24, 32]);
        assert_eq!(f.ground_truth.len(), 24 * 32);
        assert!(f.image.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        assert!(f.ground_truth.iter().all(|&c| c < crate::NUM_CLASSES));
        assert_eq!(f.raw_rgb_bytes(), 3 * 24 * 32);
    }

    #[test]
    fn stream_is_deterministic_for_a_seed() {
        let a: Vec<Frame> = VideoGenerator::new(small_config(7)).unwrap().take_frames(5);
        let b: Vec<Frame> = VideoGenerator::new(small_config(7)).unwrap().take_frames(5);
        for (fa, fb) in a.iter().zip(b.iter()) {
            assert_eq!(fa.image, fb.image);
            assert_eq!(fa.ground_truth, fb.ground_truth);
        }
        let c: Vec<Frame> = VideoGenerator::new(small_config(8)).unwrap().take_frames(5);
        assert_ne!(a[0].image, c[0].image);
    }

    #[test]
    fn frame_indices_increase() {
        let frames = VideoGenerator::new(small_config(2))
            .unwrap()
            .take_frames(10);
        for (i, f) in frames.iter().enumerate() {
            assert_eq!(f.index, i);
        }
    }

    #[test]
    fn contains_foreground_objects() {
        let mut gen = VideoGenerator::new(small_config(3)).unwrap();
        let f = gen.next_frame();
        let fg = f.ground_truth.iter().filter(|&&c| c != 0).count();
        assert!(fg > 0, "no foreground pixels rendered");
        // Scene is animals: no automobiles or persons.
        assert!(!f.ground_truth.contains(&SegClass::Automobile.index()));
        assert!(!f.ground_truth.contains(&SegClass::Person.index()));
    }

    #[test]
    fn consecutive_frames_are_temporally_coherent() {
        let mut gen = VideoGenerator::new(small_config(4)).unwrap();
        let f0 = gen.next_frame();
        let f1 = gen.next_frame();
        let changed = f0
            .ground_truth
            .iter()
            .zip(f1.ground_truth.iter())
            .filter(|(a, b)| a != b)
            .count();
        // Less than 20% of the labels change between adjacent frames.
        assert!(
            (changed as f64) < 0.2 * f0.ground_truth.len() as f64,
            "adjacent frames differ too much: {changed}"
        );
    }

    #[test]
    fn scene_change_breaks_coherence_more_than_normal_steps() {
        let mut config = small_config(5);
        config.scene_change_interval = 10;
        let mut gen = VideoGenerator::new(config).unwrap();
        let frames = gen.take_frames(15);
        let diff = |a: &Frame, b: &Frame| {
            a.ground_truth
                .iter()
                .zip(b.ground_truth.iter())
                .filter(|(x, y)| x != y)
                .count()
        };
        let normal = diff(&frames[4], &frames[5]);
        let at_change = diff(&frames[9], &frames[10]);
        assert!(
            at_change > normal,
            "scene change ({at_change}) should disturb more pixels than a normal step ({normal})"
        );
    }

    #[test]
    fn street_scenes_move_faster_than_people() {
        let street = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::Street,
        };
        let people = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        };
        let label_churn = |cat: VideoCategory| {
            let mut gen = VideoGenerator::for_category(cat, 32, 24, 9).unwrap();
            let frames = gen.take_frames(12);
            let mut churn = 0usize;
            for pair in frames.windows(2) {
                churn += pair[0]
                    .ground_truth
                    .iter()
                    .zip(pair[1].ground_truth.iter())
                    .filter(|(a, b)| a != b)
                    .count();
            }
            churn
        };
        assert!(label_churn(street) > label_churn(people));
    }

    #[test]
    fn config_validation() {
        let mut c = small_config(1);
        c.width = 30;
        assert!(VideoGenerator::new(c).is_err());
        let mut c2 = small_config(1);
        c2.fps = 0.0;
        assert!(VideoGenerator::new(c2).is_err());
        let mut c3 = small_config(1);
        c3.height = 0;
        assert!(VideoGenerator::new(c3).is_err());
    }

    #[test]
    fn frame_wire_round_trip_is_quantization_stable() {
        use st_net::Wire;
        let mut generator = VideoGenerator::new(small_config(11)).unwrap();
        let frame = generator.next_frame();
        let encoded = frame.encode();
        assert_eq!(encoded.len(), frame.encoded_len());
        let mut input = &encoded[..];
        let decoded = Frame::decode(&mut input).unwrap();
        assert!(input.is_empty());
        // The wire representation is 8-bit video: the first decode
        // quantizes, after which encode∘decode is the identity.
        assert_eq!(decoded.index, frame.index);
        assert_eq!(decoded.ground_truth, frame.ground_truth);
        assert_eq!(decoded.quantized_rgb(), frame.quantized_rgb());
        let re_encoded = decoded.encode();
        assert_eq!(re_encoded, encoded, "second generation is bit-identical");
        for (a, b) in decoded.image.data().iter().zip(frame.image.data()) {
            assert!((a - b).abs() <= 1.0 / 255.0 + 1e-6);
        }
    }

    #[test]
    fn frame_wire_rejects_corrupt_class_ids() {
        use st_net::Wire;
        let mut generator = VideoGenerator::new(small_config(12)).unwrap();
        let frame = generator.next_frame();
        let mut encoded = frame.encode();
        // Flip a ground-truth byte (the tail section) to an invalid class.
        let last = encoded.len() - 1;
        encoded[last] = 250;
        let mut input = &encoded[..];
        assert!(matches!(
            Frame::decode(&mut input),
            Err(st_net::WireError::InvalidValue { .. })
        ));
    }
}
