//! Camera-motion and scene-kind taxonomy: the seven LVS categories.

use crate::classes::SegClass;
use serde::{Deserialize, Serialize};

/// Camera motion model of a video.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CameraMotion {
    /// Static camera (e.g. a CCTV view). Only the objects move.
    Fixed,
    /// Smoothly panning camera: a slow global drift is added on top of the
    /// object motion.
    Moving,
    /// Head/chest-mounted camera: global drift plus per-frame jitter and
    /// occasional rapid re-orientation.
    Egocentric,
}

impl CameraMotion {
    /// Magnitude of the smooth global drift in pixels per frame, relative to
    /// a 100-pixel-wide frame (scaled by the generator).
    pub fn drift_per_frame(self) -> f32 {
        match self {
            CameraMotion::Fixed => 0.0,
            CameraMotion::Moving => 0.45,
            CameraMotion::Egocentric => 0.35,
        }
    }

    /// Per-frame random jitter magnitude (pixels, same relative scale).
    pub fn jitter(self) -> f32 {
        match self {
            CameraMotion::Fixed => 0.0,
            CameraMotion::Moving => 0.05,
            CameraMotion::Egocentric => 0.9,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            CameraMotion::Fixed => "fixed",
            CameraMotion::Moving => "moving",
            CameraMotion::Egocentric => "egocentric",
        }
    }
}

/// Main scenery of a video.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SceneKind {
    /// Wildlife footage: birds, dogs, horses, elephants, giraffes.
    Animals,
    /// People-centric footage: persons and bicycles.
    People,
    /// Street footage: automobiles, bicycles, persons — many fast objects.
    Street,
}

impl SceneKind {
    /// Which object classes appear in this scene kind.
    pub fn object_classes(self) -> &'static [SegClass] {
        match self {
            SceneKind::Animals => &[
                SegClass::Bird,
                SegClass::Dog,
                SegClass::Horse,
                SegClass::Elephant,
                SegClass::Giraffe,
            ],
            SceneKind::People => &[SegClass::Person, SegClass::Bicycle],
            SceneKind::Street => &[SegClass::Automobile, SegClass::Person, SegClass::Bicycle],
        }
    }

    /// Typical number of simultaneously visible objects.
    pub fn typical_object_count(self) -> usize {
        match self {
            SceneKind::Animals => 4,
            SceneKind::People => 3,
            SceneKind::Street => 7,
        }
    }

    /// Typical object speed in pixels per frame (relative to a 100-pixel
    /// frame width; the generator scales it). Street scenes move fastest,
    /// people slowest — this is what makes the street categories need the
    /// most key frames, as in the paper's Table 5.
    pub fn typical_speed(self) -> f32 {
        match self {
            SceneKind::Animals => 0.6,
            SceneKind::People => 0.3,
            SceneKind::Street => 1.4,
        }
    }

    /// Average number of frames between scene-content changes (an object
    /// leaving/entering or the background phase shifting abruptly).
    pub fn scene_change_interval(self) -> usize {
        match self {
            SceneKind::Animals => 220,
            SceneKind::People => 320,
            SceneKind::Street => 110,
        }
    }

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            SceneKind::Animals => "animals",
            SceneKind::People => "people",
            SceneKind::Street => "street",
        }
    }
}

/// A camera × scene category.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct VideoCategory {
    /// Camera motion model.
    pub camera: CameraMotion,
    /// Scene kind.
    pub scene: SceneKind,
}

impl VideoCategory {
    /// The seven categories evaluated in the paper (Tables 3, 5, 6, 7).
    pub fn paper_categories() -> Vec<VideoCategory> {
        vec![
            VideoCategory {
                camera: CameraMotion::Fixed,
                scene: SceneKind::Animals,
            },
            VideoCategory {
                camera: CameraMotion::Fixed,
                scene: SceneKind::People,
            },
            VideoCategory {
                camera: CameraMotion::Fixed,
                scene: SceneKind::Street,
            },
            VideoCategory {
                camera: CameraMotion::Moving,
                scene: SceneKind::Animals,
            },
            VideoCategory {
                camera: CameraMotion::Moving,
                scene: SceneKind::People,
            },
            VideoCategory {
                camera: CameraMotion::Moving,
                scene: SceneKind::Street,
            },
            VideoCategory {
                camera: CameraMotion::Egocentric,
                scene: SceneKind::People,
            },
        ]
    }

    /// Table-row label, e.g. `"fixed/animals"`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.camera.label(), self.scene.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_paper_categories() {
        let cats = VideoCategory::paper_categories();
        assert_eq!(cats.len(), 7);
        let labels: std::collections::HashSet<_> = cats.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 7);
        assert!(labels.contains("egocentric/people"));
        assert!(!labels.contains("egocentric/street"));
    }

    #[test]
    fn scene_object_classes_exclude_background() {
        for kind in [SceneKind::Animals, SceneKind::People, SceneKind::Street] {
            assert!(!kind.object_classes().is_empty());
            assert!(!kind.object_classes().contains(&SegClass::Background));
        }
    }

    #[test]
    fn street_is_the_most_dynamic() {
        assert!(SceneKind::Street.typical_speed() > SceneKind::Animals.typical_speed());
        assert!(SceneKind::Animals.typical_speed() > SceneKind::People.typical_speed());
        assert!(
            SceneKind::Street.scene_change_interval() < SceneKind::People.scene_change_interval()
        );
        assert!(
            SceneKind::Street.typical_object_count() > SceneKind::People.typical_object_count()
        );
    }

    #[test]
    fn camera_motion_ordering() {
        assert_eq!(CameraMotion::Fixed.drift_per_frame(), 0.0);
        assert!(CameraMotion::Egocentric.jitter() > CameraMotion::Moving.jitter());
        assert_eq!(CameraMotion::Moving.label(), "moving");
    }
}
