//! The segmentation classes of the LVS-like workload.
//!
//! The LVS dataset labels 8 actively moving object classes; everything else
//! is background. The class set is reproduced verbatim so the student head
//! has the same 9-way output as the paper's.

use serde::{Deserialize, Serialize};

/// Total number of classes including background.
pub const NUM_CLASSES: usize = 9;

/// A segmentation class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SegClass {
    /// Anything that is not one of the 8 object classes.
    Background,
    /// A person.
    Person,
    /// A bicycle.
    Bicycle,
    /// An automobile.
    Automobile,
    /// A bird.
    Bird,
    /// A dog.
    Dog,
    /// A horse.
    Horse,
    /// An elephant.
    Elephant,
    /// A giraffe.
    Giraffe,
}

impl SegClass {
    /// All classes in label-index order (background first).
    pub const ALL: [SegClass; NUM_CLASSES] = [
        SegClass::Background,
        SegClass::Person,
        SegClass::Bicycle,
        SegClass::Automobile,
        SegClass::Bird,
        SegClass::Dog,
        SegClass::Horse,
        SegClass::Elephant,
        SegClass::Giraffe,
    ];

    /// Label index of this class (background is 0).
    pub fn index(self) -> usize {
        SegClass::ALL
            .iter()
            .position(|&c| c == self)
            .expect("class in ALL")
    }

    /// Class for a label index.
    pub fn from_index(index: usize) -> Option<SegClass> {
        SegClass::ALL.get(index).copied()
    }

    /// A distinctive base colour (RGB in `[0,1]`) used when rasterising the
    /// class. Distinct colours are what make the workload learnable by a
    /// very small student, mirroring how real object textures differ.
    pub fn base_color(self) -> [f32; 3] {
        match self {
            SegClass::Background => [0.35, 0.45, 0.35],
            SegClass::Person => [0.85, 0.55, 0.45],
            SegClass::Bicycle => [0.20, 0.25, 0.80],
            SegClass::Automobile => [0.75, 0.15, 0.15],
            SegClass::Bird => [0.90, 0.90, 0.30],
            SegClass::Dog => [0.55, 0.35, 0.15],
            SegClass::Horse => [0.40, 0.25, 0.10],
            SegClass::Elephant => [0.55, 0.55, 0.60],
            SegClass::Giraffe => [0.85, 0.70, 0.25],
        }
    }

    /// Spatial texture frequency used when rasterising the class (higher
    /// values give finer patterns), giving each class a second learnable cue
    /// besides colour.
    pub fn texture_frequency(self) -> f32 {
        match self {
            SegClass::Background => 0.15,
            SegClass::Person => 0.9,
            SegClass::Bicycle => 2.2,
            SegClass::Automobile => 0.4,
            SegClass::Bird => 1.6,
            SegClass::Dog => 1.1,
            SegClass::Horse => 0.7,
            SegClass::Elephant => 0.3,
            SegClass::Giraffe => 1.9,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            SegClass::Background => "background",
            SegClass::Person => "person",
            SegClass::Bicycle => "bicycle",
            SegClass::Automobile => "automobile",
            SegClass::Bird => "bird",
            SegClass::Dog => "dog",
            SegClass::Horse => "horse",
            SegClass::Elephant => "elephant",
            SegClass::Giraffe => "giraffe",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_round_trip() {
        for (i, &c) in SegClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(SegClass::from_index(i), Some(c));
        }
        assert_eq!(SegClass::from_index(NUM_CLASSES), None);
        assert_eq!(SegClass::Background.index(), 0);
    }

    #[test]
    fn colors_are_distinct_and_valid() {
        for &a in &SegClass::ALL {
            let c = a.base_color();
            assert!(c.iter().all(|&x| (0.0..=1.0).contains(&x)));
            for &b in &SegClass::ALL {
                if a != b {
                    let ca = a.base_color();
                    let cb = b.base_color();
                    let dist: f32 = ca.iter().zip(cb.iter()).map(|(x, y)| (x - y).abs()).sum();
                    assert!(dist > 0.05, "{a:?} and {b:?} colours too close");
                }
            }
        }
    }

    #[test]
    fn names_unique() {
        let mut names: Vec<_> = SegClass::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), NUM_CLASSES);
    }
}
