//! Moving textured objects and their dynamics.

use crate::classes::SegClass;
use rand::rngs::StdRng;
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Geometric footprint of an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ObjectShape {
    /// Axis-aligned ellipse.
    Ellipse,
    /// Axis-aligned rectangle.
    Rectangle,
}

/// One moving foreground object.
///
/// Positions and sizes are in pixels (f32 so sub-pixel motion accumulates);
/// velocities are pixels per frame. Objects bounce off the frame borders so
/// they stay (mostly) visible, matching the LVS property that object classes
/// never leave the scene for long.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MovingObject {
    /// Segmentation class of the object.
    pub class: SegClass,
    /// Footprint geometry.
    pub shape: ObjectShape,
    /// Centre x position (pixels).
    pub x: f32,
    /// Centre y position (pixels).
    pub y: f32,
    /// Half-width (pixels).
    pub half_w: f32,
    /// Half-height (pixels).
    pub half_h: f32,
    /// Velocity in x (pixels/frame).
    pub vx: f32,
    /// Velocity in y (pixels/frame).
    pub vy: f32,
    /// Texture phase (advances over time so the object interior changes slowly).
    pub phase: f32,
}

impl MovingObject {
    /// Spawn a random object of `class` inside a `w × h` frame.
    pub fn spawn(class: SegClass, w: usize, h: usize, speed: f32, rng: &mut StdRng) -> Self {
        let shape = if rng.random::<f32>() < 0.5 {
            ObjectShape::Ellipse
        } else {
            ObjectShape::Rectangle
        };
        // Object size scales with the frame: between 8% and 22% of the width.
        let half_w = (0.04 + 0.07 * rng.random::<f32>()) * w as f32;
        let aspect = 0.6 + 0.8 * rng.random::<f32>();
        let half_h = (half_w * aspect).min(h as f32 * 0.4);
        let angle = rng.random::<f32>() * std::f32::consts::TAU;
        MovingObject {
            class,
            shape,
            x: rng.random::<f32>() * w as f32,
            y: rng.random::<f32>() * h as f32,
            half_w,
            half_h,
            vx: speed * angle.cos(),
            vy: speed * angle.sin(),
            phase: rng.random::<f32>() * std::f32::consts::TAU,
        }
    }

    /// Advance the object one frame, bouncing off the borders of a `w × h`
    /// frame and slowly evolving its texture phase.
    pub fn step(&mut self, w: usize, h: usize) {
        self.x += self.vx;
        self.y += self.vy;
        self.phase += 0.05;
        let (w, h) = (w as f32, h as f32);
        if self.x < 0.0 {
            self.x = -self.x;
            self.vx = self.vx.abs();
        }
        if self.x > w {
            self.x = 2.0 * w - self.x;
            self.vx = -self.vx.abs();
        }
        if self.y < 0.0 {
            self.y = -self.y;
            self.vy = self.vy.abs();
        }
        if self.y > h {
            self.y = 2.0 * h - self.y;
            self.vy = -self.vy.abs();
        }
    }

    /// Whether the object covers pixel `(px, py)` given a global camera
    /// offset `(cam_x, cam_y)`.
    pub fn covers(&self, px: f32, py: f32, cam_x: f32, cam_y: f32) -> bool {
        let dx = px - (self.x - cam_x);
        let dy = py - (self.y - cam_y);
        match self.shape {
            ObjectShape::Rectangle => dx.abs() <= self.half_w && dy.abs() <= self.half_h,
            ObjectShape::Ellipse => {
                let nx = dx / self.half_w.max(1e-3);
                let ny = dy / self.half_h.max(1e-3);
                nx * nx + ny * ny <= 1.0
            }
        }
    }

    /// Object texture intensity at pixel `(px, py)`: a class-specific striped
    /// pattern plus the object's own slowly-drifting phase.
    pub fn texture(&self, px: f32, py: f32) -> f32 {
        let freq = self.class.texture_frequency();
        (0.5 + 0.5 * ((px * 0.35 + py * 0.22) * freq + self.phase).sin()).clamp(0.0, 1.0)
    }

    /// Bounding box `(x0, y0, x1, y1)` clipped to a `w × h` frame under a
    /// camera offset; `None` when the object is entirely off-screen.
    pub fn bbox(
        &self,
        w: usize,
        h: usize,
        cam_x: f32,
        cam_y: f32,
    ) -> Option<(usize, usize, usize, usize)> {
        let x0 = (self.x - cam_x - self.half_w).floor().max(0.0);
        let y0 = (self.y - cam_y - self.half_h).floor().max(0.0);
        let x1 = (self.x - cam_x + self.half_w).ceil().min(w as f32 - 1.0);
        let y1 = (self.y - cam_y + self.half_h).ceil().min(h as f32 - 1.0);
        if x0 > x1 || y0 > y1 {
            None
        } else {
            Some((x0 as usize, y0 as usize, x1 as usize, y1 as usize))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn spawn_within_frame() {
        let mut r = rng();
        for _ in 0..20 {
            let o = MovingObject::spawn(SegClass::Dog, 64, 48, 1.0, &mut r);
            assert!(o.x >= 0.0 && o.x <= 64.0);
            assert!(o.y >= 0.0 && o.y <= 48.0);
            assert!(o.half_w > 0.0 && o.half_h > 0.0);
            let speed = (o.vx * o.vx + o.vy * o.vy).sqrt();
            assert!((speed - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn step_keeps_object_in_bounds() {
        let mut r = rng();
        let mut o = MovingObject::spawn(SegClass::Person, 64, 48, 3.0, &mut r);
        for _ in 0..1000 {
            o.step(64, 48);
            assert!(o.x >= -3.0 && o.x <= 67.0, "x out of bounds: {}", o.x);
            assert!(o.y >= -3.0 && o.y <= 51.0, "y out of bounds: {}", o.y);
        }
    }

    #[test]
    fn coverage_rectangle_and_ellipse() {
        let rect = MovingObject {
            class: SegClass::Automobile,
            shape: ObjectShape::Rectangle,
            x: 10.0,
            y: 10.0,
            half_w: 4.0,
            half_h: 2.0,
            vx: 0.0,
            vy: 0.0,
            phase: 0.0,
        };
        assert!(rect.covers(10.0, 10.0, 0.0, 0.0));
        assert!(rect.covers(13.9, 11.9, 0.0, 0.0));
        assert!(!rect.covers(15.0, 10.0, 0.0, 0.0));
        let ell = MovingObject {
            shape: ObjectShape::Ellipse,
            ..rect.clone()
        };
        assert!(ell.covers(10.0, 10.0, 0.0, 0.0));
        // Rectangle corner is outside the inscribed ellipse.
        assert!(!ell.covers(13.9, 11.9, 0.0, 0.0));
    }

    #[test]
    fn camera_offset_shifts_coverage() {
        let o = MovingObject {
            class: SegClass::Bird,
            shape: ObjectShape::Rectangle,
            x: 10.0,
            y: 10.0,
            half_w: 2.0,
            half_h: 2.0,
            vx: 0.0,
            vy: 0.0,
            phase: 0.0,
        };
        assert!(o.covers(10.0, 10.0, 0.0, 0.0));
        assert!(!o.covers(10.0, 10.0, 5.0, 0.0));
        assert!(o.covers(5.0, 10.0, 5.0, 0.0));
    }

    #[test]
    fn bbox_clips_to_frame() {
        let o = MovingObject {
            class: SegClass::Bird,
            shape: ObjectShape::Rectangle,
            x: 2.0,
            y: 2.0,
            half_w: 5.0,
            half_h: 5.0,
            vx: 0.0,
            vy: 0.0,
            phase: 0.0,
        };
        let (x0, y0, x1, y1) = o.bbox(64, 48, 0.0, 0.0).unwrap();
        assert_eq!((x0, y0), (0, 0));
        assert!(x1 <= 7 && y1 <= 7);
        // Fully off-screen object.
        assert!(o.bbox(64, 48, 100.0, 0.0).is_none());
    }

    #[test]
    fn texture_in_unit_range() {
        let mut r = rng();
        let o = MovingObject::spawn(SegClass::Giraffe, 64, 48, 1.0, &mut r);
        for p in 0..100 {
            let t = o.texture(p as f32, (p * 3 % 48) as f32);
            assert!((0.0..=1.0).contains(&t));
        }
    }
}
