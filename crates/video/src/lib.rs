//! # st-video
//!
//! Procedural, LVS-like video substrate for the ShadowTutor reproduction.
//!
//! The paper evaluates on the Long Video Segmentation (LVS) dataset: 720p
//! videos at 25–30 FPS labelled with 8 actively moving object classes, split
//! into seven camera × scene categories (fixed/moving/egocentric ×
//! animals/people/street). That dataset is not available offline, so this
//! crate generates videos with the same *structure*: textured moving objects
//! of 8 foreground classes over a per-scene background, under three camera
//! motion models, with a per-frame ground-truth segmentation mask and
//! controllable temporal coherence (object speed, camera motion, scene-change
//! rate).
//!
//! Everything that matters to ShadowTutor — how quickly a scene decorrelates
//! from the last key frame, how class content differs per category, and how
//! frame rate resampling stretches temporal distance — is explicitly
//! parameterised, so key-frame ratios and accuracy trends per category have
//! the same qualitative shape as the paper's.
//!
//! Modules:
//!
//! * [`classes`] — the 8 LVS object classes plus background.
//! * [`scene`] — camera-motion and scene-kind taxonomy (the 7 categories).
//! * [`object`] — moving textured objects and their dynamics.
//! * [`generator`] — the frame generator ([`generator::VideoGenerator`]).
//! * [`resample`] — frame-rate resampling (the paper's 7 FPS experiment).
//! * [`dataset`] — ready-made category configs and the named Figure-4 videos.

pub mod classes;
pub mod dataset;
pub mod generator;
pub mod object;
pub mod resample;
pub mod scene;

pub use classes::{SegClass, NUM_CLASSES};
pub use generator::{Frame, VideoConfig, VideoGenerator};
pub use scene::{CameraMotion, SceneKind, VideoCategory};

/// Result alias re-using the tensor error type.
pub type Result<T> = st_tensor::Result<T>;
