//! Ready-made dataset descriptors mirroring the paper's evaluation videos.
//!
//! Two groups are provided:
//!
//! * [`category_videos`] — one video per paper category (the rows of
//!   Tables 3, 5, 6 and 7).
//! * [`figure4_videos`] — the five named streams of Figure 4 (softball,
//!   figure skating, ice hockey, drone, southbeach), whose distinguishing
//!   property in the paper is their key-frame proportion (softball the
//!   lowest at 1.72 %, southbeach the highest at 12.4 %). Here that property
//!   is induced by choosing the underlying category and dynamics so the
//!   reproduction's adaptive scheduler lands in the same ordering.

use crate::generator::VideoConfig;
use crate::scene::{CameraMotion, SceneKind, VideoCategory};
use serde::{Deserialize, Serialize};

/// A named video descriptor: a label plus the generator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VideoDescriptor {
    /// Human-readable name used in table/figure output.
    pub name: String,
    /// Generator configuration.
    pub config: VideoConfig,
}

/// Experiment resolution presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Resolution {
    /// 32×24 — unit tests and smoke runs.
    Tiny,
    /// 64×48 — default accuracy experiments on CPU.
    Small,
    /// 128×96 — slower, higher-fidelity runs.
    Medium,
    /// 1280×720 — the paper's HD resolution (only used for payload sizing,
    /// never for actual CPU training in the default harness).
    PaperHd,
}

impl Resolution {
    /// `(width, height)` in pixels.
    pub fn dims(self) -> (usize, usize) {
        match self {
            Resolution::Tiny => (32, 24),
            Resolution::Small => (64, 48),
            Resolution::Medium => (128, 96),
            Resolution::PaperHd => (1280, 720),
        }
    }
}

/// A fixed-camera stream of `n` pre-generated tiny (32×24) frames for the
/// given scene — the standard fixture the tests and benches build concurrent
/// stream workloads from.
pub fn tiny_stream(scene: SceneKind, seed: u64, n: usize) -> Vec<crate::Frame> {
    let cat = VideoCategory {
        camera: CameraMotion::Fixed,
        scene,
    };
    let (w, h) = Resolution::Tiny.dims();
    let mut gen = crate::VideoGenerator::new(VideoConfig::for_category(cat, w, h, seed))
        .expect("tiny fixture config is valid");
    gen.take_frames(n)
}

/// One video per paper category.
pub fn category_videos(resolution: Resolution, seed: u64) -> Vec<VideoDescriptor> {
    let (w, h) = resolution.dims();
    VideoCategory::paper_categories()
        .into_iter()
        .enumerate()
        .map(|(i, cat)| VideoDescriptor {
            name: cat.label(),
            config: VideoConfig::for_category(cat, w, h, seed.wrapping_add(i as u64 * 101)),
        })
        .collect()
}

/// The five named videos used in Figure 4, ordered from fewest key frames
/// (softball) to most (southbeach).
pub fn figure4_videos(resolution: Resolution, seed: u64) -> Vec<VideoDescriptor> {
    let (w, h) = resolution.dims();
    let scale = w as f32 / 100.0;
    let mk =
        |name: &str, camera, scene, speed_mult: f32, objects: usize, change: usize, off: u64| {
            let cat = VideoCategory { camera, scene };
            let mut config = VideoConfig::for_category(cat, w, h, seed.wrapping_add(off));
            config.object_speed = scene_speed(scene) * speed_mult * scale;
            config.object_count = objects;
            config.scene_change_interval = change;
            VideoDescriptor {
                name: name.to_string(),
                config,
            }
        };
    vec![
        // Fixed camera on a slow people scene: almost nothing changes.
        mk(
            "softball",
            CameraMotion::Fixed,
            SceneKind::People,
            0.5,
            2,
            600,
            1,
        ),
        mk(
            "figure_skating",
            CameraMotion::Moving,
            SceneKind::People,
            0.9,
            2,
            350,
            2,
        ),
        mk(
            "ice_hockey",
            CameraMotion::Moving,
            SceneKind::People,
            1.6,
            4,
            220,
            3,
        ),
        mk(
            "drone",
            CameraMotion::Moving,
            SceneKind::Street,
            1.2,
            5,
            160,
            4,
        ),
        // Street CCTV with many fast objects and frequent content changes.
        mk(
            "southbeach",
            CameraMotion::Fixed,
            SceneKind::Street,
            1.8,
            8,
            80,
            5,
        ),
    ]
}

fn scene_speed(scene: SceneKind) -> f32 {
    scene.typical_speed()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_videos_cover_all_seven() {
        let videos = category_videos(Resolution::Tiny, 42);
        assert_eq!(videos.len(), 7);
        let names: std::collections::HashSet<_> = videos.iter().map(|v| v.name.clone()).collect();
        assert_eq!(names.len(), 7);
        for v in &videos {
            assert!(v.config.validate().is_ok());
        }
    }

    #[test]
    fn figure4_videos_have_increasing_dynamics() {
        let videos = figure4_videos(Resolution::Tiny, 42);
        assert_eq!(videos.len(), 5);
        assert_eq!(videos[0].name, "softball");
        assert_eq!(videos[4].name, "southbeach");
        // Southbeach must be strictly more dynamic than softball on every axis
        // that drives key-frame frequency.
        let soft = &videos[0].config;
        let south = &videos[4].config;
        assert!(south.object_speed > soft.object_speed);
        assert!(south.object_count > soft.object_count);
        assert!(south.scene_change_interval < soft.scene_change_interval);
    }

    #[test]
    fn resolutions_are_student_compatible() {
        for r in [
            Resolution::Tiny,
            Resolution::Small,
            Resolution::Medium,
            Resolution::PaperHd,
        ] {
            let (w, h) = r.dims();
            assert_eq!(w % 4, 0);
            assert_eq!(h % 4, 0);
        }
    }

    #[test]
    fn seeds_differ_across_categories() {
        let videos = category_videos(Resolution::Tiny, 1);
        let seeds: std::collections::HashSet<_> = videos.iter().map(|v| v.config.seed).collect();
        assert_eq!(seeds.len(), videos.len());
    }
}
