//! Chaos end-to-end tests: kill one of four shards mid-run under 8×-skewed
//! load and assert the pool recovers — every stream finishes, takeover
//! latency stays under the `st_sim::FailoverModel` bound, lost frames are
//! drop-acked with [`DropReason::ShardFailed`], and (for a clean kill) the
//! adopted streams' distillation matches a fault-free run bit for bit.
//!
//! Everything here is deterministic: the kill comes from a seeded
//! [`FaultPlan`] threaded through `PoolConfig`, not from aborting threads,
//! and every shard runs the *same-seeded* perfect oracle. A perfect
//! oracle's labels are pure in the frame (ground truth, no rng influence),
//! so a stream's update trajectory depends only on its own key-frame
//! sequence — not on which shard served it or how batches were composed —
//! which is what makes the bit-for-bit comparison meaningful.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use shadowtutor::config::{PlacementPolicy, ShadowTutorConfig};
use shadowtutor::serve::{FaultPlan, PoolConfig, PoolStats, ServerPool, StreamClient};
use st_net::transport::ClientEndpoint;
use st_net::{ClientToServer, DropReason, Payload, ServerToClient, StreamId, TransportError, Wire};
use st_nn::delta::{CheckpointDigest, WeightPayload};
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::FailoverModel;
use st_teacher::OracleTeacher;
use st_video::dataset::tiny_stream;
use st_video::{Frame, SceneKind};

/// Pinned the way CI pins `ST_CHECK_SEED`: the chaos smoke step runs this
/// exact schedule.
const FAULT_SEED: u64 = 42;
const TEACHER_SEED: u64 = 9001;
const SHARDS: usize = 4;
const STREAMS: usize = 8;
/// The hot stream sends 8× the cold streams' single key frame.
const HOT_KEY_FRAMES: usize = 8;
const DEAD_SHARD: usize = 1;

fn chaos_pool_config(fault_plan: FaultPlan) -> PoolConfig {
    PoolConfig {
        shards: SHARDS,
        placement: PlacementPolicy::Rebalance,
        replication: true,
        fault_plan,
        // High enough that the pipelined hot stream is never throttled.
        max_in_flight: 64,
        recv_timeout: Duration::from_millis(200),
        steal_poll: Duration::from_millis(1),
        steal_patience: Duration::from_millis(5),
        ..PoolConfig::default_pool()
    }
}

/// Per-stream key-frame sequences: stream 0 hot, streams 1..8 cold.
fn stream_frames() -> Vec<(StreamId, Vec<Frame>)> {
    (0..STREAMS)
        .map(|id| {
            let n = if id == 0 { HOT_KEY_FRAMES } else { 1 };
            (
                id as StreamId,
                tiny_stream(SceneKind::People, 70 + id as u64, n),
            )
        })
        .collect()
}

fn total_sent() -> usize {
    HOT_KEY_FRAMES + (STREAMS - 1)
}

/// Chunk bytes of the template's frozen front-end stages — the bytes every
/// replica publish must deduplicate against the template the pool interned
/// into its weight store at spawn.
fn frozen_template_bytes() -> usize {
    let mut template = StudentNet::new(StudentConfig::tiny()).unwrap();
    template.freeze = ShadowTutorConfig::paper().mode.freeze_point();
    let chunk_bytes = |snapshot: WeightSnapshot| -> usize {
        snapshot
            .entry_chunks()
            .iter()
            .map(|(_, chunk)| chunk.len())
            .sum()
    };
    let full = chunk_bytes(WeightSnapshot::capture(&mut template, SnapshotScope::Full));
    let trainable = chunk_bytes(WeightSnapshot::capture(
        &mut template,
        SnapshotScope::TrainableOnly,
    ));
    full - trainable
}

#[derive(Debug, Default)]
struct StreamOutcome {
    /// The `InitialStudent` payload (so delta runs can seed a client-side
    /// digest exactly the way the live runtime does).
    initial: Option<Payload>,
    /// Every `StudentUpdate` in arrival order (the full message, so the
    /// bit-for-bit comparison covers metric, steps and payload bytes).
    updates: Vec<ServerToClient>,
    drops: Vec<(usize, DropReason)>,
    reshares: usize,
}

/// Pump one stream until every sent key frame is acked (update or drop),
/// answering `NeedFrame` with a re-share — the recovery path adopted
/// streams take for frame content the replica intentionally does not carry.
fn drive_stream(client: &mut StreamClient, frames: &[Frame]) -> StreamOutcome {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut outcome = StreamOutcome::default();
    while outcome.updates.len() + outcome.drops.len() < frames.len() {
        let msg = match client.recv_timeout(Duration::from_millis(250)) {
            Ok(msg) => msg,
            Err(TransportError::Timeout) => {
                assert!(
                    Instant::now() < deadline,
                    "stream {} starved: {} updates, {} drops of {} sent",
                    client.stream_id(),
                    outcome.updates.len(),
                    outcome.drops.len(),
                    frames.len()
                );
                // Caught mid-takeover: re-dial. `Err(Timeout)` means the
                // standby has not finished adopting yet — keep waiting.
                match client.reconnect() {
                    Ok(()) | Err(TransportError::Timeout) => continue,
                    Err(err) => panic!("stream {} cannot reconnect: {err:?}", client.stream_id()),
                }
            }
            Err(err) => panic!("stream {} transport error: {err:?}", client.stream_id()),
        };
        match msg {
            update @ ServerToClient::StudentUpdate { .. } => outcome.updates.push(update),
            ServerToClient::NeedFrame { frame_index } => {
                let frame = frames
                    .iter()
                    .find(|f| f.index == frame_index)
                    .expect("NeedFrame for a frame this stream never sent");
                client.reshare(frame).expect("re-share failed");
                outcome.reshares += 1;
            }
            ServerToClient::Dropped {
                frame_index,
                reason,
            } => outcome.drops.push((frame_index, reason)),
            other => panic!(
                "stream {} got unexpected message: {other:?}",
                client.stream_id()
            ),
        }
    }
    outcome
}

/// Run the full skewed workload against a pool with the given config and
/// return per-stream outcomes plus the pool stats.
fn run_chaos(pool_config: PoolConfig) -> (HashMap<StreamId, StreamOutcome>, PoolStats) {
    run_chaos_with(pool_config, stream_frames())
}

/// [`run_chaos`] with a caller-chosen key-frame schedule.
fn run_chaos_with(
    pool_config: PoolConfig,
    streams: Vec<(StreamId, Vec<Frame>)>,
) -> (HashMap<StreamId, StreamOutcome>, PoolStats) {
    let pool = ServerPool::spawn(
        ShadowTutorConfig::paper(),
        pool_config,
        StudentNet::new(StudentConfig::tiny()).unwrap(),
        0.013,
        // Same seed on every shard, deliberately: updates must not depend
        // on which shard hosts the session (see module doc).
        |_| OracleTeacher::perfect(TEACHER_SEED),
    )
    .unwrap();
    let mut clients: Vec<StreamClient> = streams
        .iter()
        .map(|(id, frames)| pool.connect(*id, frames).unwrap())
        .collect();
    // Least-loaded placement with equal loads at every connect is
    // round-robin: streams {1, 5} land on the doomed shard 1, whose buddy
    // (the adopter) is shard 2.
    assert_eq!(pool.shard_loads(), vec![2; SHARDS]);
    let mut initials: Vec<Payload> = Vec::new();
    for client in &mut clients {
        let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
        let ServerToClient::InitialStudent { payload } = initial else {
            panic!("expected InitialStudent, got {initial:?}");
        };
        initials.push(payload);
    }
    // Pipeline every key frame up front so the kill lands under real load.
    for (client, (_, frames)) in clients.iter_mut().zip(&streams) {
        for frame in frames {
            let payload = Payload::sized(frame.raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
        }
    }
    let mut outcomes = HashMap::new();
    for ((client, (id, frames)), initial) in clients.iter_mut().zip(&streams).zip(initials) {
        let mut outcome = drive_stream(client, frames);
        outcome.initial = Some(initial);
        outcomes.insert(*id, outcome);
    }
    for client in &mut clients {
        client.send(ClientToServer::Shutdown, 1).unwrap();
    }
    drop(clients);
    let stats = pool.join().unwrap();
    (outcomes, stats)
}

/// The streams round-robin placement put on the killed shard.
fn doomed_streams() -> Vec<StreamId> {
    (0..STREAMS as StreamId)
        .filter(|id| (*id as usize) % SHARDS == DEAD_SHARD)
        .collect()
}

#[test]
fn clean_kill_recovers_every_stream_bit_for_bit() {
    let (faulted, stats) = run_chaos(chaos_pool_config(FaultPlan::kill(
        FAULT_SEED, DEAD_SHARD, 0,
    )));
    // A clean kill fires before the batch drain: every queued job survives
    // in the carcass, so nothing may be dropped anywhere.
    assert_eq!(stats.total_key_frames(), total_sent());
    assert_eq!(stats.dropped_jobs(), 0);
    for (id, outcome) in &faulted {
        assert!(
            outcome.drops.is_empty(),
            "stream {id} saw drops on a clean kill: {:?}",
            outcome.drops
        );
    }
    let report = stats.snapshot();
    assert_eq!(report.shards.len(), SHARDS);
    assert!(report.failovers >= 1, "no failover recorded: {report:?}");
    // The buddy adopts every stream the dead shard owned. Stealing is live
    // while the kill lands, so a migration can race a stream *onto* the
    // doomed shard first — such a stream is adopted too and shows up in
    // `streams_stolen`, which bounds the excess.
    assert!(
        report.streams_adopted >= doomed_streams().len(),
        "the buddy must adopt at least the dead shard's streams: {report:?}"
    );
    assert!(
        report.streams_adopted <= doomed_streams().len() + stats.streams_stolen(),
        "adopted streams exceed the dead shard's own plus raced migrations: {report:?}"
    );
    assert_eq!(report.frames_lost_on_failover, 0);
    // Replication really ran, and the frozen partial-distillation stages
    // deduplicated by content hash across publishes.
    assert!(report.replica_bytes_published > 0);
    assert!(report.replica_bytes_shared > 0);
    // The replicas live in the pool's unified weight store — the same one
    // holding the interned template and the copy-on-write sessions' shared
    // front-end — so residency and session sharing must both be visible.
    assert!(report.store_resident_bytes > 0);
    assert!(report.session_bytes_shared > 0);
    // The store-backed replica index turns replication's cost sublinear:
    // the template is pinned at spawn, so *every* publish (one per accepted
    // update, plus one per registration) deduplicates at least the frozen
    // front-end's chunk bytes instead of materializing them again.
    let frozen = frozen_template_bytes();
    assert!(frozen > 0, "partial distillation must freeze something");
    assert!(
        report.replica_bytes_shared >= total_sent() * frozen,
        "replica publishes shared {} bytes; {} update publishes must each dedup \
         the {frozen}-byte frozen front-end",
        report.replica_bytes_shared,
        total_sent()
    );
    // Takeover latency is bounded by the analytic model. `pass_cost` is
    // raised from the paper default to a debug-build-sized batch pass; the
    // detection/adoption/restore terms are the model's own.
    let bound = FailoverModel {
        pass_cost: 2.0,
        ..FailoverModel::paper_default()
    }
    .takeover_bound(doomed_streams().len());
    let takeover = stats.takeover_latency_p99_secs();
    assert!(takeover > 0.0, "no takeover latency sample recorded");
    assert!(
        takeover < bound,
        "takeover took {takeover:.3}s, model bound is {bound:.3}s"
    );
    // Bit-for-bit: the adopted streams' distillation (metric, step count,
    // encoded weight payload, frame order) must equal a fault-free run's.
    let (clean, clean_stats) = run_chaos(chaos_pool_config(FaultPlan::none()));
    assert_eq!(clean_stats.dropped_jobs(), 0);
    assert_eq!(clean_stats.snapshot().failovers, 0);
    for (id, clean_outcome) in &clean {
        assert_eq!(
            faulted[id].updates, clean_outcome.updates,
            "stream {id} diverged from the fault-free run after adoption"
        );
    }
}

#[test]
fn torn_kill_drop_acks_lost_jobs_with_shard_failed() {
    let (outcomes, stats) = run_chaos(chaos_pool_config(
        FaultPlan::kill(FAULT_SEED, DEAD_SHARD, 0).torn(),
    ));
    let updates: usize = outcomes.values().map(|o| o.updates.len()).sum();
    let drops: usize = outcomes.values().map(|o| o.drops.len()).sum();
    // Every sent key frame was acked exactly once, one way or the other.
    assert_eq!(updates + drops, total_sent());
    assert!(drops >= 1, "a torn kill must lose the in-flight batch");
    // Every drop is the failover's, explicitly reasoned — never a silent
    // vanish or a mislabelled protocol error.
    for outcome in outcomes.values() {
        for (frame_index, reason) in &outcome.drops {
            assert_eq!(
                *reason,
                DropReason::ShardFailed,
                "frame {frame_index} dropped for the wrong reason"
            );
        }
    }
    // Only streams hosted on the dead shard can have lost frames.
    let doomed = doomed_streams();
    for (id, outcome) in &outcomes {
        if !outcome.drops.is_empty() {
            assert!(
                doomed.contains(id),
                "stream {id} was not on shard {DEAD_SHARD} but lost frames"
            );
        }
    }
    let report = stats.snapshot();
    assert!(report.failovers >= 1);
    // See `clean_kill_recovers_every_stream_bit_for_bit`: a steal can race
    // a stream onto the doomed shard, so adoption is bounded, not exact.
    assert!(report.streams_adopted >= doomed.len());
    assert!(report.streams_adopted <= doomed.len() + stats.streams_stolen());
    assert_eq!(
        report.frames_lost_on_failover, drops,
        "shard accounting disagrees with client-observed drops"
    );
    assert_eq!(stats.dropped_jobs(), drops);
    assert_eq!(stats.total_key_frames() + drops, total_sent());
}

#[test]
fn reactor_pool_survives_a_shard_kill() {
    // Same schedule under the event-driven driver: 4 shard machines on 2
    // reactor threads, where the injected panic unwinds a *pass*, not a
    // whole worker thread.
    let (outcomes, stats) = run_chaos(PoolConfig {
        reactor_threads: Some(2),
        ..chaos_pool_config(FaultPlan::kill(FAULT_SEED, DEAD_SHARD, 0))
    });
    assert_eq!(stats.total_key_frames(), total_sent());
    assert_eq!(stats.dropped_jobs(), 0);
    for outcome in outcomes.values() {
        assert!(outcome.drops.is_empty());
    }
    let report = stats.snapshot();
    assert!(report.failovers >= 1);
    // Bounded, not exact: a steal can race a stream onto the doomed shard
    // (see `clean_kill_recovers_every_stream_bit_for_bit`).
    assert!(report.streams_adopted >= doomed_streams().len());
    assert!(report.streams_adopted <= doomed_streams().len() + stats.streams_stolen());
}

/// Client-side delta state for one stream, mirroring the live runtime's
/// apply path: decode the envelope, apply it to a local student, and keep
/// the digest patched in lockstep with the server's per-stream track.
struct DeltaTracker {
    student: StudentNet,
    digest: CheckpointDigest,
    fulls: usize,
    deltas: usize,
}

impl DeltaTracker {
    /// Seed from the `InitialStudent` payload, which a delta-negotiated
    /// stream always receives as a full-snapshot envelope.
    fn new(stream: StreamId, initial: &Payload) -> Self {
        let data = initial.data.as_ref().expect("live payloads carry bytes");
        let WeightPayload::Full(snapshot) = <WeightPayload as Wire>::decode(&mut &data[..])
            .unwrap_or_else(|err| panic!("stream {stream}: bad initial envelope: {err:?}"))
        else {
            panic!("stream {stream}: initial checkpoint arrived as a delta");
        };
        let mut student = StudentNet::new(StudentConfig::tiny()).unwrap();
        student.freeze = ShadowTutorConfig::paper().mode.freeze_point();
        snapshot.apply(&mut student).unwrap();
        DeltaTracker {
            student,
            digest: CheckpointDigest::of(&snapshot),
            fulls: 0,
            deltas: 0,
        }
    }

    /// Apply one `StudentUpdate` payload. Every delta must pass its base
    /// check — an unappliable delta after failover is exactly the bug the
    /// full-snapshot re-sync exists to prevent.
    fn apply(&mut self, stream: StreamId, payload: &Payload) {
        let data = payload.data.as_ref().expect("live payloads carry bytes");
        let envelope = <WeightPayload as Wire>::decode(&mut &data[..])
            .unwrap_or_else(|err| panic!("stream {stream}: bad update envelope: {err:?}"));
        match envelope {
            WeightPayload::Full(snapshot) => {
                snapshot.apply(&mut self.student).unwrap();
                self.digest.patch(&snapshot);
                self.fulls += 1;
            }
            WeightPayload::Delta(delta) => {
                delta.check_base(&self.digest, None).unwrap_or_else(|err| {
                    panic!("stream {stream}: unappliable delta after failover: {err:?}")
                });
                let (sparse, chunks) = delta.into_parts().unwrap();
                sparse.apply(&mut self.student).unwrap();
                self.digest.patch_chunks(&chunks);
                self.deltas += 1;
            }
        }
    }

    /// Replay a whole stream outcome and return the tracker.
    fn replay(stream: StreamId, outcome: &StreamOutcome) -> Self {
        let mut tracker = DeltaTracker::new(stream, outcome.initial.as_ref().unwrap());
        for update in &outcome.updates {
            let ServerToClient::StudentUpdate { payload, .. } = update else {
                unreachable!("outcome.updates holds only StudentUpdate messages");
            };
            tracker.apply(stream, payload);
        }
        tracker
    }

    fn final_state(&mut self) -> bytes::Bytes {
        WeightSnapshot::capture(&mut self.student, SnapshotScope::Full).encode()
    }
}

/// The skewed schedule with the hot stream moved onto the doomed shard, so
/// the failover-restored session has updates left to send *after* its
/// full-snapshot re-sync.
fn resync_stream_frames() -> Vec<(StreamId, Vec<Frame>)> {
    (0..STREAMS)
        .map(|id| {
            let n = if id == DEAD_SHARD { HOT_KEY_FRAMES } else { 1 };
            (
                id as StreamId,
                tiny_stream(SceneKind::People, 70 + id as u64, n),
            )
        })
        .collect()
}

#[test]
fn failover_resyncs_delta_streams_with_a_full_snapshot() {
    // A delta-negotiated stream whose shard dies must be re-synced by its
    // adopter with a full-snapshot envelope (the adopter cannot prove what
    // the client last applied) and then resume deltas — never ship a delta
    // the client's digest rejects. The hot stream lives on the doomed shard
    // this time, so it still has key frames in flight after adoption.
    let faulted_config = PoolConfig {
        delta_updates: true,
        ..chaos_pool_config(FaultPlan::kill(FAULT_SEED, DEAD_SHARD, 0))
    };
    let (faulted, stats) = run_chaos_with(faulted_config, resync_stream_frames());
    let report = stats.snapshot();
    assert!(report.failovers >= 1, "no failover recorded: {report:?}");
    assert_eq!(stats.dropped_jobs(), 0);
    for (id, outcome) in &faulted {
        assert!(
            outcome.drops.is_empty(),
            "stream {id} saw drops: {:?}",
            outcome.drops
        );
    }

    // Replay every stream client-side; `DeltaTracker::apply` panics on any
    // delta whose base check fails, so merely completing the replay proves
    // zero rejections.
    let mut trackers: HashMap<StreamId, DeltaTracker> = faulted
        .iter()
        .map(|(id, outcome)| (*id, DeltaTracker::replay(*id, outcome)))
        .collect();

    // The hot doomed stream re-synced exactly once and then went back to
    // deltas for every remaining update.
    let hot = &trackers[&(DEAD_SHARD as StreamId)];
    assert_eq!(
        hot.fulls, 1,
        "the adopted hot stream must re-sync with exactly one full snapshot"
    );
    assert_eq!(
        hot.deltas,
        HOT_KEY_FRAMES - 1,
        "deltas must resume after the re-sync"
    );
    // Client- and server-side envelope accounting agree, and only adopted
    // streams (the dead shard's own, plus any migration that raced onto it)
    // ever need a re-sync.
    let fulls: usize = trackers.values().map(|t| t.fulls).sum();
    let deltas: usize = trackers.values().map(|t| t.deltas).sum();
    assert_eq!(fulls, report.full_updates_sent);
    assert_eq!(deltas, report.delta_updates_sent);
    assert_eq!(fulls + deltas, total_sent());
    assert!(
        fulls <= report.streams_adopted,
        "a re-sync without an adoption: {report:?}"
    );

    // Bit-for-bit: the weights each client reconstructs through the
    // kill-and-re-sync path equal a fault-free delta run's.
    let clean_config = PoolConfig {
        delta_updates: true,
        ..chaos_pool_config(FaultPlan::none())
    };
    let (clean, clean_stats) = run_chaos_with(clean_config, resync_stream_frames());
    let clean_report = clean_stats.snapshot();
    assert_eq!(clean_report.failovers, 0);
    // Without a failover nothing ever needs a re-sync: registration seeds
    // the digest and every update ships as a delta.
    assert_eq!(clean_report.full_updates_sent, 0);
    assert_eq!(clean_report.delta_updates_sent, total_sent());
    for (id, outcome) in &clean {
        let mut clean_tracker = DeltaTracker::replay(*id, outcome);
        assert_eq!(clean_tracker.fulls, 0);
        let faulted_tracker = trackers.get_mut(id).unwrap();
        assert_eq!(
            faulted_tracker.final_state(),
            clean_tracker.final_state(),
            "stream {id} reconstructed different weights through the failover re-sync"
        );
    }
}
