//! Chaos end-to-end tests: kill one of four shards mid-run under 8×-skewed
//! load and assert the pool recovers — every stream finishes, takeover
//! latency stays under the `st_sim::FailoverModel` bound, lost frames are
//! drop-acked with [`DropReason::ShardFailed`], and (for a clean kill) the
//! adopted streams' distillation matches a fault-free run bit for bit.
//!
//! Everything here is deterministic: the kill comes from a seeded
//! [`FaultPlan`] threaded through `PoolConfig`, not from aborting threads,
//! and every shard runs the *same-seeded* perfect oracle. A perfect
//! oracle's labels are pure in the frame (ground truth, no rng influence),
//! so a stream's update trajectory depends only on its own key-frame
//! sequence — not on which shard served it or how batches were composed —
//! which is what makes the bit-for-bit comparison meaningful.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use shadowtutor::config::{PlacementPolicy, ShadowTutorConfig};
use shadowtutor::serve::{FaultPlan, PoolConfig, PoolStats, ServerPool, StreamClient};
use st_net::transport::ClientEndpoint;
use st_net::{ClientToServer, DropReason, Payload, ServerToClient, StreamId, TransportError};
use st_nn::student::{StudentConfig, StudentNet};
use st_sim::FailoverModel;
use st_teacher::OracleTeacher;
use st_video::dataset::tiny_stream;
use st_video::{Frame, SceneKind};

/// Pinned the way CI pins `ST_CHECK_SEED`: the chaos smoke step runs this
/// exact schedule.
const FAULT_SEED: u64 = 42;
const TEACHER_SEED: u64 = 9001;
const SHARDS: usize = 4;
const STREAMS: usize = 8;
/// The hot stream sends 8× the cold streams' single key frame.
const HOT_KEY_FRAMES: usize = 8;
const DEAD_SHARD: usize = 1;

fn chaos_pool_config(fault_plan: FaultPlan) -> PoolConfig {
    PoolConfig {
        shards: SHARDS,
        placement: PlacementPolicy::Rebalance,
        replication: true,
        fault_plan,
        // High enough that the pipelined hot stream is never throttled.
        max_in_flight: 64,
        recv_timeout: Duration::from_millis(200),
        steal_poll: Duration::from_millis(1),
        steal_patience: Duration::from_millis(5),
        ..PoolConfig::default_pool()
    }
}

/// Per-stream key-frame sequences: stream 0 hot, streams 1..8 cold.
fn stream_frames() -> Vec<(StreamId, Vec<Frame>)> {
    (0..STREAMS)
        .map(|id| {
            let n = if id == 0 { HOT_KEY_FRAMES } else { 1 };
            (
                id as StreamId,
                tiny_stream(SceneKind::People, 70 + id as u64, n),
            )
        })
        .collect()
}

fn total_sent() -> usize {
    HOT_KEY_FRAMES + (STREAMS - 1)
}

#[derive(Debug, Default)]
struct StreamOutcome {
    /// Every `StudentUpdate` in arrival order (the full message, so the
    /// bit-for-bit comparison covers metric, steps and payload bytes).
    updates: Vec<ServerToClient>,
    drops: Vec<(usize, DropReason)>,
    reshares: usize,
}

/// Pump one stream until every sent key frame is acked (update or drop),
/// answering `NeedFrame` with a re-share — the recovery path adopted
/// streams take for frame content the replica intentionally does not carry.
fn drive_stream(client: &mut StreamClient, frames: &[Frame]) -> StreamOutcome {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut outcome = StreamOutcome::default();
    while outcome.updates.len() + outcome.drops.len() < frames.len() {
        let msg = match client.recv_timeout(Duration::from_millis(250)) {
            Ok(msg) => msg,
            Err(TransportError::Timeout) => {
                assert!(
                    Instant::now() < deadline,
                    "stream {} starved: {} updates, {} drops of {} sent",
                    client.stream_id(),
                    outcome.updates.len(),
                    outcome.drops.len(),
                    frames.len()
                );
                // Caught mid-takeover: re-dial. `Err(Timeout)` means the
                // standby has not finished adopting yet — keep waiting.
                match client.reconnect() {
                    Ok(()) | Err(TransportError::Timeout) => continue,
                    Err(err) => panic!("stream {} cannot reconnect: {err:?}", client.stream_id()),
                }
            }
            Err(err) => panic!("stream {} transport error: {err:?}", client.stream_id()),
        };
        match msg {
            update @ ServerToClient::StudentUpdate { .. } => outcome.updates.push(update),
            ServerToClient::NeedFrame { frame_index } => {
                let frame = frames
                    .iter()
                    .find(|f| f.index == frame_index)
                    .expect("NeedFrame for a frame this stream never sent");
                client.reshare(frame).expect("re-share failed");
                outcome.reshares += 1;
            }
            ServerToClient::Dropped {
                frame_index,
                reason,
            } => outcome.drops.push((frame_index, reason)),
            other => panic!(
                "stream {} got unexpected message: {other:?}",
                client.stream_id()
            ),
        }
    }
    outcome
}

/// Run the full skewed workload against a pool with the given config and
/// return per-stream outcomes plus the pool stats.
fn run_chaos(pool_config: PoolConfig) -> (HashMap<StreamId, StreamOutcome>, PoolStats) {
    let pool = ServerPool::spawn(
        ShadowTutorConfig::paper(),
        pool_config,
        StudentNet::new(StudentConfig::tiny()).unwrap(),
        0.013,
        // Same seed on every shard, deliberately: updates must not depend
        // on which shard hosts the session (see module doc).
        |_| OracleTeacher::perfect(TEACHER_SEED),
    )
    .unwrap();
    let streams = stream_frames();
    let mut clients: Vec<StreamClient> = streams
        .iter()
        .map(|(id, frames)| pool.connect(*id, frames).unwrap())
        .collect();
    // Least-loaded placement with equal loads at every connect is
    // round-robin: streams {1, 5} land on the doomed shard 1, whose buddy
    // (the adopter) is shard 2.
    assert_eq!(pool.shard_loads(), vec![2; SHARDS]);
    for client in &mut clients {
        let initial = client.recv_timeout(Duration::from_secs(10)).unwrap();
        assert!(matches!(initial, ServerToClient::InitialStudent { .. }));
    }
    // Pipeline every key frame up front so the kill lands under real load.
    for (client, (_, frames)) in clients.iter_mut().zip(&streams) {
        for frame in frames {
            let payload = Payload::sized(frame.raw_rgb_bytes());
            let bytes = payload.bytes;
            client
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .unwrap();
        }
    }
    let mut outcomes = HashMap::new();
    for (client, (id, frames)) in clients.iter_mut().zip(&streams) {
        outcomes.insert(*id, drive_stream(client, frames));
    }
    for client in &mut clients {
        client.send(ClientToServer::Shutdown, 1).unwrap();
    }
    drop(clients);
    let stats = pool.join().unwrap();
    (outcomes, stats)
}

/// The streams round-robin placement put on the killed shard.
fn doomed_streams() -> Vec<StreamId> {
    (0..STREAMS as StreamId)
        .filter(|id| (*id as usize) % SHARDS == DEAD_SHARD)
        .collect()
}

#[test]
fn clean_kill_recovers_every_stream_bit_for_bit() {
    let (faulted, stats) = run_chaos(chaos_pool_config(FaultPlan::kill(
        FAULT_SEED, DEAD_SHARD, 0,
    )));
    // A clean kill fires before the batch drain: every queued job survives
    // in the carcass, so nothing may be dropped anywhere.
    assert_eq!(stats.total_key_frames(), total_sent());
    assert_eq!(stats.dropped_jobs(), 0);
    for (id, outcome) in &faulted {
        assert!(
            outcome.drops.is_empty(),
            "stream {id} saw drops on a clean kill: {:?}",
            outcome.drops
        );
    }
    let report = stats.snapshot();
    assert_eq!(report.shards.len(), SHARDS);
    assert!(report.failovers >= 1, "no failover recorded: {report:?}");
    assert_eq!(
        report.streams_adopted,
        doomed_streams().len(),
        "the buddy must adopt exactly the dead shard's streams"
    );
    assert_eq!(report.frames_lost_on_failover, 0);
    // Replication really ran, and the frozen partial-distillation stages
    // deduplicated by content hash across publishes.
    assert!(report.replica_bytes_published > 0);
    assert!(report.replica_bytes_shared > 0);
    // Takeover latency is bounded by the analytic model. `pass_cost` is
    // raised from the paper default to a debug-build-sized batch pass; the
    // detection/adoption/restore terms are the model's own.
    let bound = FailoverModel {
        pass_cost: 2.0,
        ..FailoverModel::paper_default()
    }
    .takeover_bound(doomed_streams().len());
    let takeover = stats.takeover_latency_p99_secs();
    assert!(takeover > 0.0, "no takeover latency sample recorded");
    assert!(
        takeover < bound,
        "takeover took {takeover:.3}s, model bound is {bound:.3}s"
    );
    // Bit-for-bit: the adopted streams' distillation (metric, step count,
    // encoded weight payload, frame order) must equal a fault-free run's.
    let (clean, clean_stats) = run_chaos(chaos_pool_config(FaultPlan::none()));
    assert_eq!(clean_stats.dropped_jobs(), 0);
    assert_eq!(clean_stats.snapshot().failovers, 0);
    for (id, clean_outcome) in &clean {
        assert_eq!(
            faulted[id].updates, clean_outcome.updates,
            "stream {id} diverged from the fault-free run after adoption"
        );
    }
}

#[test]
fn torn_kill_drop_acks_lost_jobs_with_shard_failed() {
    let (outcomes, stats) = run_chaos(chaos_pool_config(
        FaultPlan::kill(FAULT_SEED, DEAD_SHARD, 0).torn(),
    ));
    let updates: usize = outcomes.values().map(|o| o.updates.len()).sum();
    let drops: usize = outcomes.values().map(|o| o.drops.len()).sum();
    // Every sent key frame was acked exactly once, one way or the other.
    assert_eq!(updates + drops, total_sent());
    assert!(drops >= 1, "a torn kill must lose the in-flight batch");
    // Every drop is the failover's, explicitly reasoned — never a silent
    // vanish or a mislabelled protocol error.
    for outcome in outcomes.values() {
        for (frame_index, reason) in &outcome.drops {
            assert_eq!(
                *reason,
                DropReason::ShardFailed,
                "frame {frame_index} dropped for the wrong reason"
            );
        }
    }
    // Only streams hosted on the dead shard can have lost frames.
    let doomed = doomed_streams();
    for (id, outcome) in &outcomes {
        if !outcome.drops.is_empty() {
            assert!(
                doomed.contains(id),
                "stream {id} was not on shard {DEAD_SHARD} but lost frames"
            );
        }
    }
    let report = stats.snapshot();
    assert!(report.failovers >= 1);
    assert_eq!(report.streams_adopted, doomed.len());
    assert_eq!(
        report.frames_lost_on_failover, drops,
        "shard accounting disagrees with client-observed drops"
    );
    assert_eq!(stats.dropped_jobs(), drops);
    assert_eq!(stats.total_key_frames() + drops, total_sent());
}

#[test]
fn reactor_pool_survives_a_shard_kill() {
    // Same schedule under the event-driven driver: 4 shard machines on 2
    // reactor threads, where the injected panic unwinds a *pass*, not a
    // whole worker thread.
    let (outcomes, stats) = run_chaos(PoolConfig {
        reactor_threads: Some(2),
        ..chaos_pool_config(FaultPlan::kill(FAULT_SEED, DEAD_SHARD, 0))
    });
    assert_eq!(stats.total_key_frames(), total_sent());
    assert_eq!(stats.dropped_jobs(), 0);
    for outcome in outcomes.values() {
        assert!(outcome.drops.is_empty());
    }
    let report = stats.snapshot();
    assert!(report.failovers >= 1);
    assert_eq!(report.streams_adopted, doomed_streams().len());
}
