//! Differential test layer for the content-keyed weight store and the
//! delta-encoded update protocol (PR 10's headline claim): copy-on-write
//! sessions and sparse wire updates are pure *representation* changes —
//! every weight a stream ever serves with is bit-for-bit identical to the
//! deep-clone + full-snapshot baseline.
//!
//! Two layers, complementary by design:
//!
//! * **Shard layer** ([`shard_layer_cow_delta_is_bit_identical_to_clone_full`])
//!   drives two [`ServeShard`]s directly on the same key-frame schedule —
//!   fully deterministic, so equality is asserted on every intermediate
//!   update, not just the final state. The copy-on-write shard additionally
//!   co-batches streams while the deep-clone shard serves them solo, so the
//!   comparison also re-proves that batch composition never changes an
//!   answer.
//! * **Live layer** (`live_pool_*`) runs the real multi-stream runtime. A
//!   wall-clock runtime is only deterministic when the client is in
//!   lockstep with the server, so these runs pin `min_stride: 1` — the
//!   client then blocks for every update on the key frame itself, update
//!   arrival can never straddle a frame boundary, and the final client
//!   students of a (CoW + delta) run must equal a (DeepClone + full) run
//!   bit for bit, under both pool drivers (thread-per-shard and reactor)
//!   and both client drivers (multiplexed and thread-per-client).

use std::collections::HashMap;

use shadowtutor::config::ShadowTutorConfig;
use shadowtutor::runtime::live::{run_live_multi_with, ClientDriverMode, StreamSpec};
use shadowtutor::serve::{FrameStore, PoolConfig, ServeShard, SessionWeights, ShardJob};
use st_net::{StreamId, Wire};
use st_nn::delta::{CheckpointDigest, WeightDelta, WeightPayload};
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::{StudentConfig, StudentNet};
use st_teacher::OracleTeacher;
use st_video::dataset::tiny_stream;
use st_video::{Frame, SceneKind};

const TEACHER_SEED: u64 = 4242;
const SCENES: [SceneKind; 3] = [SceneKind::People, SceneKind::Animals, SceneKind::Street];

fn template() -> StudentNet {
    let config = ShadowTutorConfig::paper();
    let mut net = StudentNet::new(StudentConfig::tiny()).expect("tiny student");
    net.freeze = config.mode.freeze_point();
    net
}

fn stream_frames(streams: usize, frames_per_stream: usize) -> Vec<(StreamId, Vec<Frame>)> {
    (0..streams)
        .map(|i| {
            (
                i as StreamId,
                tiny_stream(SCENES[i % SCENES.len()], 9100 + i as u64, frames_per_stream),
            )
        })
        .collect()
}

/// One client's view of the delta wire protocol, mirroring
/// `runtime::live`'s `DeltaSync`: the student, the digest of the last
/// applied checkpoint, and the previous checkpoint hash for stale-base
/// classification.
struct DeltaClient {
    student: StudentNet,
    digest: CheckpointDigest,
    previous: Option<u64>,
}

impl DeltaClient {
    /// A client holding the pristine template, its digest seeded from the
    /// local state — exactly how the live driver bootstraps before the
    /// `InitialStudent` envelope arrives.
    fn new() -> Self {
        let mut student = template();
        let digest =
            CheckpointDigest::of(&WeightSnapshot::capture(&mut student, SnapshotScope::Full));
        DeltaClient {
            student,
            digest,
            previous: None,
        }
    }

    /// Decode one `WeightPayload` off the wire and apply it, exactly as the
    /// live client driver does. Returns the payload's encoded size.
    fn apply_wire(&mut self, encoded: &[u8]) -> usize {
        let payload = <WeightPayload as Wire>::decode(&mut &encoded[..]).expect("decode payload");
        match payload {
            WeightPayload::Full(snapshot) => {
                snapshot.apply(&mut self.student).expect("apply full");
                self.previous = Some(self.digest.combined());
                self.digest.patch(&snapshot);
            }
            WeightPayload::Delta(delta) => {
                delta
                    .check_base(&self.digest, self.previous)
                    .expect("delta base must match the held checkpoint");
                let (sparse, chunks) = delta.into_parts().expect("materialize delta");
                sparse.apply(&mut self.student).expect("apply delta");
                self.previous = Some(self.digest.combined());
                self.digest.patch_chunks(&chunks);
            }
        }
        encoded.len()
    }

    fn state(&mut self) -> WeightSnapshot {
        WeightSnapshot::capture(&mut self.student, SnapshotScope::Full)
    }
}

/// Deterministic differential at the shard layer: the same key-frame
/// schedule through a copy-on-write shard shipping deltas and a deep-clone
/// shard shipping full snapshots must produce bit-identical responses,
/// client states, and final server checkpoints — even though the CoW shard
/// co-batches all streams per round while the clone shard serves each
/// stream solo.
#[test]
fn shard_layer_cow_delta_is_bit_identical_to_clone_full() {
    let config = ShadowTutorConfig::paper();
    let streams = stream_frames(3, 5);

    let mut cow = ServeShard::new(
        config,
        template(),
        OracleTeacher::perfect(TEACHER_SEED),
        0.013,
    )
    .with_session_weights(SessionWeights::CopyOnWrite);
    let mut clone = ServeShard::new(
        config,
        template(),
        OracleTeacher::perfect(TEACHER_SEED),
        0.013,
    )
    .with_session_weights(SessionWeights::DeepClone);

    let mut delta_clients: HashMap<StreamId, DeltaClient> = HashMap::new();
    let mut full_clients: HashMap<StreamId, DeltaClient> = HashMap::new();
    let mut server_digests: HashMap<StreamId, CheckpointDigest> = HashMap::new();
    for (id, frames) in &streams {
        let initial_cow = cow.register(*id, FrameStore::from_frames(frames, None), true);
        let initial_clone = clone.register(*id, FrameStore::from_frames(frames, None), false);
        assert_eq!(
            initial_cow.encode(),
            initial_clone.encode(),
            "stream {id}: registration checkpoints diverged before any training"
        );
        // Both clients bootstrap from the initial checkpoint inside a Full
        // envelope, like the live runtime's InitialStudent.
        let mut delta_client = DeltaClient::new();
        delta_client.apply_wire(&WeightPayload::encode_full(&initial_cow));
        delta_clients.insert(*id, delta_client);
        let mut full_client = DeltaClient::new();
        full_client.apply_wire(&WeightPayload::encode_full(&initial_clone));
        full_clients.insert(*id, full_client);
        server_digests.insert(*id, CheckpointDigest::of(&initial_cow));
    }

    let rounds = streams.iter().map(|(_, f)| f.len()).max().unwrap();
    let mut delta_wire_bytes = 0usize;
    let mut full_wire_bytes = 0usize;
    for round in 0..rounds {
        let jobs: Vec<ShardJob> = streams
            .iter()
            .filter_map(|(id, frames)| {
                frames.get(round).map(|frame| ShardJob {
                    stream_id: *id,
                    frame_index: frame.index,
                })
            })
            .collect();
        // CoW shard: one co-scheduled batch. Clone shard: solo batches.
        let cow_out = cow.process_batch(&jobs).expect("cow batch");
        assert_eq!(cow_out.responses.len(), jobs.len());
        let mut clone_responses = Vec::new();
        for job in &jobs {
            let out = clone
                .process_batch(std::slice::from_ref(job))
                .expect("clone batch");
            assert_eq!(out.responses.len(), 1);
            clone_responses.extend(out.responses);
        }

        for (stream_id, frame_index, response) in &cow_out.responses {
            let (clone_stream, clone_frame, clone_response) = clone_responses
                .iter()
                .find(|(id, _, _)| id == stream_id)
                .expect("clone served the same stream");
            assert_eq!(stream_id, clone_stream);
            assert_eq!(frame_index, clone_frame);
            // Representation differential: distillation through a CoW
            // session inside a batch equals a deep-cloned solo session,
            // bit for bit, on every intermediate update.
            assert_eq!(
                response.update.encode(),
                clone_response.update.encode(),
                "stream {stream_id} frame {frame_index}: updates diverged"
            );
            assert_eq!(response.metric, clone_response.metric);
            assert_eq!(response.outcome.steps, clone_response.outcome.steps);

            // Wire differential: ship the same update both ways.
            let digest = server_digests.get_mut(stream_id).expect("digest");
            let delta = WeightDelta::compute(&response.update, digest);
            assert!(delta.entry_count() <= response.update.entry_count());
            digest.patch(&response.update);
            delta_wire_bytes += delta_clients
                .get_mut(stream_id)
                .expect("delta client")
                .apply_wire(&Wire::encode(&WeightPayload::Delta(delta)));
            full_wire_bytes += full_clients
                .get_mut(stream_id)
                .expect("full client")
                .apply_wire(&WeightPayload::encode_full(&clone_response.update));

            let delta_state = delta_clients
                .get_mut(stream_id)
                .expect("delta client")
                .state();
            let full_state = full_clients
                .get_mut(stream_id)
                .expect("full client")
                .state();
            assert_eq!(
                delta_state.encode(),
                full_state.encode(),
                "stream {stream_id} frame {frame_index}: client states diverged"
            );
        }
    }
    assert!(delta_wire_bytes > 0 && full_wire_bytes > 0);

    // Final server checkpoints agree with each other and with what the
    // clients reconstructed from the wire.
    for (id, _) in &streams {
        let (cow_final, _) = cow.finish(*id).expect("cow session");
        let (clone_final, _) = clone.finish(*id).expect("clone session");
        assert_eq!(cow_final.encode(), clone_final.encode());
        let client_state = delta_clients.get_mut(id).expect("delta client").state();
        assert_eq!(
            client_state.encode(),
            cow_final.encode(),
            "stream {id}: delta client drifted from the server checkpoint"
        );
    }
}

/// `min_stride: 1` forces the live client into lockstep: every key frame
/// blocks for its update, so the whole run is deterministic and exact
/// equality across configurations is a sound assertion.
fn lockstep_config() -> ShadowTutorConfig {
    ShadowTutorConfig {
        min_stride: 1,
        ..ShadowTutorConfig::paper()
    }
}

fn lockstep_specs(frames_per_stream: usize) -> Vec<StreamSpec> {
    stream_frames(3, frames_per_stream)
        .into_iter()
        .map(|(stream_id, frames)| StreamSpec {
            stream_id,
            label: format!("diff-{stream_id}"),
            frames,
        })
        .collect()
}

/// Run the same lockstep workload under (CoW + delta) and (DeepClone +
/// full) and assert the outcomes are bit-identical, per stream, on both
/// the client and the server side.
fn assert_live_differential(pool: PoolConfig, mode: ClientDriverMode) {
    let config = lockstep_config();
    let student = template();
    let run = |session_weights: SessionWeights, delta_updates: bool| {
        run_live_multi_with(
            config,
            lockstep_specs(20),
            student.clone(),
            PoolConfig {
                session_weights,
                delta_updates,
                ..pool
            },
            |shard| OracleTeacher::perfect(TEACHER_SEED + shard as u64),
            mode,
        )
        .expect("live differential run")
    };
    let cow = run(SessionWeights::CopyOnWrite, true);
    let clone = run(SessionWeights::DeepClone, false);

    for (cow_stream, clone_stream) in cow.streams.iter().zip(&clone.streams) {
        let label = &cow_stream.record.label;
        assert_eq!(
            cow_stream.record.frames, clone_stream.record.frames,
            "{label}"
        );
        assert_eq!(
            cow_stream.record.key_frame_count(),
            clone_stream.record.key_frame_count(),
            "{label}: key-frame schedules diverged — the runs were not in lockstep"
        );
        // The headline: the weights each stream would keep serving with are
        // bit-identical across representations.
        assert_eq!(
            cow_stream.final_student.encode(),
            clone_stream.final_student.encode(),
            "{label}: final client students diverged"
        );
        // The delta protocol actually ran on the CoW side (and only there):
        // every update after the initial checkpoint arrived sparse, none
        // was rejected.
        assert!(
            cow_stream.delta.delta_updates_applied >= 1,
            "{label}: no delta update was ever applied"
        );
        assert_eq!(cow_stream.delta.delta_rejections, 0, "{label}");
        assert_eq!(clone_stream.delta.delta_updates_applied, 0, "{label}");
        assert_eq!(clone_stream.delta.full_updates_applied, 0, "{label}");
    }
    // Server-side checkpoints agree across the two runs too.
    for (stream_id, cow_ckpt) in &cow.pool.final_checkpoints {
        let clone_ckpt = &clone.pool.final_checkpoints[stream_id];
        assert_eq!(
            cow_ckpt.encode(),
            clone_ckpt.encode(),
            "stream {stream_id}: server checkpoints diverged"
        );
    }

    // And the representation paid off: the store-backed run is resident-
    // smaller and wire-cheaper than (or equal to, never worse than) the
    // clone/full-equivalent accounting it reports.
    let cow_report = cow.pool.snapshot();
    let clone_report = clone.pool.snapshot();
    assert!(
        cow_report.weights_resident_bytes() < clone_report.weights_resident_bytes(),
        "cow {} >= clone {} resident bytes",
        cow_report.weights_resident_bytes(),
        clone_report.weights_resident_bytes()
    );
    assert!(cow_report.delta_updates_sent >= 1);
    assert_eq!(clone_report.delta_updates_sent, 0);
}

#[test]
fn live_pool_differential_thread_per_shard_multiplexed() {
    assert_live_differential(PoolConfig::with_shards(2), ClientDriverMode::Multiplexed);
}

#[test]
fn live_pool_differential_thread_per_shard_thread_per_client() {
    assert_live_differential(
        PoolConfig::with_shards(2),
        ClientDriverMode::ThreadPerClient,
    );
}

#[test]
fn live_pool_differential_reactor_driver() {
    assert_live_differential(
        PoolConfig {
            reactor_threads: Some(2),
            ..PoolConfig::with_shards(2)
        },
        ClientDriverMode::Multiplexed,
    );
}
