//! Model-checking the work-stealing handoff protocol.
//!
//! [`StealCore`] is generic over its payloads, so these tests drive the
//! *production* protocol — the exact code `serve::StealRegistry` runs — with
//! small integer payloads under the `st_check` model checker. The properties
//! are the ones the server pool's exit protocol stakes its correctness on:
//!
//! * **Exactly-once handoff**: a donated stream lands in the thief's mailbox
//!   exactly once, or stays with the victim — never both, never neither —
//!   under every bounded interleaving of fulfil and withdraw.
//! * **Slot-cleared ⇒ stream-visible**: a thief that observes its request
//!   gone is guaranteed to find the fulfilment (if any) in its mailbox.
//! * **No dead letter box**: following the exit discipline (withdraw, drain,
//!   only then close), a fulfilment can never land in a closed mailbox.
//!
//! The mutant test inverts the exit discipline (close the mailbox *before*
//! withdrawing) and requires the checker to catch the stranded-delivery
//! counterexample that the discipline exists to prevent.
#![cfg(feature = "model-check")]

use std::sync::Arc;

use shadowtutor::steal::{FulfilOutcome, StealCore, MIN_STEAL_BACKLOG};
use st_check::model::{check_with, Config, Report};
use st_check::sync::thread;

fn cfg() -> Config {
    Config::from_env()
}

fn assert_caught(report: &Report, what: &str) {
    let cx = report
        .counterexample
        .as_ref()
        .unwrap_or_else(|| panic!("checker failed to catch {what}"));
    assert!(!cx.schedule.is_empty(), "counterexample is not replayable");
}

fn assert_clean(report: &Report, what: &str) {
    if let Some(cx) = &report.counterexample {
        panic!("false positive on {what}:\n{}", cx.render());
    }
    assert!(report.exhausted, "{what}: exploration did not exhaust");
}

/// Two shards, one stream at the victim, a posted request. Returns the core
/// with shard 0 as victim (load 1, backlog deep enough to steal from) and
/// shard 1 as the thief whose request is already parked at 0.
fn posted() -> Arc<StealCore<u32, u32>> {
    let core = Arc::new(StealCore::new(2));
    core.load_inc(0);
    core.publish_backlog(0, MIN_STEAL_BACKLOG);
    assert_eq!(
        core.post_request(1, MIN_STEAL_BACKLOG),
        Some(0),
        "request did not land at the deepest-backlog victim"
    );
    core
}

/// The fulfil/withdraw race resolves exactly-once: either the thief's
/// withdraw wins (stream stays home, no delivery ever lands) or the
/// victim's fulfilment wins (slot cleared ⇒ the stream is already in the
/// mailbox, and the load/backlog signals moved with it).
#[test]
fn handoff_is_exactly_once_under_fulfil_withdraw_race() {
    let report = check_with(cfg(), || {
        let core = posted();
        let victim = Arc::clone(&core);
        let t = thread::spawn(move || victim.fulfil_request(0, |_| Some((42, 0)), |_| {}));
        let withdrew = core.withdraw_request(0, 1);
        let (streams, _) = core.drain_mailbox(1);
        let outcome = t.join().expect("join victim");
        if withdrew {
            // The withdraw cleared the slot first: no fulfilment can ever
            // land, and the victim kept everything.
            assert!(streams.is_empty(), "withdrawn request still delivered");
            assert_eq!(outcome, FulfilOutcome::NoRequest, "victim saw a ghost");
            assert_eq!(core.load(0), 1, "victim lost its stream");
            assert_eq!(core.load(1), 0, "thief gained a phantom stream");
        } else {
            // The victim fulfilled first: the slot we found cleared means
            // the stream is already in our mailbox — the exit protocol's
            // load-bearing guarantee.
            assert_eq!(streams, vec![42], "slot cleared but stream missing");
            assert_eq!(outcome, FulfilOutcome::Delivered { thief: 1 });
            assert_eq!(core.load(0), 0, "victim load not released");
            assert_eq!(core.load(1), 1, "thief load not acquired");
        }
    });
    assert_clean(&report, "the fulfil/withdraw race");
}

/// The full exit discipline: withdraw, drain (again, if the withdraw lost),
/// and only then close. Under every interleaving with a concurrently
/// fulfilling victim, nothing is ever stranded in the closed mailbox.
#[test]
fn exit_discipline_never_strands_a_stream() {
    let report = check_with(cfg(), || {
        let core = posted();
        let victim = Arc::clone(&core);
        let t = thread::spawn(move || victim.fulfil_request(0, |_| Some((42, 0)), |_| {}));
        let mut adopted = core.drain_mailbox(1).0;
        if !core.withdraw_request(0, 1) && adopted.is_empty() {
            // Withdraw lost the race: one more drain is guaranteed to see
            // the delivery.
            adopted = core.drain_mailbox(1).0;
        }
        let (stranded, _) = core.close_mailbox(1);
        assert!(stranded.is_empty(), "stream stranded in a closed mailbox");
        let outcome = t.join().expect("join victim");
        let delivered = matches!(outcome, FulfilOutcome::Delivered { .. });
        assert_eq!(
            adopted.len(),
            usize::from(delivered),
            "delivery and adoption disagree"
        );
    });
    assert_clean(&report, "the withdraw-then-close exit discipline");
}

/// Warm-standby adoption racing a concurrent steal: the thief (shard 1)
/// dies with its request parked at the victim while the victim fulfils.
/// The buddy runs `ShardState::take_over`'s order verbatim — withdraw the
/// dead thief's request, close its mailbox (adopting what already landed),
/// then zero its steal surface. Under every interleaving the stream has
/// exactly one owner: a delivered fulfilment is adopted with the carcass;
/// otherwise the victim keeps the stream (`NoRequest` when the withdraw
/// won, `ThiefGone` when the close beat the fulfilment to the mailbox).
/// Never both, never neither.
#[test]
fn buddy_adoption_racing_a_steal_never_double_owns_or_strands() {
    let report = check_with(cfg(), || {
        let core = posted();
        let victim = Arc::clone(&core);
        let t = thread::spawn(move || victim.fulfil_request(0, |_| Some((42, 0)), |_| {}));
        let withdrew = core.withdraw_request(0, 1);
        let (adopted, _) = core.close_mailbox(1);
        core.clear_request(1);
        core.publish_backlog(1, 0);
        let outcome = t.join().expect("join victim");
        let delivered = matches!(outcome, FulfilOutcome::Delivered { .. });
        assert_eq!(
            adopted.len(),
            usize::from(delivered),
            "delivery and adoption disagree (double-own or strand)"
        );
        if delivered {
            assert!(!withdrew, "withdraw and fulfilment both won the slot");
            assert_eq!(adopted, vec![42], "adopted the wrong stream");
            assert_eq!(core.load(0), 0, "victim load not released");
            assert_eq!(core.load(1), 1, "adopted stream's load missing");
        } else {
            assert!(
                matches!(outcome, FulfilOutcome::NoRequest | FulfilOutcome::ThiefGone),
                "unexpected outcome: {outcome:?}"
            );
            assert_eq!(core.load(0), 1, "victim lost its stream anyway");
            assert_eq!(core.load(1), 0, "phantom load on the dead thief");
        }
        // The carcass mailbox is sealed: nothing can land after adoption.
        assert!(
            core.drain_mailbox(1).0.is_empty(),
            "closed mailbox accepted a stream"
        );
    });
    assert_clean(&report, "the buddy-adoption/steal race");
}

/// Mutant: closing the mailbox *before* withdrawing reintroduces the dead
/// letter box — a victim mid-fulfilment can deliver into the closed mailbox
/// and the stream is lost with it. The checker must find that interleaving.
#[test]
fn close_before_withdraw_mutant_is_caught() {
    let report = check_with(cfg(), || {
        let core = posted();
        let victim = Arc::clone(&core);
        let t = thread::spawn(move || victim.fulfil_request(0, |_| Some((42, 0)), |_| {}));
        // Mutant exit order: close first, withdraw after.
        let (stranded, _) = core.close_mailbox(1);
        let _ = core.withdraw_request(0, 1);
        assert!(stranded.is_empty(), "stream stranded in a closed mailbox");
        let _ = t.join();
    });
    assert_caught(&report, "the close-before-withdraw mutant");
}

/// Envelope forwarding versus a closing mailbox: every envelope is either
/// delivered (and shows up in the close-time drain) or handed back to the
/// sender — none vanish, and a closed mailbox accepts nothing.
#[test]
fn forwarded_envelopes_are_delivered_or_returned_never_lost() {
    let report = check_with(cfg(), || {
        let core: Arc<StealCore<u32, u32>> = Arc::new(StealCore::new(2));
        let sender = Arc::clone(&core);
        let t = thread::spawn(move || sender.forward_envelope(1, 99).is_ok());
        let (_, leftovers) = core.close_mailbox(1);
        let delivered = t.join().expect("join forwarder");
        let late = core.drain_mailbox(1).1;
        assert!(late.is_empty(), "closed mailbox accepted an envelope");
        if delivered {
            assert_eq!(leftovers, vec![99], "delivered envelope vanished");
        } else {
            assert!(leftovers.is_empty(), "returned envelope also delivered");
        }
    });
    assert_clean(&report, "forward/close envelope accounting");
}

/// A victim that refuses to donate (prepare declines) keeps the request
/// pending — the thief still sees it posted and can withdraw cleanly.
#[test]
fn declined_donation_keeps_the_request_pending() {
    let report = check_with(cfg(), || {
        let core = posted();
        let victim = Arc::clone(&core);
        let t = thread::spawn(move || victim.fulfil_request(0, |_| None, |_| {}));
        let outcome = t.join().expect("join victim");
        assert_eq!(outcome, FulfilOutcome::Kept, "decline misreported");
        assert!(
            core.withdraw_request(0, 1),
            "pending request not withdrawable after a decline"
        );
        assert!(
            core.drain_mailbox(1).0.is_empty(),
            "decline still delivered"
        );
    });
    assert_clean(&report, "the declined donation");
}

/// Replay determinism for the steal mutant: equal seeds pin equal failing
/// schedules, traces and messages.
#[test]
fn steal_counterexample_replays_deterministically() {
    fn run() -> Report {
        // Fixed seed on purpose: this test pins exact traces, which the
        // env-var override would (correctly) change.
        let cfg = Config {
            seed: 23,
            ..Config::default()
        };
        check_with(cfg, || {
            let core = posted();
            let victim = Arc::clone(&core);
            let t = thread::spawn(move || victim.fulfil_request(0, |_| Some((42, 0)), |_| {}));
            let (stranded, _) = core.close_mailbox(1);
            let _ = core.withdraw_request(0, 1);
            assert!(stranded.is_empty(), "stream stranded in a closed mailbox");
            let _ = t.join();
        })
    }
    let (first, second) = (run(), run());
    let a = first.counterexample.expect("run 1 caught nothing");
    let b = second.counterexample.expect("run 2 caught nothing");
    assert_eq!(a.schedule, b.schedule, "schedules differ for equal seeds");
    assert_eq!(a.trace, b.trace, "traces differ for equal seeds");
    assert_eq!(a.message, b.message, "messages differ for equal seeds");
}
