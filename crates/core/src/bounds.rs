//! Closed-form network-traffic and throughput bounds (§4.4).
//!
//! The paper models the total execution time of a video stream in terms of
//! the component latencies of Table 1 and derives lower/upper bounds for
//! network traffic (equations 8 and 12) and throughput (equations 14 and 15).
//! These bounds only involve algorithm parameters, latency measurements and
//! message sizes, so they can be computed before running the system; §5.3
//! uses them to choose `MAX_UPDATES` and §6.2/§6.4 validate that measured
//! values stay inside them. This module reproduces the formulae and the
//! parameter-selection procedure.

use crate::config::ShadowTutorConfig;
use serde::{Deserialize, Serialize};
use st_sim::LatencyProfile;

/// Inputs to the §4.4 bound formulae.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundInputs {
    /// Student inference latency `t_si` (s).
    pub t_si: f64,
    /// One distillation step `t_sd` (s).
    pub t_sd: f64,
    /// Teacher inference latency `t_ti` (s).
    pub t_ti: f64,
    /// Network latency of one key-frame exchange `t_net` (s).
    pub t_net: f64,
    /// Data transferred per key frame `s_net` (bytes).
    pub s_net: usize,
}

impl BoundInputs {
    /// Build from a latency profile, a network round-trip time and a
    /// per-key-frame payload size.
    pub fn new(profile: &LatencyProfile, partial: bool, t_net: f64, s_net: usize) -> Self {
        BoundInputs {
            t_si: profile.student_inference,
            t_sd: profile.distill_step(partial),
            t_ti: profile.teacher_inference,
            t_net,
            s_net,
        }
    }

    /// The paper's measured inputs (§5.3): `t_si` = 0.143, `t_sd` = 0.013,
    /// `t_ti` = 0.044, `t_net` = 0.303, `s_net` ≈ 3.032 MB.
    pub fn paper() -> Self {
        BoundInputs {
            t_si: 0.143,
            t_sd: 0.013,
            t_ti: 0.044,
            t_net: 0.303,
            s_net: 3_032_000,
        }
    }
}

/// Network-traffic bounds in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficBounds {
    /// Equation 8: the lower bound (key frames as sparse as possible, no
    /// client concurrency, maximum distillation).
    pub lower_bps: f64,
    /// Equation 12: the upper bound (key frames as dense as possible, zero
    /// distillation steps, full client concurrency).
    pub upper_bps: f64,
}

impl TrafficBounds {
    /// Lower bound in Mbps.
    pub fn lower_mbps(&self) -> f64 {
        self.lower_bps / 1e6
    }

    /// Upper bound in Mbps.
    pub fn upper_mbps(&self) -> f64 {
        self.upper_bps / 1e6
    }

    /// Whether a measured traffic value (Mbps) lies within the bounds.
    pub fn contains_mbps(&self, mbps: f64) -> bool {
        mbps >= self.lower_mbps() - 1e-9 && mbps <= self.upper_mbps() + 1e-9
    }
}

/// Throughput bounds in frames per second.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputBounds {
    /// Equation 14: the lower bound.
    pub lower_fps: f64,
    /// Equation 15: the upper bound.
    pub upper_fps: f64,
}

impl ThroughputBounds {
    /// Whether a measured throughput (FPS) lies within the bounds.
    pub fn contains_fps(&self, fps: f64) -> bool {
        fps >= self.lower_fps - 1e-9 && fps <= self.upper_fps + 1e-9
    }
}

/// Network traffic lower/upper bounds (equations 8 and 12).
pub fn traffic_bounds(config: &ShadowTutorConfig, inputs: &BoundInputs) -> TrafficBounds {
    let bits = inputs.s_net as f64 * 8.0;
    let lower_denom = config.max_stride as f64 * inputs.t_si
        + config.max_updates as f64 * inputs.t_sd
        + inputs.t_ti
        + inputs.t_net;
    let upper_denom = (config.min_stride as f64 * inputs.t_si).max(inputs.t_net + inputs.t_ti);
    TrafficBounds {
        lower_bps: bits / lower_denom,
        upper_bps: bits / upper_denom,
    }
}

/// Throughput lower/upper bounds (equations 14 and 15).
pub fn throughput_bounds(config: &ShadowTutorConfig, inputs: &BoundInputs) -> ThroughputBounds {
    let min_s = config.min_stride as f64;
    let max_s = config.max_stride as f64;
    let lower = min_s
        / (min_s * inputs.t_si
            + config.max_updates as f64 * inputs.t_sd
            + inputs.t_ti
            + inputs.t_net);
    let upper = max_s
        / ((max_s - min_s) * inputs.t_si + (min_s * inputs.t_si).max(inputs.t_net + inputs.t_ti));
    ThroughputBounds {
        lower_fps: lower,
        upper_fps: upper,
    }
}

/// The §5.3 parameter-selection procedure: the largest `MAX_UPDATES` whose
/// throughput lower bound stays above `min_fps`.
pub fn choose_max_updates(
    config: &ShadowTutorConfig,
    inputs: &BoundInputs,
    min_fps: f64,
    search_limit: usize,
) -> Option<usize> {
    (1..=search_limit).rev().find(|&max_updates| {
        let candidate = ShadowTutorConfig {
            max_updates,
            ..*config
        };
        throughput_bounds(&candidate, inputs).lower_fps > min_fps
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_throughput_bounds_match_section_5_3() {
        // §5.3: with the measured latencies the maximum throughput is 6.99
        // FPS, and MAX_UPDATES = 8 keeps the lower bound above 5 FPS.
        let config = ShadowTutorConfig::paper();
        let inputs = BoundInputs::paper();
        let bounds = throughput_bounds(&config, &inputs);
        assert!(
            (bounds.upper_fps - 6.99).abs() < 0.05,
            "upper {}",
            bounds.upper_fps
        );
        assert!(bounds.lower_fps > 5.0, "lower {}", bounds.lower_fps);
        assert!(bounds.lower_fps < bounds.upper_fps);
    }

    #[test]
    // 3.14 below is a Table 5 measurement in Mbps, not an approximation of pi.
    #[allow(clippy::approx_constant)]
    fn paper_traffic_bounds_match_section_6_2() {
        // §6.2: traffic bounds of 2.53 Mbps and 21.2 Mbps.
        let config = ShadowTutorConfig::paper();
        let inputs = BoundInputs::paper();
        let bounds = traffic_bounds(&config, &inputs);
        assert!(
            (bounds.lower_mbps() - 2.53).abs() < 0.1,
            "lower {}",
            bounds.lower_mbps()
        );
        assert!(
            (bounds.upper_mbps() - 21.2).abs() < 0.8,
            "upper {}",
            bounds.upper_mbps()
        );
        // The paper's measured averages (Table 5) lie inside.
        for measured in [7.51, 3.14, 12.27, 4.06, 5.51, 18.19, 8.70, 6.19] {
            assert!(bounds.contains_mbps(measured), "{measured} outside bounds");
        }
    }

    #[test]
    fn max_updates_selection_reproduces_paper_choice() {
        // §5.3: the largest MAX_UPDATES keeping the lower bound above 5 FPS is 8.
        let config = ShadowTutorConfig::paper();
        let inputs = BoundInputs::paper();
        assert_eq!(choose_max_updates(&config, &inputs, 5.0, 64), Some(8));
    }

    #[test]
    fn bounds_shift_sensibly_with_network_latency() {
        let config = ShadowTutorConfig::paper();
        let fast = BoundInputs {
            t_net: 0.05,
            ..BoundInputs::paper()
        };
        let slow = BoundInputs {
            t_net: 3.0,
            ..BoundInputs::paper()
        };
        let tp_fast = throughput_bounds(&config, &fast);
        let tp_slow = throughput_bounds(&config, &slow);
        assert!(tp_fast.lower_fps > tp_slow.lower_fps);
        assert!(tp_fast.upper_fps >= tp_slow.upper_fps);
        let tr_fast = traffic_bounds(&config, &fast);
        let tr_slow = traffic_bounds(&config, &slow);
        assert!(tr_fast.upper_bps > tr_slow.upper_bps);
    }

    #[test]
    fn lower_bounds_never_exceed_upper_bounds() {
        let config = ShadowTutorConfig::paper();
        for t_net in [0.01, 0.1, 0.3, 1.0, 5.0] {
            for s_net in [100_000usize, 1_000_000, 5_000_000] {
                let inputs = BoundInputs {
                    t_net,
                    s_net,
                    ..BoundInputs::paper()
                };
                let tp = throughput_bounds(&config, &inputs);
                assert!(tp.lower_fps <= tp.upper_fps + 1e-12);
                let tr = traffic_bounds(&config, &inputs);
                assert!(tr.lower_bps <= tr.upper_bps + 1e-12);
            }
        }
    }

    #[test]
    fn bound_inputs_from_profile() {
        let prof = LatencyProfile::paper();
        let inputs = BoundInputs::new(&prof, true, 0.3, 3_000_000);
        assert_eq!(inputs.t_sd, prof.distill_step_partial);
        let inputs_full = BoundInputs::new(&prof, false, 0.3, 3_000_000);
        assert!(inputs_full.t_sd > inputs.t_sd);
    }

    #[test]
    fn containment_helpers() {
        let tb = ThroughputBounds {
            lower_fps: 2.0,
            upper_fps: 7.0,
        };
        assert!(tb.contains_fps(5.0));
        assert!(!tb.contains_fps(1.0));
        assert!(!tb.contains_fps(8.0));
    }
}
