//! Open-loop skewed load generation against a live [`ServerPool`].
//!
//! The cooperative client of Algorithm 4 sends at most one key frame per
//! stride, so it can never expose unfairness in the pool. This module drives
//! the pool with *raw* [`StreamClient`] endpoints instead: every stream
//! sends key frames on a fixed open-loop schedule, and one **hot** stream
//! sends at a multiple of the base rate — the adversarial arrival pattern
//! the paper's §4.4 concurrency analysis (and our
//! [`st_sim::ContentionModel`]) assumes away. The generator measures what
//! each stream actually experienced: client-observed round trips per
//! serviced key frame, plus throttle/drop counts from the pool's admission
//! control.
//!
//! Used by the fairness end-to-end tests and the `table9_skewed_streams`
//! bench; [`PacedTeacher`] makes the teacher's wall-clock cost real (and
//! sub-linear in batch size) so queueing is physical rather than simulated.

use crate::config::ShadowTutorConfig;
use crate::serve::{PoolConfig, PoolStats, ServerPool, StreamClient};
use crate::Result;
use st_net::transport::ClientEndpoint;
use st_net::{ClientToServer, Payload, ServerToClient, StreamId, TransportError};
use st_nn::student::StudentNet;
use st_teacher::Teacher;
use st_tensor::TensorError;
use st_video::dataset::tiny_stream;
use st_video::{Frame, SceneKind};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// A teacher whose forward passes cost real wall-clock time.
///
/// Wraps any [`Teacher`] and sleeps `forward_pause` per solo forward; a
/// batched forward sleeps `forward_pause * (1 + 0.2 (b - 1))` — the same
/// sub-linear shape as the default virtual
/// [`Teacher::batched_inference_latency`] — so co-scheduling pays off in
/// wall-clock terms too. The *virtual* latencies still come from the inner
/// teacher, keeping the analytic accounting unchanged.
pub struct PacedTeacher<T: Teacher> {
    inner: T,
    forward_pause: Duration,
}

impl<T: Teacher> PacedTeacher<T> {
    /// Pace `inner` at `forward_pause` wall-clock per solo forward.
    pub fn new(inner: T, forward_pause: Duration) -> Self {
        PacedTeacher {
            inner,
            forward_pause,
        }
    }
}

impl<T: Teacher> Teacher for PacedTeacher<T> {
    fn pseudo_label(&mut self, frame: &Frame) -> st_teacher::Result<Vec<usize>> {
        std::thread::sleep(self.forward_pause);
        self.inner.pseudo_label(frame)
    }

    fn pseudo_label_batch(&mut self, frames: &[&Frame]) -> st_teacher::Result<Vec<Vec<usize>>> {
        if !frames.is_empty() {
            let scaled = 1.0 + 0.2 * (frames.len() as f64 - 1.0);
            std::thread::sleep(self.forward_pause.mul_f64(scaled));
        }
        frames.iter().map(|f| self.inner.pseudo_label(f)).collect()
    }

    fn inference_latency(&self) -> f64 {
        self.inner.inference_latency()
    }

    fn batched_inference_latency(&self, batch: usize) -> f64 {
        self.inner.batched_inference_latency(batch)
    }

    fn param_count(&self) -> usize {
        self.inner.param_count()
    }
}

/// Parameters of one skewed-load run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewedLoadSpec {
    /// Total client streams; stream 0 is the hot one.
    pub streams: usize,
    /// The hot stream sends this multiple of the base key-frame rate
    /// (1 = uniform load).
    pub hot_multiplier: usize,
    /// Key frames each *cold* stream sends (the hot stream sends
    /// `hot_multiplier` times as many over the same wall-clock window).
    pub key_frames_per_stream: usize,
    /// Gap between a cold stream's sends — the base inter-arrival time.
    pub send_interval: Duration,
    /// Seed for the synthetic frame content.
    pub seed: u64,
}

impl SkewedLoadSpec {
    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.streams == 0 || self.hot_multiplier == 0 || self.key_frames_per_stream == 0 {
            return Err(TensorError::InvalidArgument(
                "skewed load needs at least one stream, 1x multiplier, one key frame".into(),
            ));
        }
        Ok(())
    }
}

/// One stream's client-side view of a skewed-load run.
#[derive(Debug, Clone)]
pub struct StreamLoadReport {
    /// The stream.
    pub stream_id: StreamId,
    /// Whether this was the hot stream.
    pub hot: bool,
    /// Key frames sent.
    pub sent: usize,
    /// `StudentUpdate`s received.
    pub updates: usize,
    /// `Throttle`s received (admission control rejected the key frame).
    pub throttled: usize,
    /// `Dropped`s received.
    pub dropped: usize,
    /// `NeedFrame`s answered with a re-upload (the pool evicted the frame
    /// from its bounded cache and asked for it back).
    pub reshared: usize,
    /// Client-observed round trip (send → update) per serviced key frame,
    /// in seconds, in completion order. A re-shared frame's round trip spans
    /// the whole recovery exchange.
    pub round_trips: Vec<f64>,
}

impl StreamLoadReport {
    /// Mean round trip over the serviced key frames (0.0 when none).
    pub fn mean_round_trip(&self) -> f64 {
        if self.round_trips.is_empty() {
            0.0
        } else {
            self.round_trips.iter().sum::<f64>() / self.round_trips.len() as f64
        }
    }

    /// The `p`-th percentile round trip (`p` in `[0, 100]`; 0.0 when no key
    /// frame was serviced).
    pub fn percentile_round_trip(&self, p: f64) -> f64 {
        percentile(&self.round_trips, p)
    }
}

/// The `p`-th percentile of an unsorted sample by nearest-rank rounding
/// (`p` in `[0, 100]`; 0.0 when the sample is empty). Shared by the
/// per-stream reports here and the Table 9 aggregation in `st-bench`.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
    let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
    sorted[rank.round() as usize]
}

/// Outcome of a skewed-load run: per-stream client measurements plus the
/// pool's own statistics.
#[derive(Debug)]
pub struct SkewedLoadOutcome {
    /// Per-stream reports, indexed by stream id (stream 0 is hot).
    pub streams: Vec<StreamLoadReport>,
    /// Server-pool statistics (per-stream waits, throttles, drops).
    pub pool: PoolStats,
    /// Wall-clock duration of the run in seconds.
    pub wall_time: f64,
}

impl SkewedLoadOutcome {
    /// The hot stream's report.
    pub fn hot(&self) -> &StreamLoadReport {
        &self.streams[0]
    }

    /// The cold streams' reports.
    pub fn cold(&self) -> &[StreamLoadReport] {
        &self.streams[1..]
    }
}

const SCENES: [SceneKind; 3] = [SceneKind::People, SceneKind::Animals, SceneKind::Street];

/// Drive a pool with `spec.streams` open-loop clients, stream 0 sending
/// `spec.hot_multiplier`× the base key-frame rate, and collect per-stream
/// round trips plus pool statistics.
pub fn run_skewed_load<T, F>(
    config: ShadowTutorConfig,
    pool_config: PoolConfig,
    student: StudentNet,
    distill_step_latency: f64,
    teacher_factory: F,
    spec: SkewedLoadSpec,
) -> Result<SkewedLoadOutcome>
where
    T: Teacher + Send + 'static,
    F: FnMut(usize) -> T,
{
    spec.validate()?;
    config.validate()?;
    pool_config.validate()?;
    let started = Instant::now();
    let pool = ServerPool::spawn(
        config,
        pool_config,
        student,
        distill_step_latency,
        teacher_factory,
    )?;

    // Connect every stream up front so placement is deterministic in id
    // order, then drive each client on its own thread. Each stream gets one
    // distinct frame per send so round trips match unambiguously by index.
    let mut clients: Vec<StreamClient> = Vec::with_capacity(spec.streams);
    let mut frame_sets: Vec<Vec<Frame>> = Vec::with_capacity(spec.streams);
    for s in 0..spec.streams {
        let sends = spec.key_frames_per_stream * if s == 0 { spec.hot_multiplier } else { 1 };
        let frames = tiny_stream(SCENES[s % SCENES.len()], spec.seed + s as u64, sends);
        clients.push(pool.connect(s as u64, &frames)?);
        frame_sets.push(frames);
    }

    let mut reports: Vec<Result<StreamLoadReport>> = Vec::with_capacity(spec.streams);
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(spec.streams);
        for (s, (client, frames)) in clients.into_iter().zip(frame_sets).enumerate() {
            let hot = s == 0;
            let interval = if hot {
                spec.send_interval / spec.hot_multiplier as u32
            } else {
                spec.send_interval
            };
            handles.push(
                scope.spawn(move || drive_open_loop(client, frames, interval, s as u64, hot)),
            );
        }
        for handle in handles {
            reports.push(handle.join().unwrap_or_else(|_| {
                Err(TensorError::InvalidArgument(
                    "load-generator client thread panicked".into(),
                ))
            }));
        }
    });

    let pool_stats = pool.join()?;
    let wall_time = started.elapsed().as_secs_f64();
    let streams = reports.into_iter().collect::<Result<Vec<_>>>()?;
    Ok(SkewedLoadOutcome {
        streams,
        pool: pool_stats,
        wall_time,
    })
}

/// One open-loop client: send every frame on the fixed schedule, absorbing
/// responses as they arrive (including `NeedFrame` recovery requests, which
/// are answered by re-uploading the frame), then drain the tail and shut
/// down.
fn drive_open_loop(
    mut client: StreamClient,
    frames: Vec<Frame>,
    interval: Duration,
    stream_id: StreamId,
    hot: bool,
) -> Result<StreamLoadReport> {
    let mut report = StreamLoadReport {
        stream_id,
        hot,
        sent: 0,
        updates: 0,
        throttled: 0,
        dropped: 0,
        reshared: 0,
        round_trips: Vec::with_capacity(frames.len()),
    };
    // The initial checkpoint arrives first.
    client
        .recv_timeout(Duration::from_secs(30))
        .map_err(|e| TensorError::InvalidArgument(format!("no initial checkpoint: {e:?}")))?;

    let by_index: HashMap<usize, &Frame> = frames.iter().map(|f| (f.index, f)).collect();
    let mut sent_at: HashMap<usize, Instant> = HashMap::with_capacity(frames.len());
    let mut outstanding = 0usize;
    let mut reshare_queue: Vec<usize> = Vec::new();
    for frame in &frames {
        let payload = Payload::sized(frame.raw_rgb_bytes());
        let bytes = payload.bytes;
        sent_at.insert(frame.index, Instant::now());
        client
            .send(
                ClientToServer::KeyFrame {
                    frame_index: frame.index,
                    payload,
                },
                bytes,
            )
            .map_err(|e| TensorError::InvalidArgument(format!("uplink send failed: {e:?}")))?;
        report.sent += 1;
        outstanding += 1;
        while let Ok(Some(message)) = client.try_recv() {
            absorb(
                message,
                &mut sent_at,
                &mut report,
                &mut outstanding,
                &mut reshare_queue,
            );
        }
        answer_reshares(&mut client, &by_index, &mut reshare_queue, &mut report)?;
        std::thread::sleep(interval);
    }
    // The pool answers every key frame (update, throttle, or drop ack);
    // wait for the stragglers before shutting the stream down.
    let deadline = Instant::now() + Duration::from_secs(30);
    while outstanding > 0 && Instant::now() < deadline {
        match client.recv_timeout(Duration::from_millis(200)) {
            Ok(message) => absorb(
                message,
                &mut sent_at,
                &mut report,
                &mut outstanding,
                &mut reshare_queue,
            ),
            Err(TransportError::Timeout) => continue,
            Err(_) => break,
        }
        answer_reshares(&mut client, &by_index, &mut reshare_queue, &mut report)?;
    }
    client.send(ClientToServer::Shutdown, 1).ok();
    Ok(report)
}

/// Parameters of one uniform open-loop capacity run
/// ([`run_capacity_load`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityLoadSpec {
    /// Concurrent client streams, all sending at the same mean rate.
    pub streams: usize,
    /// Key frames each stream sends.
    pub key_frames_per_stream: usize,
    /// Mean gap between a stream's sends. Actual gaps are jittered
    /// uniformly in `[0.5, 1.5]` of this and phases are randomized, so
    /// arrivals are bursty the way independent clients are — the regime
    /// where a pooled worker set absorbs what a partitioned one queues.
    pub send_interval: Duration,
    /// Seed for frame content, phases and jitter (runs are deterministic
    /// on the arrival side; service timing is real wall clock).
    pub seed: u64,
}

impl CapacityLoadSpec {
    /// Validate parameter consistency.
    pub fn validate(&self) -> Result<()> {
        if self.streams == 0 || self.key_frames_per_stream == 0 {
            return Err(TensorError::InvalidArgument(
                "capacity load needs at least one stream and one key frame".into(),
            ));
        }
        if self.send_interval.is_zero() {
            return Err(TensorError::InvalidArgument(
                "capacity load needs a non-zero send interval".into(),
            ));
        }
        Ok(())
    }
}

/// Outcome of a capacity run: the pooled round-trip sample across all
/// streams plus the pool's own statistics.
#[derive(Debug)]
pub struct CapacityLoadOutcome {
    /// Client-observed round trips (send → update) of every serviced key
    /// frame across all streams, seconds.
    pub round_trips: Vec<f64>,
    /// `StudentUpdate`s received across all streams.
    pub updates: usize,
    /// `Throttle`s received across all streams.
    pub throttled: usize,
    /// `Dropped`s received across all streams.
    pub dropped: usize,
    /// Server-pool statistics.
    pub pool: PoolStats,
    /// Wall-clock duration of the run in seconds.
    pub wall_time: f64,
}

impl CapacityLoadOutcome {
    /// The `p`-th percentile round trip in seconds.
    pub fn percentile_round_trip(&self, p: f64) -> f64 {
        percentile(&self.round_trips, p)
    }

    /// Mean server-side service time per key frame, from the pool's busy
    /// accounting — what the analytic model should be fed.
    pub fn mean_service_secs(&self) -> f64 {
        let report = self.pool.snapshot();
        let key_frames = report.total_key_frames.max(1);
        let busy: f64 = report.shards.iter().map(|s| s.busy_secs).sum();
        busy / key_frames as f64
    }

    /// The `p`-th percentile *queue wait*: round trip minus the mean
    /// service time, floored at zero. Coarse (per-frame service varies a
    /// little), but consistent across topologies.
    pub fn percentile_queue_wait(&self, p: f64) -> f64 {
        (self.percentile_round_trip(p) - self.mean_service_secs()).max(0.0)
    }
}

/// One stream's client-side state inside the single-threaded capacity
/// driver.
struct OpenLoopStream {
    client: StreamClient,
    frames: Vec<Frame>,
    cursor: usize,
    next_send: Instant,
    report: StreamLoadReport,
    sent_at: HashMap<usize, Instant>,
    outstanding: usize,
    reshare_queue: Vec<usize>,
}

/// Deterministic xorshift64* generator for phases and jitter — keeps the
/// arrival schedule reproducible without pulling a rand dependency into
/// the core crate. Also seeds the client driver's reconnect backoff jitter,
/// so retry storms stay reproducible under a fixed seed.
pub(crate) struct JitterRng(u64);

impl JitterRng {
    pub(crate) fn new(seed: u64) -> Self {
        JitterRng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }

    /// Uniform in `[0, 1)`.
    pub(crate) fn unit(&mut self) -> f64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drive `spec.streams` uniform open-loop clients against the pool from
/// **one** thread, multiplexing all endpoints — the client-side harness of
/// the `table12_capacity` experiment, able to host hundreds of mostly-idle
/// streams without an OS thread each (the thread-per-client
/// [`run_skewed_load`] harness would hit thread limits first).
///
/// Every stream sends `key_frames_per_stream` key frames at jittered
/// intervals around `send_interval`, with randomized phases. Round trips,
/// throttle/drop counts and reshare recoveries are folded into one pooled
/// sample across streams (the population is uniform, so per-stream
/// attribution adds nothing).
pub fn run_capacity_load<T, F>(
    config: ShadowTutorConfig,
    pool_config: PoolConfig,
    student: StudentNet,
    distill_step_latency: f64,
    teacher_factory: F,
    spec: CapacityLoadSpec,
) -> Result<CapacityLoadOutcome>
where
    T: Teacher + Send + 'static,
    F: FnMut(usize) -> T,
{
    spec.validate()?;
    config.validate()?;
    pool_config.validate()?;
    let started = Instant::now();
    let pool = ServerPool::spawn(
        config,
        pool_config,
        student,
        distill_step_latency,
        teacher_factory,
    )?;

    let mut rng = JitterRng::new(spec.seed);
    let interval = spec.send_interval.as_secs_f64();
    let origin = Instant::now();
    let mut streams: Vec<OpenLoopStream> = Vec::with_capacity(spec.streams);
    for s in 0..spec.streams {
        let frames = tiny_stream(
            SCENES[s % SCENES.len()],
            spec.seed + s as u64,
            spec.key_frames_per_stream,
        );
        let client = pool.connect(s as u64, &frames)?;
        // Random phase in [0, interval): without it all streams would fire
        // in lockstep and the first tick would measure a thundering herd
        // instead of steady-state queueing.
        let phase = Duration::from_secs_f64(interval * rng.unit());
        streams.push(OpenLoopStream {
            client,
            frames,
            cursor: 0,
            next_send: origin + phase,
            report: StreamLoadReport {
                stream_id: s as u64,
                hot: false,
                sent: 0,
                updates: 0,
                throttled: 0,
                dropped: 0,
                reshared: 0,
                round_trips: Vec::with_capacity(spec.key_frames_per_stream),
            },
            sent_at: HashMap::with_capacity(spec.key_frames_per_stream),
            outstanding: 0,
            reshare_queue: Vec::new(),
        });
    }

    let mut drain_deadline: Option<Instant> = None;
    loop {
        let now = Instant::now();
        let mut all_sent = true;
        let mut any_outstanding = false;
        for stream in streams.iter_mut() {
            while stream.cursor < stream.frames.len() && now >= stream.next_send {
                let frame = &stream.frames[stream.cursor];
                let payload = Payload::sized(frame.raw_rgb_bytes());
                let bytes = payload.bytes;
                stream.sent_at.insert(frame.index, Instant::now());
                stream
                    .client
                    .send(
                        ClientToServer::KeyFrame {
                            frame_index: frame.index,
                            payload,
                        },
                        bytes,
                    )
                    .map_err(|e| {
                        TensorError::InvalidArgument(format!("uplink send failed: {e:?}"))
                    })?;
                stream.report.sent += 1;
                stream.outstanding += 1;
                stream.cursor += 1;
                // Jittered gap in [0.5, 1.5] of the mean interval.
                let gap = interval * (0.5 + rng.unit());
                stream.next_send += Duration::from_secs_f64(gap);
            }
            while let Ok(Some(message)) = stream.client.try_recv() {
                absorb(
                    message,
                    &mut stream.sent_at,
                    &mut stream.report,
                    &mut stream.outstanding,
                    &mut stream.reshare_queue,
                );
            }
            if !stream.reshare_queue.is_empty() {
                let by_index: HashMap<usize, &Frame> =
                    stream.frames.iter().map(|f| (f.index, f)).collect();
                answer_reshares(
                    &mut stream.client,
                    &by_index,
                    &mut stream.reshare_queue,
                    &mut stream.report,
                )?;
            }
            if stream.cursor < stream.frames.len() {
                all_sent = false;
            }
            if stream.outstanding > 0 {
                any_outstanding = true;
            }
        }
        if all_sent {
            if !any_outstanding {
                break;
            }
            // The pool answers every key frame; bound the tail drain anyway
            // so a lost ack cannot hang the bench.
            let deadline =
                *drain_deadline.get_or_insert_with(|| Instant::now() + Duration::from_secs(30));
            if Instant::now() >= deadline {
                break;
            }
        }
        std::thread::sleep(Duration::from_micros(500));
    }

    let mut outcome_round_trips = Vec::new();
    let mut updates = 0;
    let mut throttled = 0;
    let mut dropped = 0;
    for mut stream in streams {
        stream.client.send(ClientToServer::Shutdown, 1).ok();
        outcome_round_trips.extend(stream.report.round_trips.iter().copied());
        updates += stream.report.updates;
        throttled += stream.report.throttled;
        dropped += stream.report.dropped;
        // Dropping the client closes the stream's downlink registration.
        drop(stream.client);
    }

    let pool_stats = pool.join()?;
    let wall_time = started.elapsed().as_secs_f64();
    Ok(CapacityLoadOutcome {
        round_trips: outcome_round_trips,
        updates,
        throttled,
        dropped,
        pool: pool_stats,
        wall_time,
    })
}

/// Re-upload every frame the server asked back for.
fn answer_reshares(
    client: &mut StreamClient,
    by_index: &HashMap<usize, &Frame>,
    reshare_queue: &mut Vec<usize>,
    report: &mut StreamLoadReport,
) -> Result<()> {
    for frame_index in reshare_queue.drain(..) {
        let Some(frame) = by_index.get(&frame_index) else {
            // The server asked for a frame we never had; the pending job
            // will be drop-acked at stream end. Nothing to upload.
            continue;
        };
        client
            .reshare(frame)
            .map_err(|e| TensorError::InvalidArgument(format!("reshare failed: {e:?}")))?;
        report.reshared += 1;
    }
    Ok(())
}

/// Fold one downlink message into the stream's report.
fn absorb(
    message: ServerToClient,
    sent_at: &mut HashMap<usize, Instant>,
    report: &mut StreamLoadReport,
    outstanding: &mut usize,
    reshare_queue: &mut Vec<usize>,
) {
    match message {
        ServerToClient::StudentUpdate { frame_index, .. } => {
            if let Some(t0) = sent_at.remove(&frame_index) {
                report.round_trips.push(t0.elapsed().as_secs_f64());
            }
            report.updates += 1;
            *outstanding = outstanding.saturating_sub(1);
        }
        ServerToClient::Throttle { frame_index } => {
            sent_at.remove(&frame_index);
            report.throttled += 1;
            *outstanding = outstanding.saturating_sub(1);
        }
        ServerToClient::Dropped { frame_index, .. } => {
            sent_at.remove(&frame_index);
            report.dropped += 1;
            *outstanding = outstanding.saturating_sub(1);
        }
        // The frame is still outstanding — its StudentUpdate arrives after
        // the re-upload, so the measured round trip covers the recovery.
        ServerToClient::NeedFrame { frame_index } => reshare_queue.push(frame_index),
        ServerToClient::InitialStudent { .. } => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;

    #[test]
    fn spec_validation_rejects_degenerate_loads() {
        let good = SkewedLoadSpec {
            streams: 2,
            hot_multiplier: 4,
            key_frames_per_stream: 3,
            send_interval: Duration::from_millis(5),
            seed: 1,
        };
        assert!(good.validate().is_ok());
        assert!(SkewedLoadSpec { streams: 0, ..good }.validate().is_err());
        assert!(SkewedLoadSpec {
            hot_multiplier: 0,
            ..good
        }
        .validate()
        .is_err());
        assert!(SkewedLoadSpec {
            key_frames_per_stream: 0,
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn capacity_spec_validation_rejects_degenerate_loads() {
        let good = CapacityLoadSpec {
            streams: 4,
            key_frames_per_stream: 2,
            send_interval: Duration::from_millis(5),
            seed: 3,
        };
        assert!(good.validate().is_ok());
        assert!(CapacityLoadSpec { streams: 0, ..good }.validate().is_err());
        assert!(CapacityLoadSpec {
            key_frames_per_stream: 0,
            ..good
        }
        .validate()
        .is_err());
        assert!(CapacityLoadSpec {
            send_interval: Duration::ZERO,
            ..good
        }
        .validate()
        .is_err());
    }

    #[test]
    fn capacity_load_multiplexes_many_streams_from_one_thread() {
        use crate::serve::PoolConfig;
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        // 12 streams on 12 shards hosted by 2 reactor workers, all driven
        // by this one test thread.
        let outcome = run_capacity_load(
            ShadowTutorConfig {
                max_updates: 1,
                ..ShadowTutorConfig::paper()
            },
            PoolConfig {
                shards: 12,
                reactor_threads: Some(2),
                max_in_flight: 64,
                recv_timeout: Duration::from_millis(100),
                ..PoolConfig::default_pool()
            },
            student,
            0.001,
            |shard| OracleTeacher::perfect(9000 + shard as u64),
            CapacityLoadSpec {
                streams: 12,
                key_frames_per_stream: 3,
                send_interval: Duration::from_millis(10),
                seed: 42,
            },
        )
        .unwrap();
        // Every key frame was serviced with a measured round trip.
        assert_eq!(outcome.updates, 36);
        assert_eq!(outcome.round_trips.len(), 36);
        assert_eq!(outcome.throttled, 0);
        assert_eq!(outcome.dropped, 0);
        assert!(outcome.round_trips.iter().all(|&rt| rt > 0.0));
        assert!(outcome.mean_service_secs() > 0.0);
        assert!(outcome.percentile_round_trip(99.0) >= outcome.percentile_round_trip(50.0));
        let report = outcome.pool.snapshot();
        assert_eq!(report.total_key_frames, 36);
        assert!(report.poll_wakeups > 0, "reactor drivers were exercised");
    }

    #[test]
    fn paced_teacher_passes_through_labels_and_latencies() {
        let frames = tiny_stream(SceneKind::People, 7, 1);
        let mut inner = OracleTeacher::perfect(7);
        let expected = inner.pseudo_label(&frames[0]).unwrap();
        let mut paced = PacedTeacher::new(OracleTeacher::perfect(7), Duration::from_micros(10));
        assert_eq!(paced.pseudo_label(&frames[0]).unwrap(), expected);
        let batched = paced.pseudo_label_batch(&[&frames[0]]).unwrap();
        assert_eq!(batched[0], expected);
        assert_eq!(paced.inference_latency(), inner.inference_latency());
        assert_eq!(
            paced.batched_inference_latency(3),
            inner.batched_inference_latency(3)
        );
        assert_eq!(paced.param_count(), inner.param_count());
    }

    #[test]
    fn percentiles_interpolate_the_sample_ranks() {
        let report = StreamLoadReport {
            stream_id: 0,
            hot: false,
            sent: 5,
            updates: 5,
            throttled: 0,
            dropped: 0,
            reshared: 0,
            round_trips: vec![0.5, 0.1, 0.3, 0.2, 0.4],
        };
        assert!((report.mean_round_trip() - 0.3).abs() < 1e-12);
        assert!((report.percentile_round_trip(0.0) - 0.1).abs() < 1e-12);
        assert!((report.percentile_round_trip(50.0) - 0.3).abs() < 1e-12);
        assert!((report.percentile_round_trip(100.0) - 0.5).abs() < 1e-12);
        let empty = StreamLoadReport {
            round_trips: Vec::new(),
            ..report
        };
        assert_eq!(empty.percentile_round_trip(99.0), 0.0);
        assert_eq!(empty.mean_round_trip(), 0.0);
    }

    #[test]
    fn budgeted_pool_recovers_evicted_frames_via_reshare() {
        use crate::serve::FrameStore;
        let probe = tiny_stream(SceneKind::People, 90, 1);
        let budget = 2 * FrameStore::frame_cost(&probe[0]);
        let outcome = run_skewed_load(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 1,
                recv_timeout: Duration::from_millis(200),
                // Room for two frames per stream; each stream pre-shares
                // six, so most key frames hit an evicted slot and must be
                // recovered through NeedFrame → ReShare. Parked jobs hold
                // their admission slots, so the cap is lifted to keep this
                // test about recovery, not backpressure.
                frame_budget_bytes: Some(budget),
                max_in_flight: 16,
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |_| OracleTeacher::perfect(12),
            SkewedLoadSpec {
                streams: 2,
                hot_multiplier: 1,
                key_frames_per_stream: 6,
                send_interval: Duration::from_millis(4),
                seed: 91,
            },
        )
        .unwrap();
        // Every key frame was still serviced — eviction costs bandwidth and
        // latency, never answers.
        for report in &outcome.streams {
            assert_eq!(report.updates, report.sent, "stream {}", report.stream_id);
        }
        assert_eq!(outcome.pool.dropped_jobs(), 0);
        // Evictions really happened and were really recovered.
        assert!(outcome.pool.frame_evictions() > 0);
        assert!(outcome.pool.reshared_frames() > 0);
        assert!(outcome.streams.iter().map(|r| r.reshared).sum::<usize>() > 0);
        // The budget invariant held at every point of the run.
        assert!(outcome.pool.frame_bytes_peak() <= budget);
    }

    #[test]
    fn skewed_load_accounts_for_every_key_frame() {
        let outcome = run_skewed_load(
            ShadowTutorConfig::paper(),
            PoolConfig {
                shards: 1,
                recv_timeout: Duration::from_millis(200),
                ..PoolConfig::default_pool()
            },
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |_| OracleTeacher::perfect(11),
            SkewedLoadSpec {
                streams: 2,
                hot_multiplier: 2,
                key_frames_per_stream: 3,
                send_interval: Duration::from_millis(4),
                seed: 90,
            },
        )
        .unwrap();
        assert_eq!(outcome.streams.len(), 2);
        assert!(outcome.hot().hot);
        assert_eq!(outcome.cold().len(), 1);
        assert_eq!(outcome.hot().sent, 6);
        assert_eq!(outcome.cold()[0].sent, 3);
        for report in &outcome.streams {
            // Every key frame was answered: update, throttle, or drop ack.
            assert_eq!(
                report.updates + report.throttled + report.dropped,
                report.sent,
                "stream {} lost answers",
                report.stream_id
            );
            assert_eq!(report.round_trips.len(), report.updates);
            assert!(report.round_trips.iter().all(|rt| *rt >= 0.0));
        }
        // Nothing in this scenario is unservable.
        assert_eq!(outcome.pool.dropped_jobs(), 0);
        assert!(outcome.wall_time > 0.0);
    }
}
