//! Algorithm parameters and the paper's constants.

use serde::{Deserialize, Serialize};
use st_nn::student::FreezePoint;

/// Whether distillation trains the whole student or only its back-end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistillationMode {
    /// Partial distillation (§4.2): the front of the student is frozen; only
    /// the decoder/head is trained, and only those weights cross the network.
    Partial,
    /// Full distillation: every parameter is trained and transmitted
    /// (the paper's comparison baseline).
    Full,
}

impl DistillationMode {
    /// The freeze point a student should use under this mode.
    pub fn freeze_point(self) -> FreezePoint {
        match self {
            DistillationMode::Partial => FreezePoint::paper_partial(),
            DistillationMode::Full => FreezePoint::None,
        }
    }

    /// Short label used in tables.
    pub fn label(self) -> &'static str {
        match self {
            DistillationMode::Partial => "partial",
            DistillationMode::Full => "full",
        }
    }
}

/// How the multi-stream server pool assigns a newly connecting stream to a
/// shard — and whether that assignment can change afterwards.
///
/// Under `LeastLoaded` and `StaticModulo`, placement is decided once, at
/// `ServerPool::connect` time, and a stream never migrates; `Rebalance`
/// additionally lets an idle shard *steal* streams from the most-loaded one
/// at runtime. The policy lives here, next to the algorithm parameters,
/// because it changes which experiments are reproducible run-to-run:
/// static-modulo placement is a pure function of the stream id, least-loaded
/// depends on connect order and on which earlier streams have already
/// finished, and rebalancing additionally depends on wall-clock load — which
/// is exactly why stealing is opt-in, so `StaticModulo` reproductions stay
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// Route to the shard with the fewest currently registered sessions,
    /// breaking ties toward the lowest shard index. This is the production
    /// default: it keeps skewed stream populations (e.g. many short streams
    /// plus a few long-lived ones) from piling onto one worker.
    #[default]
    LeastLoaded,
    /// The original static assignment `stream_id % shards` — a pure function
    /// of the id, kept for bit-reproducible experiment layouts.
    StaticModulo,
    /// `LeastLoaded` at connect time, plus cross-shard **work stealing** at
    /// runtime: a shard whose drain loop goes idle pulls whole streams
    /// (session, frame cache and queued jobs) from the shard with the
    /// deepest backlog, so a hot stream cannot pin its shard-mates behind it
    /// while other workers sit idle.
    Rebalance,
}

impl PlacementPolicy {
    /// Short label used in tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::StaticModulo => "static-modulo",
            PlacementPolicy::Rebalance => "rebalance",
        }
    }
}

/// Field-by-field little-endian encoding in declaration order, with the
/// distillation mode as a tagged byte (0 = partial, 1 = full) so a peer
/// process can reconstruct the exact algorithm parameters of a run.
impl st_net::Wire for ShadowTutorConfig {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.threshold.encode_into(out);
        self.min_stride.encode_into(out);
        self.max_stride.encode_into(out);
        self.max_updates.encode_into(out);
        out.push(match self.mode {
            DistillationMode::Partial => 0,
            DistillationMode::Full => 1,
        });
        self.learning_rate.encode_into(out);
        self.loss_weight_radius.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, st_net::WireError> {
        Ok(ShadowTutorConfig {
            threshold: f64::decode(input)?,
            min_stride: usize::decode(input)?,
            max_stride: usize::decode(input)?,
            max_updates: usize::decode(input)?,
            mode: match u8::decode(input)? {
                0 => DistillationMode::Partial,
                1 => DistillationMode::Full,
                tag => {
                    return Err(st_net::WireError::UnknownVariant {
                        type_name: "DistillationMode",
                        tag,
                    })
                }
            },
            learning_rate: f32::decode(input)?,
            loss_weight_radius: usize::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + 8 + 1 + 4 + 8
    }
}

/// The ShadowTutor algorithm parameters (§5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowTutorConfig {
    /// Acceptable student metric (mean IoU); training stops early once the
    /// key-frame metric exceeds it and striding lengthens beyond it.
    pub threshold: f64,
    /// Minimum key-frame stride (frames).
    pub min_stride: usize,
    /// Maximum key-frame stride (frames).
    pub max_stride: usize,
    /// Maximum optimization steps per key frame.
    pub max_updates: usize,
    /// Partial or full distillation.
    pub mode: DistillationMode,
    /// Adam learning rate used for distillation.
    pub learning_rate: f32,
    /// Dilation radius (pixels) for the object loss weighting.
    pub loss_weight_radius: usize,
}

impl ShadowTutorConfig {
    /// The paper's configuration: THRESHOLD = 0.8, MIN_STRIDE = 8,
    /// MAX_STRIDE = 64, MAX_UPDATES = 8, Adam lr = 0.01, partial distillation.
    pub fn paper() -> Self {
        ShadowTutorConfig {
            threshold: 0.8,
            min_stride: 8,
            max_stride: 64,
            max_updates: 8,
            mode: DistillationMode::Partial,
            learning_rate: 0.01,
            loss_weight_radius: 2,
        }
    }

    /// The paper's configuration but with full distillation.
    pub fn paper_full() -> Self {
        ShadowTutorConfig {
            mode: DistillationMode::Full,
            ..Self::paper()
        }
    }

    /// Validate parameter consistency.
    pub fn validate(&self) -> crate::Result<()> {
        use st_tensor::TensorError;
        if !(0.0..=1.0).contains(&self.threshold) {
            return Err(TensorError::InvalidArgument(format!(
                "threshold must be in [0,1], got {}",
                self.threshold
            )));
        }
        if self.min_stride == 0 || self.max_stride < self.min_stride {
            return Err(TensorError::InvalidArgument(format!(
                "invalid stride range [{}, {}]",
                self.min_stride, self.max_stride
            )));
        }
        if self.learning_rate <= 0.0 {
            return Err(TensorError::InvalidArgument(
                "learning rate must be positive".into(),
            ));
        }
        Ok(())
    }
}

impl Default for ShadowTutorConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Constants the paper measured on its testbed, collected in one place so
/// benches and analytic checks can reference them explicitly.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PaperConstants {
    /// Uplink payload per key frame: one 720p frame (MB).
    pub frame_mb: f64,
    /// Downlink payload per key frame under partial distillation (MB).
    pub partial_update_mb: f64,
    /// Downlink payload per key frame under full distillation (MB).
    pub full_update_mb: f64,
    /// Downlink payload per frame under naive offloading (MB).
    pub naive_prediction_mb: f64,
    /// Network latency of one key-frame exchange (s).
    pub t_net: f64,
    /// Teacher parameter count.
    pub teacher_params: usize,
    /// Student parameter count.
    pub student_params: usize,
    /// Fraction of student parameters trained under partial distillation.
    pub trainable_fraction: f64,
    /// Wi-Fi bandwidth assumed in the main experiments (Mbps).
    pub bandwidth_mbps: f64,
    /// Frames evaluated per video stream.
    pub frames_per_video: usize,
}

impl PaperConstants {
    /// Values reported in §5 and §6 of the paper.
    pub fn reported() -> Self {
        PaperConstants {
            frame_mb: 2.637,
            partial_update_mb: 0.395,
            full_update_mb: 1.846,
            naive_prediction_mb: 0.879,
            t_net: 0.303,
            teacher_params: 44_340_000,
            student_params: 480_000,
            trainable_fraction: 0.214,
            bandwidth_mbps: 80.0,
            frames_per_video: 5000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = ShadowTutorConfig::paper();
        assert_eq!(c.threshold, 0.8);
        assert_eq!(c.min_stride, 8);
        assert_eq!(c.max_stride, 64);
        assert_eq!(c.max_updates, 8);
        assert_eq!(c.mode, DistillationMode::Partial);
        assert!(c.validate().is_ok());
        assert_eq!(ShadowTutorConfig::default(), c);
        assert_eq!(ShadowTutorConfig::paper_full().mode, DistillationMode::Full);
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let mut c = ShadowTutorConfig::paper();
        c.threshold = 1.5;
        assert!(c.validate().is_err());
        let mut c2 = ShadowTutorConfig::paper();
        c2.max_stride = 4;
        assert!(c2.validate().is_err());
        let mut c3 = ShadowTutorConfig::paper();
        c3.min_stride = 0;
        assert!(c3.validate().is_err());
        let mut c4 = ShadowTutorConfig::paper();
        c4.learning_rate = 0.0;
        assert!(c4.validate().is_err());
    }

    #[test]
    fn placement_policy_defaults_to_least_loaded() {
        assert_eq!(PlacementPolicy::default(), PlacementPolicy::LeastLoaded);
        assert_eq!(PlacementPolicy::LeastLoaded.label(), "least-loaded");
        assert_eq!(PlacementPolicy::StaticModulo.label(), "static-modulo");
        assert_eq!(PlacementPolicy::Rebalance.label(), "rebalance");
    }

    #[test]
    fn mode_maps_to_freeze_point() {
        assert_eq!(DistillationMode::Full.freeze_point(), FreezePoint::None);
        assert_ne!(DistillationMode::Partial.freeze_point(), FreezePoint::None);
        assert_eq!(DistillationMode::Partial.label(), "partial");
    }

    #[test]
    fn paper_constants_consistency() {
        let p = PaperConstants::reported();
        // Teacher is ~100x the student (§5.2).
        let ratio = p.teacher_params as f64 / p.student_params as f64;
        assert!(ratio > 80.0 && ratio < 120.0);
        // Partial payload is much smaller than full payload.
        assert!(p.partial_update_mb < p.full_update_mb / 3.0);
    }
}
