//! The threaded live runtime: client and server as real OS threads.
//!
//! The paper implements ShadowTutor as two OpenMPI ranks exchanging
//! non-blocking messages. Here the two roles run as real threads connected by
//! the [`st_net::transport::DuplexTransport`] channel pair; the client sends
//! key frames without blocking, keeps serving frames, polls for the update,
//! and blocks only after deferring for `MIN_STRIDE` frames — the same logic
//! as the virtual-time runtime, but with genuine concurrency and wall-clock
//! timing (optionally stretched by a link-delay injector).
//!
//! This runtime exists to demonstrate that the protocol and state machines
//! work under real asynchrony; the tables and figures are produced by the
//! deterministic virtual-time runtime instead.

use crate::client::ClientState;
use crate::config::{DistillationMode, ShadowTutorConfig};
use crate::report::{ExperimentRecord, FrameRecord, KeyFrameRecord};
use crate::server::ServerState;
use crate::Result;
use st_net::transport::DuplexTransport;
use st_net::{ClientToServer, Payload, ServerToClient};
use st_nn::metrics::miou;
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::StudentNet;
use st_sim::LatencyProfile;
use st_teacher::{OracleTeacher, Teacher};
use st_video::Frame;
use std::time::{Duration, Instant};

/// Outcome of a live run: the client-side record plus server-side counters.
#[derive(Debug)]
pub struct LiveRunOutcome {
    /// Client-side experiment record (wall-clock total time).
    pub record: ExperimentRecord,
    /// Key frames the server processed.
    pub server_key_frames: usize,
    /// Total distillation steps the server took.
    pub server_distill_steps: usize,
}

/// Run ShadowTutor with a real client thread and a real server thread over
/// an in-process transport. Frames are drawn from `frames` (pre-generated so
/// the video source does not add nondeterminism between the roles).
pub fn run_live(
    config: ShadowTutorConfig,
    frames: Vec<Frame>,
    student: StudentNet,
    teacher: OracleTeacher,
    label: &str,
) -> Result<LiveRunOutcome> {
    config.validate()?;
    let (mut client_tp, mut server_tp) =
        DuplexTransport::<ClientToServer, ServerToClient>::pair();

    let partial = matches!(config.mode, DistillationMode::Partial);
    let latency = LatencyProfile::paper();
    let server_student = student.clone();
    let server_config = config;
    // The key-frame message carries the encoded pixels for realistic wire
    // sizes, but the in-process server resolves the actual frame content by
    // index from this pre-shared copy of the stream (re-decoding would only
    // add quantisation noise to the demo).
    let server_frames: std::collections::HashMap<usize, Frame> =
        frames.iter().map(|f| (f.index, f.clone())).collect();

    // ---------------- server thread (Algorithm 3) ----------------
    let server_handle = std::thread::spawn(move || -> Result<(usize, usize)> {
        let mut server = ServerState::new(
            server_config,
            server_student,
            teacher,
            latency.distill_step(partial),
        );
        // Line 1: send the initial full checkpoint.
        let initial = server.initial_checkpoint();
        let payload = Payload::with_data(initial.encode());
        let bytes = payload.bytes;
        server_tp
            .send(ServerToClient::InitialStudent { payload }, bytes)
            .ok();
        // Lines 2-7: serve key frames until shutdown (a Shutdown message,
        // a receive error, or a dead peer all end the loop).
        while let Ok(ClientToServer::KeyFrame { frame_index, payload: _ }) =
            server_tp.recv_timeout(Duration::from_secs(30))
        {
            let Some(frame) = server_frames.get(&frame_index) else {
                continue;
            };
            let response = server.handle_key_frame(frame)?;
            let payload = Payload::with_data(response.update.encode());
            let bytes = payload.bytes;
            let msg = ServerToClient::StudentUpdate {
                frame_index,
                metric: response.metric,
                distill_steps: response.outcome.steps,
                payload,
            };
            if server_tp.send(msg, bytes).is_err() {
                break;
            }
        }
        Ok((server.key_frames_processed(), server.distill_steps_taken()))
    });

    // ---------------- client (Algorithm 4), on this thread ----------------
    let mut client_student = student;
    client_student.freeze = config.mode.freeze_point();
    let mut client = ClientState::new(config);
    let mut frame_records = Vec::with_capacity(frames.len());
    let mut key_records = Vec::new();
    let mut uplink_bytes = 0usize;
    let mut downlink_bytes = 0usize;
    let mut frame_bytes = 0usize;
    let mut update_bytes = 0usize;
    let mut reference_teacher = OracleTeacher::perfect(12345);
    let started = Instant::now();

    // Wait for the initial checkpoint.
    match client_tp.recv_timeout(Duration::from_secs(30)) {
        Ok(ServerToClient::InitialStudent { payload }) => {
            if let Some(data) = payload.data {
                let snapshot = WeightSnapshot::decode(&data, SnapshotScope::Full)?;
                snapshot.apply(&mut client_student)?;
            }
        }
        _ => {
            // Server unavailable; serve with the local checkpoint.
        }
    }

    let mut pending_metric: Option<(usize, f64, usize)> = None;
    for (processed, frame) in frames.iter().enumerate() {
        frame_bytes = frame.raw_rgb_bytes();
        let decision = client.begin_frame();
        if decision.is_key_frame {
            let payload = Payload::with_data(encode_frame(frame));
            let bytes = payload.bytes;
            uplink_bytes += bytes;
            client_tp
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .ok();
        }

        let prediction = client_student.predict(&frame.image)?;
        let reference = reference_teacher.pseudo_label(frame)?;
        let value = miou(&prediction, &reference, client_student.config.num_classes)?.value;

        // Poll (or block, if the deferral budget is exhausted) for the update.
        let mut waited = false;
        let incoming = if decision.must_wait_for_update && client.update_outstanding() {
            waited = true;
            client_tp.recv_timeout(Duration::from_secs(30)).ok()
        } else {
            client_tp.try_recv().ok().flatten()
        };
        if let Some(ServerToClient::StudentUpdate {
            frame_index,
            metric,
            distill_steps,
            payload,
        }) = incoming
        {
            if let Some(data) = payload.data {
                downlink_bytes += data.len();
                update_bytes = data.len();
                let snapshot = WeightSnapshot::decode(&data, SnapshotScope::TrainableOnly)?;
                snapshot.apply(&mut client_student)?;
            }
            pending_metric = Some((frame_index, metric, distill_steps));
        }
        if let Some((frame_index, metric, steps)) = pending_metric.take() {
            if client.update_outstanding() {
                client.apply_update(metric);
                key_records.push(KeyFrameRecord {
                    frame_index,
                    steps,
                    initial_metric: 0.0,
                    metric,
                    stride_after: client.stride(),
                });
            }
        }

        frame_records.push(FrameRecord {
            index: frame.index,
            is_key_frame: decision.is_key_frame,
            miou: value,
            waited,
        });
        let _ = processed;
    }
    client_tp.send(ClientToServer::Shutdown, 1).ok();
    let elapsed = started.elapsed().as_secs_f64();
    drop(client_tp);

    let (server_key_frames, server_distill_steps) = server_handle
        .join()
        .map_err(|_| st_tensor::TensorError::InvalidArgument("server thread panicked".into()))?
        .unwrap_or((0, 0));

    let record = ExperimentRecord {
        label: label.to_string(),
        variant: format!("live-{}", config.mode.label()),
        frames: frame_records.len(),
        frame_records,
        key_frames: key_records,
        frame_bytes,
        update_bytes,
        uplink_bytes,
        downlink_bytes,
        total_time: elapsed,
        config,
        latency: LatencyProfile::paper(),
    };
    Ok(LiveRunOutcome {
        record,
        server_key_frames,
        server_distill_steps,
    })
}

/// Encode a frame's pixels into bytes (8-bit RGB) for transport sizing.
fn encode_frame(frame: &Frame) -> bytes::Bytes {
    let mut out = Vec::with_capacity(frame.raw_rgb_bytes());
    for &v in frame.image.data() {
        out.push((v.clamp(0.0, 1.0) * 255.0) as u8);
    }
    bytes::Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

    #[test]
    fn encode_frame_matches_raw_size() {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        };
        let mut gen = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, 1)).unwrap();
        let f = gen.next_frame();
        assert_eq!(encode_frame(&f).len(), f.raw_rgb_bytes());
    }

    #[test]
    fn live_run_completes_with_real_threads() {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        };
        let mut gen = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, 2)).unwrap();
        let frames = gen.take_frames(20);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let outcome = run_live(
            ShadowTutorConfig::paper(),
            frames,
            student,
            OracleTeacher::perfect(1),
            "live-test",
        )
        .unwrap();
        assert_eq!(outcome.record.frames, 20);
        assert!(outcome.record.total_time > 0.0);
        assert!(outcome.record.frame_records[0].is_key_frame);
        assert!(outcome.record.uplink_bytes > 0);
    }
}
