//! The threaded live runtime: client and server as real OS threads.
//!
//! The paper implements ShadowTutor as two OpenMPI ranks exchanging
//! non-blocking messages. Here the roles run as real threads connected by
//! channel transports; the client sends key frames without blocking, keeps
//! serving frames, polls for the update, and blocks only after deferring for
//! `MIN_STRIDE` frames — the same logic as the virtual-time runtime, but with
//! genuine concurrency and wall-clock timing (optionally stretched by a
//! link-delay injector).
//!
//! Two topologies are provided:
//!
//! * [`run_live`] — one client thread against one dedicated server thread
//!   over a [`st_net::transport::DuplexTransport`] pair (the paper's setup).
//! * [`run_live_multi`] — M client threads against one sharded
//!   [`crate::serve::ServerPool`], each stream multiplexed onto its shard's
//!   queue with stream-tagged messages. This is the server-contention
//!   scenario the paper does not evaluate; the pool's queueing statistics
//!   are compared against the analytic [`st_sim::ContentionModel`].
//!
//! Both topologies drive the *same* client state machine through the
//! [`st_net::ClientEndpoint`] trait, so protocol behaviour cannot drift
//! between them. These runtimes exist to demonstrate that the protocol and
//! state machines work under real asynchrony; the tables and figures are
//! produced by the deterministic virtual-time runtime instead.

use crate::client::ClientState;
use crate::config::{DistillationMode, ShadowTutorConfig};
use crate::report::{ExperimentRecord, FrameRecord, KeyFrameRecord};
use crate::serve::{PoolConfig, PoolStats, ServerPool};
use crate::server::ServerState;
use crate::Result;
use st_net::transport::ClientEndpoint;
use st_net::{ClientToServer, Payload, ServerToClient, StreamId};
use st_nn::metrics::miou;
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::StudentNet;
use st_sim::LatencyProfile;
use st_teacher::{OracleTeacher, Teacher};
use st_video::Frame;
use std::time::{Duration, Instant};

/// Outcome of a live run: the client-side record plus server-side counters.
#[derive(Debug)]
pub struct LiveRunOutcome {
    /// Client-side experiment record (wall-clock total time).
    pub record: ExperimentRecord,
    /// Key frames the server processed.
    pub server_key_frames: usize,
    /// Total distillation steps the server took.
    pub server_distill_steps: usize,
    /// Full snapshot of the client's student after the last frame — what the
    /// stream would keep serving with. Lets tests assert that concurrent
    /// streams do not bleed weights into each other.
    pub final_student: WeightSnapshot,
}

/// One client stream fed to [`run_live_multi`].
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream identifier (also selects the shard: `stream_id % shards`).
    pub stream_id: StreamId,
    /// Label recorded on the stream's [`ExperimentRecord`].
    pub label: String,
    /// The pre-generated frames of the stream.
    pub frames: Vec<Frame>,
}

/// Outcome of a multi-stream live run against a server pool.
#[derive(Debug)]
pub struct MultiLiveOutcome {
    /// Per-stream outcomes, in the order the streams were passed in.
    pub streams: Vec<LiveRunOutcome>,
    /// Server-pool statistics (queueing, batching, per-stream counters,
    /// final server-side checkpoints).
    pub pool: PoolStats,
    /// Wall-clock duration of the whole run (pool spawn to pool join).
    pub wall_time: f64,
}

impl MultiLiveOutcome {
    /// Aggregate frames served per wall-clock second across all streams.
    pub fn aggregate_fps(&self) -> f64 {
        let frames: usize = self.streams.iter().map(|s| s.record.frames).sum();
        if self.wall_time <= 0.0 {
            0.0
        } else {
            frames as f64 / self.wall_time
        }
    }

    /// Mean wall-clock queue wait per key frame at the server, seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        self.pool.mean_queue_wait_secs()
    }
}

/// Everything the client loop produced for one stream.
struct ClientLoopOutput {
    record: ExperimentRecord,
    final_student: WeightSnapshot,
}

/// Algorithm 4 driven over any [`ClientEndpoint`]: wait for the initial
/// checkpoint, serve every frame, send key frames asynchronously, apply
/// updates as they arrive (blocking only after `MIN_STRIDE` deferred
/// frames), and finish with a `Shutdown`.
fn drive_client<E: ClientEndpoint>(
    config: ShadowTutorConfig,
    frames: &[Frame],
    mut client_student: StudentNet,
    endpoint: &mut E,
    label: &str,
    variant_prefix: &str,
) -> Result<ClientLoopOutput> {
    client_student.freeze = config.mode.freeze_point();
    let mut client = ClientState::new(config);
    let mut frame_records = Vec::with_capacity(frames.len());
    let mut key_records = Vec::new();
    let mut uplink_bytes = 0usize;
    let mut downlink_bytes = 0usize;
    let mut frame_bytes = 0usize;
    let mut update_bytes = 0usize;
    let mut reference_teacher = OracleTeacher::perfect(12345);
    let started = Instant::now();

    // Wait for the initial checkpoint.
    match endpoint.recv_timeout(Duration::from_secs(30)) {
        Ok(ServerToClient::InitialStudent { payload }) => {
            if let Some(data) = payload.data {
                let snapshot = WeightSnapshot::decode(&data, SnapshotScope::Full)?;
                snapshot.apply(&mut client_student)?;
            }
        }
        _ => {
            // Server unavailable; serve with the local checkpoint.
        }
    }

    let mut pending_metric: Option<(usize, f64, usize)> = None;
    for frame in frames {
        frame_bytes = frame.raw_rgb_bytes();
        let decision = client.begin_frame();
        if decision.is_key_frame {
            let payload = Payload::with_data(encode_frame(frame));
            let bytes = payload.bytes;
            uplink_bytes += bytes;
            endpoint
                .send(
                    ClientToServer::KeyFrame {
                        frame_index: frame.index,
                        payload,
                    },
                    bytes,
                )
                .ok();
        }

        let prediction = client_student.predict(&frame.image)?;
        let reference = reference_teacher.pseudo_label(frame)?;
        let value = miou(&prediction, &reference, client_student.config.num_classes)?.value;

        // Poll (or block, if the deferral budget is exhausted) for the update.
        let mut waited = false;
        let incoming = if decision.must_wait_for_update && client.update_outstanding() {
            waited = true;
            endpoint.recv_timeout(Duration::from_secs(30)).ok()
        } else {
            endpoint.try_recv().ok().flatten()
        };
        match incoming {
            Some(ServerToClient::StudentUpdate {
                frame_index,
                metric,
                distill_steps,
                payload,
            }) => {
                if let Some(data) = payload.data {
                    downlink_bytes += data.len();
                    update_bytes = data.len();
                    let snapshot = WeightSnapshot::decode(&data, SnapshotScope::TrainableOnly)?;
                    snapshot.apply(&mut client_student)?;
                }
                pending_metric = Some((frame_index, metric, distill_steps));
            }
            // Admission control (or a protocol mismatch) rejected the key
            // frame: no update will come, so fall back to local-only
            // inference — the student simply keeps serving with its current
            // weights, exactly what partial distillation already tolerates
            // between updates — and stop waiting for this exchange.
            Some(ServerToClient::Throttle { .. }) | Some(ServerToClient::Dropped { .. }) => {
                client.abandon_update();
            }
            _ => {}
        }
        if let Some((frame_index, metric, steps)) = pending_metric.take() {
            if client.update_outstanding() {
                client.apply_update(metric);
                key_records.push(KeyFrameRecord {
                    frame_index,
                    steps,
                    initial_metric: 0.0,
                    metric,
                    stride_after: client.stride(),
                });
            }
        }

        frame_records.push(FrameRecord {
            index: frame.index,
            is_key_frame: decision.is_key_frame,
            miou: value,
            waited,
        });
    }
    endpoint.send(ClientToServer::Shutdown, 1).ok();
    let elapsed = started.elapsed().as_secs_f64();

    let final_student = WeightSnapshot::capture(&mut client_student, SnapshotScope::Full);
    let record = ExperimentRecord {
        label: label.to_string(),
        variant: format!("{variant_prefix}-{}", config.mode.label()),
        frames: frame_records.len(),
        frame_records,
        key_frames: key_records,
        frame_bytes,
        update_bytes,
        uplink_bytes,
        downlink_bytes,
        total_time: elapsed,
        config,
        latency: LatencyProfile::paper(),
    };
    Ok(ClientLoopOutput {
        record,
        final_student,
    })
}

/// Run ShadowTutor with a real client thread and a real server thread over
/// an in-process transport. Frames are drawn from `frames` (pre-generated so
/// the video source does not add nondeterminism between the roles).
pub fn run_live(
    config: ShadowTutorConfig,
    frames: Vec<Frame>,
    student: StudentNet,
    teacher: OracleTeacher,
    label: &str,
) -> Result<LiveRunOutcome> {
    config.validate()?;
    let (mut client_tp, mut server_tp) =
        st_net::transport::DuplexTransport::<ClientToServer, ServerToClient>::pair();

    let partial = matches!(config.mode, DistillationMode::Partial);
    let latency = LatencyProfile::paper();
    let server_student = student.clone();
    let server_config = config;
    // The key-frame message carries the encoded pixels for realistic wire
    // sizes, but the in-process server resolves the actual frame content by
    // index from this pre-shared copy of the stream (re-decoding would only
    // add quantisation noise to the demo).
    let server_frames: std::collections::HashMap<usize, Frame> =
        frames.iter().map(|f| (f.index, f.clone())).collect();

    // ---------------- server thread (Algorithm 3) ----------------
    let server_handle = std::thread::spawn(move || -> Result<(usize, usize)> {
        let mut server = ServerState::new(
            server_config,
            server_student,
            teacher,
            latency.distill_step(partial),
        );
        // Line 1: send the initial full checkpoint.
        let initial = server.initial_checkpoint();
        let payload = Payload::with_data(initial.encode());
        let bytes = payload.bytes;
        server_tp
            .send(ServerToClient::InitialStudent { payload }, bytes)
            .ok();
        // Lines 2-7: serve key frames until shutdown (a Shutdown message,
        // a receive error, or a dead peer all end the loop).
        while let Ok(ClientToServer::KeyFrame {
            frame_index,
            payload: _,
        }) = server_tp.recv_timeout(Duration::from_secs(30))
        {
            let Some(frame) = server_frames.get(&frame_index) else {
                continue;
            };
            let response = server.handle_key_frame(frame)?;
            let payload = Payload::with_data(response.update.encode());
            let bytes = payload.bytes;
            let msg = ServerToClient::StudentUpdate {
                frame_index,
                metric: response.metric,
                distill_steps: response.outcome.steps,
                payload,
            };
            if server_tp.send(msg, bytes).is_err() {
                break;
            }
        }
        Ok((server.key_frames_processed(), server.distill_steps_taken()))
    });

    // ---------------- client (Algorithm 4), on this thread ----------------
    let output = drive_client(config, &frames, student, &mut client_tp, label, "live")?;
    drop(client_tp);

    let (server_key_frames, server_distill_steps) = server_handle
        .join()
        .map_err(|_| st_tensor::TensorError::InvalidArgument("server thread panicked".into()))?
        .unwrap_or((0, 0));

    Ok(LiveRunOutcome {
        record: output.record,
        server_key_frames,
        server_distill_steps,
        final_student: output.final_student,
    })
}

/// Run M concurrent client streams against one sharded server pool.
///
/// Every stream starts from the same pre-trained `student` checkpoint; the
/// pool keeps one isolated distillation session per stream and batches
/// teacher forward passes across streams that land on the same shard. Each
/// shard's teacher comes from `teacher_factory(shard_index)`.
///
/// # Example
///
/// ```
/// use shadowtutor::config::ShadowTutorConfig;
/// use shadowtutor::runtime::live::{run_live_multi, StreamSpec};
/// use shadowtutor::serve::PoolConfig;
/// use st_nn::student::{StudentConfig, StudentNet};
/// use st_teacher::OracleTeacher;
/// use st_video::dataset::tiny_stream;
/// use st_video::SceneKind;
///
/// let streams = vec![
///     StreamSpec {
///         stream_id: 0,
///         label: "people".into(),
///         frames: tiny_stream(SceneKind::People, 1, 12),
///     },
///     StreamSpec {
///         stream_id: 1,
///         label: "animals".into(),
///         frames: tiny_stream(SceneKind::Animals, 2, 12),
///     },
/// ];
/// let outcome = run_live_multi(
///     ShadowTutorConfig::paper(),
///     streams,
///     StudentNet::new(StudentConfig::tiny()).unwrap(),
///     PoolConfig::with_shards(2),
///     |shard| OracleTeacher::perfect(10 + shard as u64),
/// )
/// .unwrap();
/// assert_eq!(outcome.streams.len(), 2);
/// // The pool's statistics condense into the operator report.
/// let report = outcome.pool.snapshot();
/// assert_eq!(report.total_key_frames, outcome.pool.total_key_frames());
/// ```
pub fn run_live_multi<T, F>(
    config: ShadowTutorConfig,
    streams: Vec<StreamSpec>,
    student: StudentNet,
    pool_config: PoolConfig,
    teacher_factory: F,
) -> Result<MultiLiveOutcome>
where
    T: Teacher + Send + 'static,
    F: FnMut(usize) -> T,
{
    config.validate()?;
    pool_config.validate()?;
    // Duplicate ids would silently replace each other's pool registration
    // (the second connect overwrites the first stream's downlink), so the
    // resulting transport error would point nowhere near the cause — fail
    // fast instead.
    let mut seen = std::collections::HashSet::new();
    for spec in &streams {
        if !seen.insert(spec.stream_id) {
            return Err(st_tensor::TensorError::InvalidArgument(format!(
                "duplicate stream id {} in run_live_multi specs",
                spec.stream_id
            )));
        }
    }
    let partial = matches!(config.mode, DistillationMode::Partial);
    let latency = LatencyProfile::paper();
    let started = Instant::now();

    let pool = ServerPool::spawn(
        config,
        pool_config,
        student.clone(),
        latency.distill_step(partial),
        teacher_factory,
    )?;

    // Connect every stream up front, then drive each client on its own
    // thread. The scope borrows the specs and the shared checkpoint.
    let mut endpoints = Vec::with_capacity(streams.len());
    for spec in &streams {
        endpoints.push(pool.connect(spec.stream_id, &spec.frames)?);
    }
    let mut outputs: Vec<Result<ClientLoopOutput>> = Vec::with_capacity(streams.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(streams.len());
        for (spec, mut endpoint) in streams.iter().zip(endpoints) {
            let checkpoint = student.clone();
            handles.push(scope.spawn(move || {
                let result = drive_client(
                    config,
                    &spec.frames,
                    checkpoint,
                    &mut endpoint,
                    &spec.label,
                    "live-multi",
                );
                drop(endpoint);
                result
            }));
        }
        for handle in handles {
            outputs.push(handle.join().unwrap_or_else(|_| {
                Err(st_tensor::TensorError::InvalidArgument(
                    "client thread panicked".into(),
                ))
            }));
        }
    });

    let pool_stats = pool.join()?;
    let wall_time = started.elapsed().as_secs_f64();

    let mut per_stream = Vec::with_capacity(outputs.len());
    for (spec, output) in streams.iter().zip(outputs) {
        let output = output?;
        let server = pool_stats
            .streams
            .get(&spec.stream_id)
            .copied()
            .unwrap_or_default();
        per_stream.push(LiveRunOutcome {
            record: output.record,
            server_key_frames: server.key_frames,
            server_distill_steps: server.distill_steps,
            final_student: output.final_student,
        });
    }
    Ok(MultiLiveOutcome {
        streams: per_stream,
        pool: pool_stats,
        wall_time,
    })
}

/// Encode a frame's pixels into bytes (8-bit RGB) for transport sizing.
fn encode_frame(frame: &Frame) -> bytes::Bytes {
    let mut out = Vec::with_capacity(frame.raw_rgb_bytes());
    for &v in frame.image.data() {
        out.push((v.clamp(0.0, 1.0) * 255.0) as u8);
    }
    bytes::Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_video::dataset::tiny_stream as frames_for;
    use st_video::SceneKind;

    #[test]
    fn encode_frame_matches_raw_size() {
        let f = &frames_for(SceneKind::People, 1, 1)[0];
        assert_eq!(encode_frame(f).len(), f.raw_rgb_bytes());
    }

    /// A scripted server half: sends the initial checkpoint, then answers
    /// every key frame with a `Throttle` instead of a `StudentUpdate`.
    struct ThrottlingEndpoint {
        queue: std::collections::VecDeque<ServerToClient>,
        key_frames_seen: usize,
        shutdowns_seen: usize,
    }

    impl ThrottlingEndpoint {
        fn new() -> Self {
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(ServerToClient::InitialStudent {
                payload: Payload::sized(0),
            });
            ThrottlingEndpoint {
                queue,
                key_frames_seen: 0,
                shutdowns_seen: 0,
            }
        }
    }

    impl ClientEndpoint for ThrottlingEndpoint {
        fn send(
            &mut self,
            message: ClientToServer,
            _bytes: usize,
        ) -> std::result::Result<(), st_net::TransportError> {
            match message {
                ClientToServer::KeyFrame { frame_index, .. } => {
                    self.key_frames_seen += 1;
                    self.queue
                        .push_back(ServerToClient::Throttle { frame_index });
                }
                ClientToServer::Shutdown => self.shutdowns_seen += 1,
                ClientToServer::Register | ClientToServer::ReShare { .. } => {}
            }
            Ok(())
        }

        fn try_recv(
            &mut self,
        ) -> std::result::Result<Option<ServerToClient>, st_net::TransportError> {
            Ok(self.queue.pop_front())
        }

        fn recv_timeout(
            &mut self,
            _timeout: Duration,
        ) -> std::result::Result<ServerToClient, st_net::TransportError> {
            self.queue
                .pop_front()
                .ok_or(st_net::TransportError::Timeout)
        }
    }

    #[test]
    fn throttled_client_falls_back_to_local_inference() {
        let frames = frames_for(SceneKind::People, 6, 40);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let mut endpoint = ThrottlingEndpoint::new();
        let output = drive_client(
            ShadowTutorConfig::paper(),
            &frames,
            student,
            &mut endpoint,
            "throttled",
            "live",
        )
        .unwrap();
        // Every frame was served locally — the run completed without ever
        // blocking on an update that would never come.
        assert_eq!(output.record.frames, 40);
        assert!(output
            .record
            .frame_records
            .iter()
            .all(|f| (0.0..=1.0).contains(&f.miou)));
        // No update was ever applied, so the stride stayed at MIN_STRIDE and
        // a key frame went out every 8 frames — each answered by a throttle.
        assert_eq!(output.record.key_frames.len(), 0);
        assert_eq!(endpoint.key_frames_seen, 5);
        assert_eq!(endpoint.shutdowns_seen, 1);
        // The throttle cleared the outstanding update each time, so the
        // deferral deadline never forced a blocking wait.
        assert!(output.record.frame_records.iter().all(|f| !f.waited));
    }

    #[test]
    fn live_run_completes_with_real_threads() {
        let frames = frames_for(SceneKind::People, 2, 20);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let outcome = run_live(
            ShadowTutorConfig::paper(),
            frames,
            student,
            OracleTeacher::perfect(1),
            "live-test",
        )
        .unwrap();
        assert_eq!(outcome.record.frames, 20);
        assert!(outcome.record.total_time > 0.0);
        assert!(outcome.record.frame_records[0].is_key_frame);
        assert!(outcome.record.uplink_bytes > 0);
        assert_eq!(outcome.final_student.scope(), SnapshotScope::Full);
        assert!(outcome.final_student.entry_count() > 0);
    }

    #[test]
    fn multi_run_rejects_duplicate_stream_ids() {
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let spec = StreamSpec {
            stream_id: 7,
            label: "dup".into(),
            frames: frames_for(SceneKind::People, 5, 4),
        };
        let err = run_live_multi(
            ShadowTutorConfig::paper(),
            vec![spec.clone(), spec],
            student,
            PoolConfig::with_shards(2),
            |_| OracleTeacher::perfect(1),
        )
        .unwrap_err();
        assert!(format!("{err:?}").contains("duplicate stream id"));
    }

    #[test]
    fn multi_run_completes_with_two_streams() {
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let streams = vec![
            StreamSpec {
                stream_id: 0,
                label: "people".into(),
                frames: frames_for(SceneKind::People, 3, 16),
            },
            StreamSpec {
                stream_id: 1,
                label: "animals".into(),
                frames: frames_for(SceneKind::Animals, 4, 16),
            },
        ];
        let outcome = run_live_multi(
            ShadowTutorConfig::paper(),
            streams,
            student,
            PoolConfig::with_shards(2),
            |shard| OracleTeacher::perfect(10 + shard as u64),
        )
        .unwrap();
        assert_eq!(outcome.streams.len(), 2);
        for stream in &outcome.streams {
            assert_eq!(stream.record.frames, 16);
            assert!(stream.record.frame_records[0].is_key_frame);
            assert!(stream.server_key_frames >= 1);
            // The last update can still be in flight when the stream ends, so
            // the server may have processed one more key frame than the
            // client managed to apply.
            assert!(stream.server_key_frames >= stream.record.key_frame_count());
        }
        assert!(outcome.aggregate_fps() > 0.0);
        assert_eq!(
            outcome.pool.total_key_frames(),
            outcome
                .streams
                .iter()
                .map(|s| s.server_key_frames)
                .sum::<usize>()
        );
        assert_eq!(outcome.pool.final_checkpoints.len(), 2);
        assert!(outcome.wall_time > 0.0);
    }
}
