//! The threaded live runtime: client and server as real OS threads.
//!
//! The paper implements ShadowTutor as two OpenMPI ranks exchanging
//! non-blocking messages. Here the roles run as real threads connected by
//! channel transports; the client sends key frames without blocking, keeps
//! serving frames, polls for the update, and blocks only after deferring for
//! `MIN_STRIDE` frames — the same logic as the virtual-time runtime, but with
//! genuine concurrency and wall-clock timing (optionally stretched by a
//! link-delay injector).
//!
//! Two topologies are provided:
//!
//! * [`run_live`] — one client thread against one dedicated server thread
//!   over a [`st_net::transport::DuplexTransport`] pair (the paper's setup).
//! * [`run_live_multi`] — M client streams against one sharded
//!   [`crate::serve::ServerPool`], each stream multiplexed onto its shard's
//!   queue with stream-tagged messages. This is the server-contention
//!   scenario the paper does not evaluate; the pool's queueing statistics
//!   are compared against the analytic [`st_sim::ContentionModel`]. By
//!   default all client state machines are driven by **one** thread
//!   multiplexing their endpoints through a [`st_net::Poller`]
//!   ([`ClientDriverMode::Multiplexed`]); the historical
//!   one-OS-thread-per-client topology remains available via
//!   [`run_live_multi_with`] for A/B comparison.
//!
//! Both topologies drive the *same* client state machine through the
//! [`st_net::ClientEndpoint`] trait, so protocol behaviour cannot drift
//! between them. These runtimes exist to demonstrate that the protocol and
//! state machines work under real asynchrony; the tables and figures are
//! produced by the deterministic virtual-time runtime instead.

use crate::client::ClientState;
use crate::config::{DistillationMode, ShadowTutorConfig};
use crate::loadgen::JitterRng;
use crate::report::{ExperimentRecord, FrameRecord, KeyFrameRecord};
use crate::serve::{PoolConfig, PoolStats, ServerPool};
use crate::server::ServerState;
use crate::Result;
use st_net::transport::ClientEndpoint;
use st_net::{ClientToServer, Payload, ServerToClient, StreamId, Wire};
use st_nn::delta::{CheckpointDigest, WeightPayload};
use st_nn::metrics::miou;
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::StudentNet;
use st_sim::LatencyProfile;
use st_teacher::{OracleTeacher, Teacher};
use st_video::Frame;
use std::time::{Duration, Instant};

/// Outcome of a live run: the client-side record plus server-side counters.
#[derive(Debug)]
pub struct LiveRunOutcome {
    /// Client-side experiment record (wall-clock total time).
    pub record: ExperimentRecord,
    /// Key frames the server processed.
    pub server_key_frames: usize,
    /// Total distillation steps the server took.
    pub server_distill_steps: usize,
    /// Full snapshot of the client's student after the last frame — what the
    /// stream would keep serving with. Lets tests assert that concurrent
    /// streams do not bleed weights into each other.
    pub final_student: WeightSnapshot,
    /// Client-side delta-protocol counters (all zero on streams that did not
    /// negotiate delta updates).
    pub delta: ClientDeltaStats,
}

/// Client-side counters of the delta-update protocol for one stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientDeltaStats {
    /// Updates applied from a sparse [`st_nn::delta::WeightDelta`] envelope.
    pub delta_updates_applied: usize,
    /// Updates applied from a full-snapshot envelope: the initial checkpoint
    /// plus any post-failover re-sync the server fell back to.
    pub full_updates_applied: usize,
    /// Delta envelopes whose base-checkpoint verification failed
    /// ([`st_net::WireError::UnknownBaseCheckpoint`] /
    /// [`st_net::WireError::StaleBaseCheckpoint`]); the client keeps serving
    /// its current weights rather than applying an unappliable delta.
    pub delta_rejections: usize,
}

/// One client stream fed to [`run_live_multi`].
#[derive(Debug, Clone)]
pub struct StreamSpec {
    /// Stream identifier (also selects the shard: `stream_id % shards`).
    pub stream_id: StreamId,
    /// Label recorded on the stream's [`ExperimentRecord`].
    pub label: String,
    /// The pre-generated frames of the stream.
    pub frames: Vec<Frame>,
}

/// Outcome of a multi-stream live run against a server pool.
#[derive(Debug)]
pub struct MultiLiveOutcome {
    /// Per-stream outcomes, in the order the streams were passed in.
    pub streams: Vec<LiveRunOutcome>,
    /// Server-pool statistics (queueing, batching, per-stream counters,
    /// final server-side checkpoints).
    pub pool: PoolStats,
    /// Wall-clock duration of the whole run (pool spawn to pool join).
    pub wall_time: f64,
}

impl MultiLiveOutcome {
    /// Aggregate frames served per wall-clock second across all streams.
    pub fn aggregate_fps(&self) -> f64 {
        let frames: usize = self.streams.iter().map(|s| s.record.frames).sum();
        if self.wall_time <= 0.0 {
            0.0
        } else {
            frames as f64 / self.wall_time
        }
    }

    /// Mean wall-clock queue wait per key frame at the server, seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        self.pool.mean_queue_wait_secs()
    }
}

/// Everything the client loop produced for one stream.
pub(crate) struct ClientLoopOutput {
    pub(crate) record: ExperimentRecord,
    pub(crate) final_student: WeightSnapshot,
    pub(crate) delta: ClientDeltaStats,
}

/// How long a client waits for the initial checkpoint, or for a forced
/// update once the deferral budget is exhausted, before proceeding without
/// the server.
const CLIENT_WAIT_BUDGET: Duration = Duration::from_secs(30);

/// Cap on one multiplexed-poll sleep: even with no client deadline armed
/// the driver loop re-inspects every client at least this often, so a lost
/// wakeup degrades to latency rather than a hang.
const MUX_IDLE_TICK: Duration = Duration::from_millis(50);

/// First reconnect backoff delay after a transport disconnect.
const RECONNECT_BASE: Duration = Duration::from_millis(10);

/// Cap on the exponential reconnect backoff.
const RECONNECT_CAP: Duration = Duration::from_secs(1);

/// Reconnect attempts before the client gives up and serves local-only.
const RECONNECT_ATTEMPTS: u32 = 8;

/// Backoff before reconnect attempt `attempt` (0-based): exponential from
/// [`RECONNECT_BASE`] capped at [`RECONNECT_CAP`], jittered to 50–100% of
/// the nominal delay so clients caught in the same shard takeover do not
/// retry in lockstep.
fn reconnect_backoff_delay(attempt: u32, rng: &mut JitterRng) -> Duration {
    let nominal = RECONNECT_BASE
        .saturating_mul(1u32 << attempt.min(7))
        .min(RECONNECT_CAP);
    nominal.mul_f64(0.5 + 0.5 * rng.unit())
}

/// What a [`ClientDriver::pump`] call left the client doing.
enum PumpState {
    /// The client completed a frame and can process the next one
    /// immediately. `pump` yields between frames so a multiplexing loop can
    /// interleave many clients fairly on one thread.
    Runnable,
    /// The client is blocked until a downlink message arrives or the given
    /// deadline passes.
    Waiting(Instant),
    /// All frames served and `Shutdown` sent; call
    /// [`ClientDriver::into_output`].
    Finished,
}

/// Which blocking point the client is at between [`ClientDriver::pump`]
/// calls.
enum ClientPhase {
    /// Waiting for the server's initial checkpoint (Algorithm 4, line 1).
    AwaitInitial {
        /// When to give up and serve with the local checkpoint.
        deadline: Instant,
    },
    /// Ready to process the next frame.
    Serving,
    /// The deferral budget is exhausted: the current frame's bookkeeping
    /// cannot complete until the in-flight update arrives (or the deadline
    /// writes it off).
    AwaitUpdate {
        /// When to give up on the in-flight update.
        deadline: Instant,
    },
    /// `Shutdown` sent; nothing left to do.
    Finished,
}

/// Inference results of a frame whose update handling is still pending.
struct PendingFrame {
    index: usize,
    is_key_frame: bool,
    miou: f64,
}

/// Client half of the delta-update protocol (present only when the stream
/// registered with `RegisterCaps { supports_delta: true }`). The digest
/// mirrors the server's [`crate::serve`] per-stream `DeltaTrack`: both sides
/// advance it with exactly the chunks that crossed the wire, so the bases
/// stay synchronized without ever exchanging digests.
struct DeltaSync {
    /// Hash-per-entry identity of the checkpoint the client serves with.
    digest: CheckpointDigest,
    /// Combined hash *before* the most recently applied payload, so a delta
    /// naming it can be classified as a raced/stale base rather than an
    /// unknown one.
    previous: Option<u64>,
    stats: ClientDeltaStats,
}

/// Algorithm 4 as a *resumable* state machine over any [`ClientEndpoint`]:
/// wait for the initial checkpoint, serve every frame, send key frames
/// asynchronously, apply updates as they arrive (deferring at most
/// `MIN_STRIDE` frames), and finish with a `Shutdown`.
///
/// Unlike a blocking loop, the driver never parks inside the endpoint:
/// [`pump`](Self::pump) advances as far as it can without blocking and then
/// reports what it is waiting for. A single-stream caller wraps it in a
/// trivial block-on-`recv_timeout` loop ([`drive_client`]); the multi-stream
/// runtime instead multiplexes many drivers through one [`st_net::Poller`]
/// on one thread ([`ClientDriverMode::Multiplexed`]), mirroring how the
/// reactor pool hosts many shards on a fixed worker set.
struct ClientDriver<'a> {
    config: ShadowTutorConfig,
    frames: &'a [Frame],
    label: &'a str,
    variant_prefix: &'a str,
    client_student: StudentNet,
    client: ClientState,
    frame_records: Vec<FrameRecord>,
    key_records: Vec<KeyFrameRecord>,
    uplink_bytes: usize,
    downlink_bytes: usize,
    frame_bytes: usize,
    update_bytes: usize,
    reference_teacher: OracleTeacher,
    started: Instant,
    pending_metric: Option<(usize, f64, usize)>,
    pending_frame: Option<PendingFrame>,
    /// One-message pushback buffer so a blocking wrapper can feed a message
    /// obtained via `recv_timeout` back into the non-blocking pump.
    stashed: Option<ServerToClient>,
    /// Set once the endpoint reports its peer gone *and* reconnecting with
    /// backoff failed: every wait completes immediately and the client
    /// serves local-only from then on.
    disconnected: bool,
    /// Seeded jitter source for the reconnect backoff (deterministic per
    /// stream label, so retry schedules are reproducible).
    reconnect_rng: JitterRng,
    /// Successful reconnects over the run (transport drops survived).
    reconnects: usize,
    /// `Some` when the stream negotiated delta updates: downlink weight
    /// payloads are [`WeightPayload`] envelopes instead of bare snapshots.
    sync: Option<DeltaSync>,
    cursor: usize,
    elapsed: f64,
    phase: ClientPhase,
}

impl<'a> ClientDriver<'a> {
    fn new(
        config: ShadowTutorConfig,
        frames: &'a [Frame],
        mut client_student: StudentNet,
        label: &'a str,
        variant_prefix: &'a str,
        delta_updates: bool,
    ) -> Self {
        client_student.freeze = config.mode.freeze_point();
        // Seed the digest from the local starting checkpoint — identical to
        // the template the server registers the session from — so a client
        // that never sees the `InitialStudent` (timeout, lossy endpoint) can
        // still verify delta bases instead of holding an empty digest.
        let sync = delta_updates.then(|| DeltaSync {
            digest: CheckpointDigest::of(&WeightSnapshot::capture(
                &mut client_student,
                SnapshotScope::Full,
            )),
            previous: None,
            stats: ClientDeltaStats::default(),
        });
        ClientDriver {
            config,
            frames,
            label,
            variant_prefix,
            client_student,
            client: ClientState::new(config),
            frame_records: Vec::with_capacity(frames.len()),
            key_records: Vec::new(),
            uplink_bytes: 0,
            downlink_bytes: 0,
            frame_bytes: 0,
            update_bytes: 0,
            reference_teacher: OracleTeacher::perfect(12345),
            started: Instant::now(),
            pending_metric: None,
            pending_frame: None,
            stashed: None,
            disconnected: false,
            reconnect_rng: JitterRng::new(label.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3)
            })),
            reconnects: 0,
            sync,
            cursor: 0,
            elapsed: 0.0,
            phase: ClientPhase::AwaitInitial {
                deadline: Instant::now() + CLIENT_WAIT_BUDGET,
            },
        }
    }

    /// Hand the driver a message received outside of `pump` (blocking
    /// wrapper); it is consumed before the endpoint is polled again.
    fn stash(&mut self, message: ServerToClient) {
        debug_assert!(self.stashed.is_none(), "stash overwrites pending message");
        self.stashed = Some(message);
    }

    /// The endpoint reported its peer gone. Before writing the server off,
    /// retry [`ClientEndpoint::reconnect`] under exponential backoff — a
    /// client caught mid-takeover heals once the warm standby finishes
    /// adopting its shard. `Err(Timeout)` from the endpoint means "still
    /// down, retry later"; `Err(Disconnected)` means the endpoint cannot
    /// ever re-dial (the default), which latches local-only mode at once.
    fn endpoint_lost<E: ClientEndpoint>(&mut self, endpoint: &mut E) {
        if self.disconnected {
            return;
        }
        for attempt in 0..RECONNECT_ATTEMPTS {
            match endpoint.reconnect() {
                Ok(()) => {
                    self.reconnects += 1;
                    return;
                }
                Err(st_net::TransportError::Disconnected) => break,
                Err(_) => {
                    std::thread::sleep(reconnect_backoff_delay(attempt, &mut self.reconnect_rng))
                }
            }
        }
        self.disconnected = true;
    }

    /// Resolve the current wait without a message — the blocking wrapper's
    /// `recv_timeout` expired. This preserves the original blocking-loop
    /// semantics of "one receive attempt, then move on", even for scripted
    /// endpoints whose `recv_timeout` does not honour wall-clock timeouts.
    fn deadline_expired(&mut self) -> Result<()> {
        match self.phase {
            ClientPhase::AwaitInitial { .. } => {
                // Server unavailable; serve with the local checkpoint.
                self.phase = ClientPhase::Serving;
                Ok(())
            }
            ClientPhase::AwaitUpdate { .. } => self.complete_frame(None, true),
            _ => Ok(()),
        }
    }

    /// Next downlink message without blocking: the stash first, then the
    /// endpoint. Transport errors latch `disconnected`.
    fn next_message<E: ClientEndpoint>(&mut self, endpoint: &mut E) -> Option<ServerToClient> {
        if let Some(message) = self.stashed.take() {
            return Some(message);
        }
        match endpoint.try_recv() {
            Ok(message) => message,
            Err(st_net::TransportError::Disconnected) => {
                self.endpoint_lost(endpoint);
                None
            }
            Err(_) => None,
        }
    }

    /// Advance as far as possible without blocking, yielding after each
    /// completed frame.
    fn pump<E: ClientEndpoint>(&mut self, endpoint: &mut E) -> Result<PumpState> {
        loop {
            match self.phase {
                ClientPhase::AwaitInitial { deadline } => match self.next_message(endpoint) {
                    Some(ServerToClient::InitialStudent { payload }) => {
                        if let Some(data) = payload.data {
                            self.apply_weight_payload(&data, SnapshotScope::Full)?;
                        }
                        self.phase = ClientPhase::Serving;
                    }
                    // Any other reply still proves the server is reachable;
                    // serve with the local checkpoint rather than stalling.
                    Some(_) => self.phase = ClientPhase::Serving,
                    None if self.disconnected || Instant::now() >= deadline => {
                        self.phase = ClientPhase::Serving;
                    }
                    None => return Ok(PumpState::Waiting(deadline)),
                },
                ClientPhase::Serving => {
                    if self.cursor >= self.frames.len() {
                        endpoint.send(ClientToServer::Shutdown, 1).ok();
                        self.elapsed = self.started.elapsed().as_secs_f64();
                        self.phase = ClientPhase::Finished;
                        return Ok(PumpState::Finished);
                    }
                    let frame = &self.frames[self.cursor];
                    self.frame_bytes = frame.raw_rgb_bytes();
                    let decision = self.client.begin_frame();
                    if decision.is_key_frame {
                        let payload = Payload::with_data(encode_frame(frame));
                        let bytes = payload.bytes;
                        self.uplink_bytes += bytes;
                        if endpoint
                            .send(
                                ClientToServer::KeyFrame {
                                    frame_index: frame.index,
                                    payload,
                                },
                                bytes,
                            )
                            .is_err()
                        {
                            self.endpoint_lost(endpoint);
                        }
                    }

                    let prediction = self.client_student.predict(&frame.image)?;
                    let reference = self.reference_teacher.pseudo_label(frame)?;
                    let value = miou(
                        &prediction,
                        &reference,
                        self.client_student.config.num_classes,
                    )?
                    .value;
                    self.pending_frame = Some(PendingFrame {
                        index: frame.index,
                        is_key_frame: decision.is_key_frame,
                        miou: value,
                    });

                    // Poll (or wait, if the deferral budget is exhausted) for
                    // the update.
                    if decision.must_wait_for_update && self.client.update_outstanding() {
                        self.phase = ClientPhase::AwaitUpdate {
                            deadline: Instant::now() + CLIENT_WAIT_BUDGET,
                        };
                    } else {
                        let incoming = self.next_message(endpoint);
                        self.complete_frame(incoming, false)?;
                        return Ok(PumpState::Runnable);
                    }
                }
                ClientPhase::AwaitUpdate { deadline } => match self.next_message(endpoint) {
                    Some(message) => {
                        self.complete_frame(Some(message), true)?;
                        return Ok(PumpState::Runnable);
                    }
                    None if self.disconnected || Instant::now() >= deadline => {
                        self.complete_frame(None, true)?;
                        return Ok(PumpState::Runnable);
                    }
                    None => return Ok(PumpState::Waiting(deadline)),
                },
                ClientPhase::Finished => return Ok(PumpState::Finished),
            }
        }
    }

    /// Apply one downlink weight payload to the local student. Without delta
    /// negotiation the bytes are a bare [`WeightSnapshot`] at `scope`; with
    /// it they are a [`WeightPayload`] envelope, and the digest is patched
    /// with exactly the chunks that were applied — the client-side mirror of
    /// the server's per-stream delta track, so the two bases stay in
    /// lockstep without exchanging digests. A delta whose base hash does not
    /// match the held checkpoint is rejected (counted, weights untouched);
    /// the server's re-sync rule — a full envelope after any restore —
    /// clears the condition on the next update.
    fn apply_weight_payload(&mut self, data: &bytes::Bytes, scope: SnapshotScope) -> Result<()> {
        let Some(sync) = &mut self.sync else {
            let snapshot = WeightSnapshot::decode(data, scope)?;
            snapshot.apply(&mut self.client_student)?;
            return Ok(());
        };
        let payload = <WeightPayload as Wire>::decode(&mut &data[..])
            .map_err(|e| st_tensor::TensorError::InvalidArgument(format!("weight payload: {e}")))?;
        match payload {
            WeightPayload::Full(snapshot) => {
                snapshot.apply(&mut self.client_student)?;
                sync.previous = Some(sync.digest.combined());
                sync.digest.patch(&snapshot);
                sync.stats.full_updates_applied += 1;
            }
            WeightPayload::Delta(delta) => {
                if delta.check_base(&sync.digest, sync.previous).is_err() {
                    sync.stats.delta_rejections += 1;
                    return Ok(());
                }
                let (sparse, chunks) = delta.into_parts()?;
                sparse.apply(&mut self.client_student)?;
                sync.previous = Some(sync.digest.combined());
                sync.digest.patch_chunks(&chunks);
                sync.stats.delta_updates_applied += 1;
            }
        }
        Ok(())
    }

    /// Finish the in-flight frame: handle `incoming`, apply a deferred
    /// post-training metric, and record the frame.
    fn complete_frame(&mut self, incoming: Option<ServerToClient>, waited: bool) -> Result<()> {
        match incoming {
            Some(ServerToClient::StudentUpdate {
                frame_index,
                metric,
                distill_steps,
                payload,
            }) => {
                if let Some(data) = payload.data {
                    self.downlink_bytes += data.len();
                    self.update_bytes = data.len();
                    self.apply_weight_payload(&data, SnapshotScope::TrainableOnly)?;
                }
                self.pending_metric = Some((frame_index, metric, distill_steps));
            }
            // Admission control rejected the key frame: no update will come,
            // so the student keeps serving with its current weights — exactly
            // what partial distillation already tolerates between updates. A
            // `Throttle` is an explicit back-pressure signal, so it also
            // stretches the key-frame stride (client-side pacing) instead of
            // re-offering key frames at the rejected rate; a `Dropped` frame
            // keeps the current schedule.
            Some(ServerToClient::Throttle { .. }) => self.client.throttled_update(),
            Some(ServerToClient::Dropped { .. }) => self.client.abandon_update(),
            _ => {}
        }
        if let Some((frame_index, metric, steps)) = self.pending_metric.take() {
            if self.client.update_outstanding() {
                self.client.apply_update(metric);
                self.key_records.push(KeyFrameRecord {
                    frame_index,
                    steps,
                    initial_metric: 0.0,
                    metric,
                    stride_after: self.client.stride(),
                });
            }
        }
        let pending = self.pending_frame.take().expect("a frame is in flight");
        self.frame_records.push(FrameRecord {
            index: pending.index,
            is_key_frame: pending.is_key_frame,
            miou: pending.miou,
            waited,
        });
        self.cursor += 1;
        self.phase = ClientPhase::Serving;
        Ok(())
    }

    /// Consume the driver into the stream's record and final checkpoint.
    fn into_output(mut self) -> ClientLoopOutput {
        let final_student = WeightSnapshot::capture(&mut self.client_student, SnapshotScope::Full);
        let record = ExperimentRecord {
            label: self.label.to_string(),
            variant: format!("{}-{}", self.variant_prefix, self.config.mode.label()),
            frames: self.frame_records.len(),
            frame_records: self.frame_records,
            key_frames: self.key_records,
            frame_bytes: self.frame_bytes,
            update_bytes: self.update_bytes,
            uplink_bytes: self.uplink_bytes,
            downlink_bytes: self.downlink_bytes,
            total_time: self.elapsed,
            config: self.config,
            latency: LatencyProfile::paper(),
        };
        ClientLoopOutput {
            record,
            final_student,
            delta: self.sync.map(|sync| sync.stats).unwrap_or_default(),
        }
    }
}

/// Algorithm 4 driven to completion over one [`ClientEndpoint`], blocking in
/// `recv_timeout` whenever the state machine waits. This is the
/// thread-per-client pump; [`run_live`] and
/// [`ClientDriverMode::ThreadPerClient`] use it directly.
pub(crate) fn drive_client<E: ClientEndpoint>(
    config: ShadowTutorConfig,
    frames: &[Frame],
    client_student: StudentNet,
    endpoint: &mut E,
    label: &str,
    variant_prefix: &str,
    delta_updates: bool,
) -> Result<ClientLoopOutput> {
    let mut driver = ClientDriver::new(
        config,
        frames,
        client_student,
        label,
        variant_prefix,
        delta_updates,
    );
    loop {
        match driver.pump(endpoint)? {
            PumpState::Runnable => {}
            PumpState::Finished => return Ok(driver.into_output()),
            PumpState::Waiting(deadline) => {
                let timeout = deadline.saturating_duration_since(Instant::now());
                match endpoint.recv_timeout(timeout) {
                    Ok(message) => driver.stash(message),
                    Err(st_net::TransportError::Disconnected) => driver.endpoint_lost(endpoint),
                    Err(st_net::TransportError::Timeout) => driver.deadline_expired()?,
                }
            }
        }
    }
}

/// Run ShadowTutor with a real client thread and a real server thread over
/// an in-process transport. Frames are drawn from `frames` (pre-generated so
/// the video source does not add nondeterminism between the roles).
pub fn run_live(
    config: ShadowTutorConfig,
    frames: Vec<Frame>,
    student: StudentNet,
    teacher: OracleTeacher,
    label: &str,
) -> Result<LiveRunOutcome> {
    config.validate()?;
    let (mut client_tp, mut server_tp) =
        st_net::transport::DuplexTransport::<ClientToServer, ServerToClient>::pair();

    let partial = matches!(config.mode, DistillationMode::Partial);
    let latency = LatencyProfile::paper();
    let server_student = student.clone();
    let server_config = config;
    // The key-frame message carries the encoded pixels for realistic wire
    // sizes, but the in-process server resolves the actual frame content by
    // index from this pre-shared copy of the stream (re-decoding would only
    // add quantisation noise to the demo).
    let server_frames: std::collections::HashMap<usize, Frame> =
        frames.iter().map(|f| (f.index, f.clone())).collect();

    // ---------------- server thread (Algorithm 3) ----------------
    let server_handle = std::thread::spawn(move || -> Result<(usize, usize)> {
        let mut server = ServerState::new(
            server_config,
            server_student,
            teacher,
            latency.distill_step(partial),
        );
        // Line 1: send the initial full checkpoint.
        let initial = server.initial_checkpoint();
        let payload = Payload::with_data(initial.encode());
        let bytes = payload.bytes;
        server_tp
            .send(ServerToClient::InitialStudent { payload }, bytes)
            .ok();
        // Lines 2-7: serve key frames until shutdown (a Shutdown message,
        // a receive error, or a dead peer all end the loop).
        while let Ok(ClientToServer::KeyFrame {
            frame_index,
            payload: _,
        }) = server_tp.recv_timeout(Duration::from_secs(30))
        {
            let Some(frame) = server_frames.get(&frame_index) else {
                continue;
            };
            let response = server.handle_key_frame(frame)?;
            let payload = Payload::with_data(response.update.encode());
            let bytes = payload.bytes;
            let msg = ServerToClient::StudentUpdate {
                frame_index,
                metric: response.metric,
                distill_steps: response.outcome.steps,
                payload,
            };
            if server_tp.send(msg, bytes).is_err() {
                break;
            }
        }
        Ok((server.key_frames_processed(), server.distill_steps_taken()))
    });

    // ---------------- client (Algorithm 4), on this thread ----------------
    let output = drive_client(
        config,
        &frames,
        student,
        &mut client_tp,
        label,
        "live",
        false,
    )?;
    drop(client_tp);

    let (server_key_frames, server_distill_steps) = server_handle
        .join()
        .map_err(|_| st_tensor::TensorError::InvalidArgument("server thread panicked".into()))?
        .unwrap_or((0, 0));

    Ok(LiveRunOutcome {
        record: output.record,
        server_key_frames,
        server_distill_steps,
        final_student: output.final_student,
        delta: output.delta,
    })
}

/// Run M concurrent client streams against one sharded server pool.
///
/// Every stream starts from the same pre-trained `student` checkpoint; the
/// pool keeps one isolated distillation session per stream and batches
/// teacher forward passes across streams that land on the same shard. Each
/// shard's teacher comes from `teacher_factory(shard_index)`.
///
/// # Example
///
/// ```
/// use shadowtutor::config::ShadowTutorConfig;
/// use shadowtutor::runtime::live::{run_live_multi, StreamSpec};
/// use shadowtutor::serve::PoolConfig;
/// use st_nn::student::{StudentConfig, StudentNet};
/// use st_teacher::OracleTeacher;
/// use st_video::dataset::tiny_stream;
/// use st_video::SceneKind;
///
/// let streams = vec![
///     StreamSpec {
///         stream_id: 0,
///         label: "people".into(),
///         frames: tiny_stream(SceneKind::People, 1, 12),
///     },
///     StreamSpec {
///         stream_id: 1,
///         label: "animals".into(),
///         frames: tiny_stream(SceneKind::Animals, 2, 12),
///     },
/// ];
/// let outcome = run_live_multi(
///     ShadowTutorConfig::paper(),
///     streams,
///     StudentNet::new(StudentConfig::tiny()).unwrap(),
///     PoolConfig::with_shards(2),
///     |shard| OracleTeacher::perfect(10 + shard as u64),
/// )
/// .unwrap();
/// assert_eq!(outcome.streams.len(), 2);
/// // The pool's statistics condense into the operator report.
/// let report = outcome.pool.snapshot();
/// assert_eq!(report.total_key_frames, outcome.pool.total_key_frames());
/// ```
pub fn run_live_multi<T, F>(
    config: ShadowTutorConfig,
    streams: Vec<StreamSpec>,
    student: StudentNet,
    pool_config: PoolConfig,
    teacher_factory: F,
) -> Result<MultiLiveOutcome>
where
    T: Teacher + Send + 'static,
    F: FnMut(usize) -> T,
{
    run_live_multi_with(
        config,
        streams,
        student,
        pool_config,
        teacher_factory,
        ClientDriverMode::default(),
    )
}

/// How [`run_live_multi`] hosts its client loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ClientDriverMode {
    /// One driver thread multiplexes every client endpoint through a single
    /// [`st_net::Poller`]: each client is pumped when its downlink has
    /// traffic or its wait deadline expires. Client count is decoupled from
    /// thread count (the client-side mirror of the pool's reactor mode), and
    /// the first client error aborts the whole run eagerly instead of
    /// surfacing only after every other stream has finished.
    #[default]
    Multiplexed,
    /// One OS thread per client, each blocking in `recv_timeout` on its own
    /// endpoint — the pre-reactor behaviour, kept for A/B comparison.
    ThreadPerClient,
}

/// [`run_live_multi`] with an explicit [`ClientDriverMode`], for comparing
/// the multiplexed driver against thread-per-client on the same workload.
pub fn run_live_multi_with<T, F>(
    config: ShadowTutorConfig,
    streams: Vec<StreamSpec>,
    student: StudentNet,
    pool_config: PoolConfig,
    teacher_factory: F,
    mode: ClientDriverMode,
) -> Result<MultiLiveOutcome>
where
    T: Teacher + Send + 'static,
    F: FnMut(usize) -> T,
{
    config.validate()?;
    pool_config.validate()?;
    // Duplicate ids would silently replace each other's pool registration
    // (the second connect overwrites the first stream's downlink), so the
    // resulting transport error would point nowhere near the cause — fail
    // fast instead.
    let mut seen = std::collections::HashSet::new();
    for spec in &streams {
        if !seen.insert(spec.stream_id) {
            return Err(st_tensor::TensorError::InvalidArgument(format!(
                "duplicate stream id {} in run_live_multi specs",
                spec.stream_id
            )));
        }
    }
    let partial = matches!(config.mode, DistillationMode::Partial);
    let latency = LatencyProfile::paper();
    let started = Instant::now();

    // The pool's connect negotiates delta updates on every stream when the
    // config asks for them, so the client drivers must decode envelopes.
    let delta_updates = pool_config.delta_updates;
    let pool = ServerPool::spawn(
        config,
        pool_config,
        student.clone(),
        latency.distill_step(partial),
        teacher_factory,
    )?;

    // Both drivers drop every endpoint before returning, so the pool sees
    // all streams disconnect and `join` can complete.
    let outputs = match mode {
        ClientDriverMode::Multiplexed => {
            drive_multiplexed(config, &streams, &student, &pool, delta_updates)
        }
        ClientDriverMode::ThreadPerClient => {
            drive_thread_per_client(config, &streams, &student, &pool, delta_updates)
        }
    };
    // Join the pool even when the client side failed (its workers own the
    // teachers, and an abandoned pool would leak threads). A worker error
    // usually *explains* a client-side failure, so it takes precedence.
    let (pool_stats, outputs) = match (pool.join(), outputs) {
        (Err(worker_error), _) => return Err(worker_error.into()),
        (Ok(_), Err(client_error)) => return Err(client_error),
        (Ok(stats), Ok(outputs)) => (stats, outputs),
    };
    let wall_time = started.elapsed().as_secs_f64();

    let mut per_stream = Vec::with_capacity(outputs.len());
    for (spec, output) in streams.iter().zip(outputs) {
        let server = pool_stats
            .streams
            .get(&spec.stream_id)
            .copied()
            .unwrap_or_default();
        per_stream.push(LiveRunOutcome {
            record: output.record,
            server_key_frames: server.key_frames,
            server_distill_steps: server.distill_steps,
            final_student: output.final_student,
            delta: output.delta,
        });
    }
    Ok(MultiLiveOutcome {
        streams: per_stream,
        pool: pool_stats,
        wall_time,
    })
}

/// Drive every client state machine from the calling thread, multiplexed
/// over one [`st_net::Poller`]. Poll token `i` maps to `streams[i]`: a
/// downlink delivery for a stream wakes its token, and expired wait
/// deadlines make a client runnable again without a wakeup. Clients are
/// pumped one frame at a time round-robin, so a long stream cannot starve
/// the others.
///
/// The first client error aborts the run eagerly: every endpoint is dropped
/// on the way out (satellite of the reactor refactor — the old
/// thread-per-client scope only surfaced failures after all other client
/// threads had run to completion).
fn drive_multiplexed(
    config: ShadowTutorConfig,
    streams: &[StreamSpec],
    student: &StudentNet,
    pool: &ServerPool,
    delta_updates: bool,
) -> Result<Vec<ClientLoopOutput>> {
    let poller = st_net::Poller::new();
    let mut endpoints = Vec::with_capacity(streams.len());
    for (token, spec) in streams.iter().enumerate() {
        endpoints.push(pool.connect_with_waker(
            spec.stream_id,
            &spec.frames,
            Some(poller.waker(token)),
        )?);
    }
    let mut drivers: Vec<Option<ClientDriver<'_>>> = streams
        .iter()
        .map(|spec| {
            Some(ClientDriver::new(
                config,
                &spec.frames,
                student.clone(),
                &spec.label,
                "live-multi",
                delta_updates,
            ))
        })
        .collect();
    let mut outputs: Vec<Option<ClientLoopOutput>> = streams.iter().map(|_| None).collect();
    let mut deadlines: Vec<Option<Instant>> = vec![None; streams.len()];
    let mut runnable = vec![true; streams.len()];
    let mut live = streams.len();

    while live > 0 {
        // Pump every runnable client one frame per round until all of them
        // are waiting or finished.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for token in 0..streams.len() {
                if !std::mem::take(&mut runnable[token]) {
                    continue;
                }
                let Some(driver) = drivers[token].as_mut() else {
                    continue;
                };
                match driver.pump(&mut endpoints[token])? {
                    PumpState::Runnable => {
                        runnable[token] = true;
                        progressed = true;
                    }
                    PumpState::Waiting(deadline) => deadlines[token] = Some(deadline),
                    PumpState::Finished => {
                        let driver = drivers[token].take().expect("driver present");
                        outputs[token] = Some(driver.into_output());
                        deadlines[token] = None;
                        live -= 1;
                    }
                }
            }
        }
        if live == 0 {
            break;
        }
        // Sleep until the nearest client deadline (capped so a lost wakeup
        // cannot stall the loop); any downlink delivery ends the sleep early
        // and marks its client runnable. Wakeups may race a message the pump
        // already consumed — a spurious pump is harmless.
        let now = Instant::now();
        let mut timeout = MUX_IDLE_TICK;
        for deadline in deadlines.iter().flatten() {
            timeout = timeout.min(deadline.saturating_duration_since(now));
        }
        for &token in poller.poll(timeout).tokens() {
            if drivers[token].is_some() {
                runnable[token] = true;
            }
        }
        let now = Instant::now();
        for token in 0..streams.len() {
            if deadlines[token].is_some_and(|deadline| now >= deadline) && drivers[token].is_some()
            {
                runnable[token] = true;
            }
        }
    }
    Ok(outputs
        .into_iter()
        .map(|output| output.expect("every client finished"))
        .collect())
}

/// Drive each client on its own OS thread (the pre-reactor topology). Errors
/// surface only after every client thread has joined; kept as the A/B
/// baseline for [`ClientDriverMode::Multiplexed`].
fn drive_thread_per_client(
    config: ShadowTutorConfig,
    streams: &[StreamSpec],
    student: &StudentNet,
    pool: &ServerPool,
    delta_updates: bool,
) -> Result<Vec<ClientLoopOutput>> {
    let mut endpoints = Vec::with_capacity(streams.len());
    for spec in streams {
        endpoints.push(pool.connect(spec.stream_id, &spec.frames)?);
    }
    let mut outputs: Vec<Result<ClientLoopOutput>> = Vec::with_capacity(streams.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(streams.len());
        for (spec, mut endpoint) in streams.iter().zip(endpoints) {
            let checkpoint = student.clone();
            handles.push(scope.spawn(move || {
                let result = drive_client(
                    config,
                    &spec.frames,
                    checkpoint,
                    &mut endpoint,
                    &spec.label,
                    "live-multi",
                    delta_updates,
                );
                drop(endpoint);
                result
            }));
        }
        for handle in handles {
            outputs.push(handle.join().unwrap_or_else(|_| {
                Err(st_tensor::TensorError::InvalidArgument(
                    "client thread panicked".into(),
                ))
            }));
        }
    });
    outputs.into_iter().collect()
}

/// Encode a frame's pixels into bytes (8-bit RGB) for transport sizing.
fn encode_frame(frame: &Frame) -> bytes::Bytes {
    let mut out = Vec::with_capacity(frame.raw_rgb_bytes());
    for &v in frame.image.data() {
        out.push((v.clamp(0.0, 1.0) * 255.0) as u8);
    }
    bytes::Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_video::dataset::tiny_stream as frames_for;
    use st_video::SceneKind;

    #[test]
    fn encode_frame_matches_raw_size() {
        let f = &frames_for(SceneKind::People, 1, 1)[0];
        assert_eq!(encode_frame(f).len(), f.raw_rgb_bytes());
    }

    /// A scripted server half: sends the initial checkpoint, then answers
    /// every key frame with a `Throttle` instead of a `StudentUpdate`.
    struct ThrottlingEndpoint {
        queue: std::collections::VecDeque<ServerToClient>,
        key_frames_seen: usize,
        shutdowns_seen: usize,
    }

    impl ThrottlingEndpoint {
        fn new() -> Self {
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(ServerToClient::InitialStudent {
                payload: Payload::sized(0),
            });
            ThrottlingEndpoint {
                queue,
                key_frames_seen: 0,
                shutdowns_seen: 0,
            }
        }
    }

    impl ClientEndpoint for ThrottlingEndpoint {
        fn send(
            &mut self,
            message: ClientToServer,
            _bytes: usize,
        ) -> std::result::Result<(), st_net::TransportError> {
            match message {
                ClientToServer::KeyFrame { frame_index, .. } => {
                    self.key_frames_seen += 1;
                    self.queue
                        .push_back(ServerToClient::Throttle { frame_index });
                }
                ClientToServer::Shutdown => self.shutdowns_seen += 1,
                ClientToServer::Register
                | ClientToServer::RegisterCaps { .. }
                | ClientToServer::ReShare { .. } => {}
            }
            Ok(())
        }

        fn try_recv(
            &mut self,
        ) -> std::result::Result<Option<ServerToClient>, st_net::TransportError> {
            Ok(self.queue.pop_front())
        }

        fn recv_timeout(
            &mut self,
            _timeout: Duration,
        ) -> std::result::Result<ServerToClient, st_net::TransportError> {
            self.queue
                .pop_front()
                .ok_or(st_net::TransportError::Timeout)
        }
    }

    #[test]
    fn throttled_client_falls_back_to_local_inference() {
        let frames = frames_for(SceneKind::People, 6, 40);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let mut endpoint = ThrottlingEndpoint::new();
        let output = drive_client(
            ShadowTutorConfig::paper(),
            &frames,
            student,
            &mut endpoint,
            "throttled",
            "live",
            false,
        )
        .unwrap();
        // Every frame was served locally — the run completed without ever
        // blocking on an update that would never come.
        assert_eq!(output.record.frames, 40);
        assert!(output
            .record
            .frame_records
            .iter()
            .all(|f| (0.0..=1.0).contains(&f.miou)));
        // No update was ever applied, but each throttle stretched the stride
        // (8 -> 16 -> 32), so only the key frames at 0 and 16 went out — the
        // third would land at frame 48, past the end of the stream. The old
        // behaviour (re-offering every MIN_STRIDE frames) would have sent 5.
        assert_eq!(output.record.key_frames.len(), 0);
        assert_eq!(endpoint.key_frames_seen, 2);
        assert_eq!(endpoint.shutdowns_seen, 1);
        // The throttle cleared the outstanding update each time, so the
        // deferral deadline never forced a blocking wait.
        assert!(output.record.frame_records.iter().all(|f| !f.waited));
    }

    /// A scripted server half that throttles the first `throttles_left` key
    /// frames and then answers the rest with real (weightless) updates.
    struct RecoveringEndpoint {
        queue: std::collections::VecDeque<ServerToClient>,
        throttles_left: usize,
        key_frames_seen: usize,
        updates_sent: usize,
    }

    impl RecoveringEndpoint {
        fn new(throttles: usize) -> Self {
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(ServerToClient::InitialStudent {
                payload: Payload::sized(0),
            });
            RecoveringEndpoint {
                queue,
                throttles_left: throttles,
                key_frames_seen: 0,
                updates_sent: 0,
            }
        }
    }

    impl ClientEndpoint for RecoveringEndpoint {
        fn send(
            &mut self,
            message: ClientToServer,
            _bytes: usize,
        ) -> std::result::Result<(), st_net::TransportError> {
            match message {
                ClientToServer::KeyFrame { frame_index, .. } => {
                    self.key_frames_seen += 1;
                    if self.throttles_left > 0 {
                        self.throttles_left -= 1;
                        self.queue
                            .push_back(ServerToClient::Throttle { frame_index });
                    } else {
                        self.updates_sent += 1;
                        self.queue.push_back(ServerToClient::StudentUpdate {
                            frame_index,
                            // Ratio 0.5 under Algorithm 2: each applied
                            // update halves the stride (floored at
                            // MIN_STRIDE).
                            metric: 0.4,
                            distill_steps: 1,
                            payload: Payload::sized(0),
                        });
                    }
                }
                ClientToServer::Shutdown => {}
                ClientToServer::Register
                | ClientToServer::RegisterCaps { .. }
                | ClientToServer::ReShare { .. } => {}
            }
            Ok(())
        }

        fn try_recv(
            &mut self,
        ) -> std::result::Result<Option<ServerToClient>, st_net::TransportError> {
            Ok(self.queue.pop_front())
        }

        fn recv_timeout(
            &mut self,
            _timeout: Duration,
        ) -> std::result::Result<ServerToClient, st_net::TransportError> {
            self.queue
                .pop_front()
                .ok_or(st_net::TransportError::Timeout)
        }
    }

    #[test]
    fn throttled_stream_recovers_without_drops_once_admission_reopens() {
        let frames = frames_for(SceneKind::People, 6, 100);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let mut endpoint = RecoveringEndpoint::new(2);
        let output = drive_client(
            ShadowTutorConfig::paper(),
            &frames,
            student,
            &mut endpoint,
            "recovering",
            "live",
            false,
        )
        .unwrap();
        // Back-off under throttles: keys at 0 (stride 8 -> 16) and 16
        // (16 -> 32); the server accepts again at 48 and the poor metric
        // walks the stride back down (32 -> 16 -> 8), so key frames resume
        // at 48, 64, 72, 80, 88, 96.
        assert_eq!(output.record.frames, 100);
        assert_eq!(endpoint.key_frames_seen, 8);
        assert_eq!(endpoint.updates_sent, 6);
        // Every accepted key frame produced an applied update — nothing was
        // dropped or abandoned once admission reopened.
        assert_eq!(output.record.key_frames.len(), 6);
        assert_eq!(
            output.record.key_frames.first().unwrap().frame_index,
            frames[48].index
        );
        // The stride recovered from the 32-frame back-off to MIN_STRIDE.
        assert_eq!(output.record.key_frames.last().unwrap().stride_after, 8);
        // Pacing, not blocking: no frame ever waited on a throttled update.
        assert!(output.record.frame_records.iter().all(|f| !f.waited));
    }

    /// A scripted server half that drops the connection after serving the
    /// first key frame's update, refuses `reconnect_failures` re-dials
    /// (reporting `Timeout`, the "still down, retry later" signal a pool
    /// mid-takeover gives), then heals and answers normally again.
    struct FlakyEndpoint {
        queue: std::collections::VecDeque<ServerToClient>,
        key_frames_seen: usize,
        drop_after_next_update: bool,
        down: bool,
        reconnect_failures: usize,
        reconnect_calls: usize,
    }

    impl FlakyEndpoint {
        fn new(reconnect_failures: usize) -> Self {
            let mut queue = std::collections::VecDeque::new();
            queue.push_back(ServerToClient::InitialStudent {
                payload: Payload::sized(0),
            });
            FlakyEndpoint {
                queue,
                key_frames_seen: 0,
                drop_after_next_update: true,
                down: false,
                reconnect_failures,
                reconnect_calls: 0,
            }
        }
    }

    impl ClientEndpoint for FlakyEndpoint {
        fn send(
            &mut self,
            message: ClientToServer,
            _bytes: usize,
        ) -> std::result::Result<(), st_net::TransportError> {
            if self.down {
                return Err(st_net::TransportError::Disconnected);
            }
            if let ClientToServer::KeyFrame { frame_index, .. } = message {
                self.key_frames_seen += 1;
                self.queue.push_back(ServerToClient::StudentUpdate {
                    frame_index,
                    metric: 0.9,
                    distill_steps: 1,
                    payload: Payload::sized(0),
                });
            }
            Ok(())
        }

        fn try_recv(
            &mut self,
        ) -> std::result::Result<Option<ServerToClient>, st_net::TransportError> {
            if self.down {
                return Err(st_net::TransportError::Disconnected);
            }
            let message = self.queue.pop_front();
            if matches!(message, Some(ServerToClient::StudentUpdate { .. }))
                && self.drop_after_next_update
            {
                // The shard hosting this stream dies right after this
                // update is delivered.
                self.drop_after_next_update = false;
                self.down = true;
            }
            Ok(message)
        }

        fn recv_timeout(
            &mut self,
            _timeout: Duration,
        ) -> std::result::Result<ServerToClient, st_net::TransportError> {
            if self.down {
                return Err(st_net::TransportError::Disconnected);
            }
            self.try_recv()?.ok_or(st_net::TransportError::Timeout)
        }

        fn reconnect(&mut self) -> std::result::Result<(), st_net::TransportError> {
            self.reconnect_calls += 1;
            if self.reconnect_calls > self.reconnect_failures {
                self.down = false;
                Ok(())
            } else {
                Err(st_net::TransportError::Timeout)
            }
        }
    }

    #[test]
    fn client_reconnects_with_backoff_and_finishes_the_run() {
        let frames = frames_for(SceneKind::People, 6, 60);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let mut endpoint = FlakyEndpoint::new(3);
        let output = drive_client(
            ShadowTutorConfig::paper(),
            &frames,
            student,
            &mut endpoint,
            "flaky",
            "live",
            false,
        )
        .unwrap();
        // The drop was survived: the whole stream was served, and key
        // frames kept flowing to the (healed) server afterwards.
        assert_eq!(output.record.frames, 60);
        // 3 refused re-dials, then the 4th heals — well inside the 8-attempt
        // backoff budget, so the client never latched local-only mode.
        assert_eq!(endpoint.reconnect_calls, 4);
        assert!(
            endpoint.key_frames_seen >= 2,
            "key frames should resume after the reconnect, saw {}",
            endpoint.key_frames_seen
        );
        // Updates were applied both before the drop and after the heal.
        assert!(output.record.key_frames.len() >= 2);
    }

    /// An endpoint with no reconnect override gives up after one refused
    /// re-dial (the trait default reports `Disconnected`, not `Timeout`) and
    /// the client falls back to local-only serving — the pre-failover
    /// behaviour, with no multi-second backoff ladder.
    struct DeadEndpoint;

    impl ClientEndpoint for DeadEndpoint {
        fn send(
            &mut self,
            _message: ClientToServer,
            _bytes: usize,
        ) -> std::result::Result<(), st_net::TransportError> {
            Err(st_net::TransportError::Disconnected)
        }

        fn try_recv(
            &mut self,
        ) -> std::result::Result<Option<ServerToClient>, st_net::TransportError> {
            Err(st_net::TransportError::Disconnected)
        }

        fn recv_timeout(
            &mut self,
            _timeout: Duration,
        ) -> std::result::Result<ServerToClient, st_net::TransportError> {
            Err(st_net::TransportError::Disconnected)
        }
    }

    #[test]
    fn unreconnectable_endpoint_falls_back_to_local_serving() {
        let frames = frames_for(SceneKind::People, 6, 20);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let started = Instant::now();
        let output = drive_client(
            ShadowTutorConfig::paper(),
            &frames,
            student,
            &mut DeadEndpoint,
            "dead",
            "live",
            false,
        )
        .unwrap();
        assert_eq!(output.record.frames, 20);
        assert_eq!(output.record.key_frames.len(), 0);
        // The give-up path must not sit through the full backoff ladder.
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn live_run_completes_with_real_threads() {
        let frames = frames_for(SceneKind::People, 2, 20);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let outcome = run_live(
            ShadowTutorConfig::paper(),
            frames,
            student,
            OracleTeacher::perfect(1),
            "live-test",
        )
        .unwrap();
        assert_eq!(outcome.record.frames, 20);
        assert!(outcome.record.total_time > 0.0);
        assert!(outcome.record.frame_records[0].is_key_frame);
        assert!(outcome.record.uplink_bytes > 0);
        assert_eq!(outcome.final_student.scope(), SnapshotScope::Full);
        assert!(outcome.final_student.entry_count() > 0);
    }

    #[test]
    fn multi_run_rejects_duplicate_stream_ids() {
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let spec = StreamSpec {
            stream_id: 7,
            label: "dup".into(),
            frames: frames_for(SceneKind::People, 5, 4),
        };
        let err = run_live_multi(
            ShadowTutorConfig::paper(),
            vec![spec.clone(), spec],
            student,
            PoolConfig::with_shards(2),
            |_| OracleTeacher::perfect(1),
        )
        .unwrap_err();
        assert!(format!("{err:?}").contains("duplicate stream id"));
    }

    #[test]
    fn multi_run_completes_with_two_streams() {
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let streams = vec![
            StreamSpec {
                stream_id: 0,
                label: "people".into(),
                frames: frames_for(SceneKind::People, 3, 16),
            },
            StreamSpec {
                stream_id: 1,
                label: "animals".into(),
                frames: frames_for(SceneKind::Animals, 4, 16),
            },
        ];
        let outcome = run_live_multi(
            ShadowTutorConfig::paper(),
            streams,
            student,
            PoolConfig::with_shards(2),
            |shard| OracleTeacher::perfect(10 + shard as u64),
        )
        .unwrap();
        assert_eq!(outcome.streams.len(), 2);
        for stream in &outcome.streams {
            assert_eq!(stream.record.frames, 16);
            assert!(stream.record.frame_records[0].is_key_frame);
            assert!(stream.server_key_frames >= 1);
            // The last update can still be in flight when the stream ends, so
            // the server may have processed one more key frame than the
            // client managed to apply.
            assert!(stream.server_key_frames >= stream.record.key_frame_count());
        }
        assert!(outcome.aggregate_fps() > 0.0);
        assert_eq!(
            outcome.pool.total_key_frames(),
            outcome
                .streams
                .iter()
                .map(|s| s.server_key_frames)
                .sum::<usize>()
        );
        assert_eq!(outcome.pool.final_checkpoints.len(), 2);
        assert!(outcome.wall_time > 0.0);
    }

    /// The multiplexed driver and the thread-per-client driver run the same
    /// protocol: same workload, same per-stream frame counts, same pool
    /// accounting invariants. (Key-frame schedules may differ between runs —
    /// update arrival timing feeds the stride — so only timing-independent
    /// facts are compared.)
    #[test]
    fn multiplexed_and_thread_per_client_drivers_agree() {
        let run = |mode: ClientDriverMode| {
            let student = StudentNet::new(StudentConfig::tiny()).unwrap();
            let streams = vec![
                StreamSpec {
                    stream_id: 0,
                    label: "people".into(),
                    frames: frames_for(SceneKind::People, 3, 16),
                },
                StreamSpec {
                    stream_id: 1,
                    label: "animals".into(),
                    frames: frames_for(SceneKind::Animals, 4, 16),
                },
            ];
            run_live_multi_with(
                ShadowTutorConfig::paper(),
                streams,
                student,
                PoolConfig::with_shards(2),
                |shard| OracleTeacher::perfect(10 + shard as u64),
                mode,
            )
            .unwrap()
        };
        let multiplexed = run(ClientDriverMode::Multiplexed);
        let threaded = run(ClientDriverMode::ThreadPerClient);
        for (a, b) in multiplexed.streams.iter().zip(&threaded.streams) {
            assert_eq!(a.record.frames, b.record.frames);
            assert_eq!(a.record.label, b.record.label);
            assert_eq!(a.record.variant, b.record.variant);
            assert!(a.record.frame_records[0].is_key_frame);
            assert!(b.record.frame_records[0].is_key_frame);
            assert!(a.server_key_frames >= 1);
        }
        for outcome in [&multiplexed, &threaded] {
            assert_eq!(
                outcome.pool.total_key_frames(),
                outcome
                    .streams
                    .iter()
                    .map(|s| s.server_key_frames)
                    .sum::<usize>()
            );
            assert_eq!(outcome.pool.final_checkpoints.len(), 2);
        }
    }

    /// End-to-end fixed-thread topology: a reactor pool (2 workers hosting
    /// 4 shards) under a single multiplexed client driver — 3 OS threads in
    /// total serving 4 streams.
    #[test]
    fn reactor_pool_with_multiplexed_clients_completes() {
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let streams: Vec<StreamSpec> = (0..4)
            .map(|id| StreamSpec {
                stream_id: id as u64,
                label: format!("stream-{id}"),
                frames: frames_for(SceneKind::Street, 20 + id as u64, 12),
            })
            .collect();
        let mut pool_config = PoolConfig::with_shards(4);
        pool_config.reactor_threads = Some(2);
        let outcome = run_live_multi(
            ShadowTutorConfig::paper(),
            streams,
            student,
            pool_config,
            |shard| OracleTeacher::perfect(30 + shard as u64),
        )
        .unwrap();
        assert_eq!(outcome.streams.len(), 4);
        for stream in &outcome.streams {
            assert_eq!(stream.record.frames, 12);
            assert!(stream.record.frame_records[0].is_key_frame);
            assert!(stream.server_key_frames >= 1);
        }
        let report = outcome.pool.snapshot();
        assert!(report.poll_wakeups > 0);
        assert!(report.events_dispatched > 0);
    }
}
