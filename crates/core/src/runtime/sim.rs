//! The deterministic virtual-time runtime.
//!
//! This is the engine behind every table and figure reproduction. It runs
//! Algorithms 3 and 4 with *real* neural-network computation (the student is
//! genuinely trained online, predictions genuinely evaluated) while charging
//! virtual time from a latency profile and a link model, exactly as the
//! paper's analytic execution-time model (§4.4) does. Asynchronous inference
//! is modelled explicitly: a key-frame exchange is given an arrival time, the
//! client keeps processing frames, and only blocks if the update has still
//! not arrived `MIN_STRIDE` frames later.

use crate::client::ClientState;
use crate::config::{DistillationMode, ShadowTutorConfig};
use crate::report::{ExperimentRecord, FrameRecord, KeyFrameRecord};
use crate::server::ServerState;
use crate::stride::StridePolicy;
use crate::Result;
use st_net::LinkModel;
use st_nn::metrics::miou;
use st_nn::snapshot::WeightSnapshot;
use st_nn::student::StudentNet;
use st_sim::{EventKind, LatencyProfile, VirtualClock};
use st_teacher::Teacher;
use st_video::Frame;

/// How the arrival of a student update is determined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DelayModel {
    /// Arrival time follows the link/latency timing model (the default; used
    /// for throughput and traffic experiments).
    Timing,
    /// The update arrives exactly `frames` frames after the key frame
    /// (used for the accuracy experiments of Table 6, which compare a
    /// 1-frame and an 8-frame delay).
    Frames(usize),
}

/// A student update in flight from the server to the client.
struct PendingUpdate {
    update: WeightSnapshot,
    metric: f64,
    arrival_time: f64,
    arrival_frame: usize,
    key_frame_index: usize,
    steps: usize,
    initial_metric: f64,
}

/// The virtual-time runtime.
pub struct SimRuntime {
    /// Algorithm parameters.
    pub config: ShadowTutorConfig,
    /// Component latencies used by the virtual clock.
    pub latency: LatencyProfile,
    /// Link model used for key-frame exchanges.
    pub link: LinkModel,
    /// Update-arrival model.
    pub delay_model: DelayModel,
    /// Key-frame scheduling policy (Algorithm 2 by default).
    pub stride_policy: StridePolicy,
}

impl SimRuntime {
    /// A runtime with the paper's configuration, latency profile and link.
    pub fn paper(mode: DistillationMode) -> Self {
        let config = match mode {
            DistillationMode::Partial => ShadowTutorConfig::paper(),
            DistillationMode::Full => ShadowTutorConfig::paper_full(),
        };
        SimRuntime {
            config,
            latency: LatencyProfile::paper(),
            link: LinkModel::paper_default(),
            delay_model: DelayModel::Timing,
            stride_policy: StridePolicy::Adaptive,
        }
    }

    /// Override the update-arrival model.
    pub fn with_delay_model(mut self, delay_model: DelayModel) -> Self {
        self.delay_model = delay_model;
        self
    }

    /// Override the link model.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Override the stride policy (ablations).
    pub fn with_stride_policy(mut self, policy: StridePolicy) -> Self {
        self.stride_policy = policy;
        self
    }

    /// Run ShadowTutor over `frames` frames pulled from `video`.
    ///
    /// `student` is the pre-trained ("publicly educated") checkpoint: the
    /// server starts training from it and the client starts serving from it.
    /// `label` names the video in the resulting record.
    pub fn run<T, V>(
        &self,
        label: &str,
        video: &mut V,
        frames: usize,
        student: StudentNet,
        teacher: T,
    ) -> Result<ExperimentRecord>
    where
        T: Teacher,
        V: Iterator<Item = Frame>,
    {
        self.config.validate()?;
        let partial = matches!(self.config.mode, DistillationMode::Partial);

        // Server owns the teacher and the trainable copy of the student.
        let mut server = ServerState::new(
            self.config,
            student.clone(),
            teacher,
            self.latency.distill_step(partial),
        );
        let update_bytes = server.update_payload_bytes();

        // Client owns the serving copy and the scheduling state.
        let mut client_student = student;
        client_student.freeze = self.config.mode.freeze_point();
        let mut client = ClientState::new(self.config).with_policy(self.stride_policy);

        let mut clock = VirtualClock::new();
        let mut frame_records = Vec::with_capacity(frames);
        let mut key_records = Vec::new();
        let mut pending: Option<PendingUpdate> = None;
        let mut uplink_bytes = 0usize;
        let mut downlink_bytes = 0usize;
        let mut frame_bytes = 0usize;

        for processed in 0..frames {
            let Some(frame) = video.next() else { break };
            frame_bytes = frame.raw_rgb_bytes();
            let decision = client.begin_frame();

            if decision.is_key_frame {
                // Asynchronous send: the exchange starts now; the client does
                // not block (Algorithm 4 lines 7-8).
                let send_start = clock.now();
                let uplink_time = self.link.uplink_time(frame.raw_rgb_bytes());
                let response = server.handle_key_frame(&frame)?;
                let downlink_time = self.link.downlink_time(update_bytes);
                let arrival_time = send_start + uplink_time + response.server_time + downlink_time;
                let arrival_frame = match self.delay_model {
                    DelayModel::Timing => usize::MAX, // governed by time, not frame count
                    DelayModel::Frames(d) => processed + d,
                };
                uplink_bytes += frame.raw_rgb_bytes();
                downlink_bytes += update_bytes;
                pending = Some(PendingUpdate {
                    update: response.update,
                    metric: response.metric,
                    arrival_time,
                    arrival_frame,
                    key_frame_index: frame.index,
                    steps: response.outcome.steps,
                    initial_metric: response.outcome.initial_metric,
                });
            }

            // Client inference on this frame with its current (possibly
            // stale) student. The prediction is also the accuracy sample:
            // mean IoU against the teacher's label for this frame.
            let prediction = client_student.predict(&frame.image)?;
            clock.advance(self.latency.student_inference, EventKind::StudentInference);
            let reference = server.teacher_mut().pseudo_label(&frame)?;
            let frame_miou =
                miou(&prediction, &reference, client_student.config.num_classes)?.value;

            // Apply the update if it has arrived; block for it if the client
            // has deferred for MIN_STRIDE frames already (Algorithm 4, 14-22).
            let mut waited = false;
            if let Some(p) = &pending {
                let arrived = match self.delay_model {
                    DelayModel::Timing => clock.now() >= p.arrival_time,
                    DelayModel::Frames(_) => processed >= p.arrival_frame,
                };
                let must_wait = decision.must_wait_for_update && !arrived;
                if must_wait {
                    if matches!(self.delay_model, DelayModel::Timing) {
                        clock.advance_to(p.arrival_time, EventKind::WaitForUpdate);
                    }
                    waited = true;
                }
                if arrived || must_wait {
                    let p = pending.take().expect("pending update present");
                    p.update.apply(&mut client_student)?;
                    client.apply_update(p.metric);
                    key_records.push(KeyFrameRecord {
                        frame_index: p.key_frame_index,
                        steps: p.steps,
                        initial_metric: p.initial_metric,
                        metric: p.metric,
                        stride_after: client.stride(),
                    });
                }
            }

            frame_records.push(FrameRecord {
                index: frame.index,
                is_key_frame: decision.is_key_frame,
                miou: frame_miou,
                waited,
            });
        }

        // An update still in flight at the end of the stream counts as a key
        // frame that was sent but whose stride decision never mattered.
        if let Some(p) = pending.take() {
            key_records.push(KeyFrameRecord {
                frame_index: p.key_frame_index,
                steps: p.steps,
                initial_metric: p.initial_metric,
                metric: p.metric,
                stride_after: client.stride(),
            });
        }

        Ok(ExperimentRecord {
            label: label.to_string(),
            variant: self.config.mode.label().to_string(),
            frames: frame_records.len(),
            frame_records,
            key_frames: key_records,
            frame_bytes,
            update_bytes,
            uplink_bytes,
            downlink_bytes,
            total_time: clock.now(),
            config: self.config,
            latency: self.latency,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

    fn video(scene: SceneKind, seed: u64) -> VideoGenerator {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene,
        };
        VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap()
    }

    fn student() -> StudentNet {
        StudentNet::new(StudentConfig::tiny()).unwrap()
    }

    #[test]
    fn run_produces_consistent_record() {
        let runtime = SimRuntime::paper(DistillationMode::Partial);
        let mut gen = video(SceneKind::People, 1);
        let record = runtime
            .run(
                "fixed/people",
                &mut gen,
                40,
                student(),
                OracleTeacher::perfect(1),
            )
            .unwrap();
        assert_eq!(record.frames, 40);
        assert_eq!(record.frame_records.len(), 40);
        assert!(record.key_frame_count() >= 1);
        assert!(record.key_frame_count() <= 1 + 40 / 8);
        assert!(record.total_time > 0.0);
        assert!(record.fps() > 0.0);
        // First frame is always a key frame.
        assert!(record.frame_records[0].is_key_frame);
        // Uplink bytes = key frames * frame size.
        assert_eq!(
            record.uplink_bytes,
            record.key_frame_count() * record.frame_bytes
        );
        assert_eq!(
            record.downlink_bytes,
            record.key_frame_count() * record.update_bytes
        );
        // All mIoU values are valid.
        assert!(record
            .frame_records
            .iter()
            .all(|f| (0.0..=1.0).contains(&f.miou)));
    }

    #[test]
    fn partial_update_payload_is_smaller_than_full() {
        let partial = SimRuntime::paper(DistillationMode::Partial);
        let full = SimRuntime::paper(DistillationMode::Full);
        let mut gen_a = video(SceneKind::People, 2);
        let mut gen_b = video(SceneKind::People, 2);
        let ra = partial
            .run("p", &mut gen_a, 16, student(), OracleTeacher::perfect(1))
            .unwrap();
        let rb = full
            .run("f", &mut gen_b, 16, student(), OracleTeacher::perfect(1))
            .unwrap();
        assert!(ra.update_bytes < rb.update_bytes);
        assert_eq!(ra.variant, "partial");
        assert_eq!(rb.variant, "full");
    }

    #[test]
    fn shadow_education_beats_the_wild_student_on_the_same_stream() {
        // The paper's core accuracy claim (Table 6): the same pre-trained
        // student is dramatically better with intermittent distillation than
        // without it. Run both on identical streams and compare.
        let runtime =
            SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
        let checkpoint = student();
        let mut gen_shadow = video(SceneKind::People, 3);
        let shadow = runtime
            .run(
                "p",
                &mut gen_shadow,
                80,
                checkpoint.clone(),
                OracleTeacher::perfect(2),
            )
            .unwrap();
        let mut gen_wild = video(SceneKind::People, 3);
        let wild = crate::baseline::run_wild(
            "wild",
            &mut gen_wild,
            80,
            &checkpoint,
            OracleTeacher::perfect(2),
            &st_sim::LatencyProfile::paper(),
        )
        .unwrap();
        assert!(
            shadow.mean_miou_percent() > wild.mean_miou_percent(),
            "shadow education should beat the wild student: {:.1}% vs {:.1}%",
            shadow.mean_miou_percent(),
            wild.mean_miou_percent()
        );
    }

    #[test]
    fn frame_delay_model_controls_arrival() {
        // With a 1-frame delay the update from key frame 0 must be applied by
        // frame 1; with an 8-frame delay not before frame 8.
        let fast =
            SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
        let slow =
            SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(8));
        let mut gen_a = video(SceneKind::Animals, 4);
        let mut gen_b = video(SceneKind::Animals, 4);
        let ra = fast
            .run("a", &mut gen_a, 20, student(), OracleTeacher::perfect(3))
            .unwrap();
        let rb = slow
            .run("b", &mut gen_b, 20, student(), OracleTeacher::perfect(3))
            .unwrap();
        // Both complete and record the same number of frames.
        assert_eq!(ra.frames, rb.frames);
        // The slow-delay run can never apply updates earlier, so its count of
        // applied updates at any prefix is <= the fast run's; in aggregate the
        // fast run's accuracy is at least as good (usually better).
        assert!(ra.mean_miou_percent() + 1e-9 >= rb.mean_miou_percent() - 5.0);
    }

    #[test]
    fn narrower_link_reduces_throughput_under_timing_model() {
        let normal = SimRuntime::paper(DistillationMode::Partial);
        let narrow = SimRuntime::paper(DistillationMode::Partial)
            .with_link(st_net::LinkModel::symmetric_mbps(4.0));
        let mut gen_a = video(SceneKind::Street, 5);
        let mut gen_b = video(SceneKind::Street, 5);
        let ra = normal
            .run("a", &mut gen_a, 48, student(), OracleTeacher::perfect(4))
            .unwrap();
        let rb = narrow
            .run("b", &mut gen_b, 48, student(), OracleTeacher::perfect(4))
            .unwrap();
        assert!(
            rb.fps() <= ra.fps() + 1e-9,
            "narrow {} vs normal {}",
            rb.fps(),
            ra.fps()
        );
    }

    #[test]
    fn street_needs_more_key_frames_than_people() {
        let runtime =
            SimRuntime::paper(DistillationMode::Partial).with_delay_model(DelayModel::Frames(1));
        let mut people = video(SceneKind::People, 6);
        let mut street = video(SceneKind::Street, 6);
        let rp = runtime
            .run(
                "people",
                &mut people,
                120,
                student(),
                OracleTeacher::perfect(5),
            )
            .unwrap();
        let rs = runtime
            .run(
                "street",
                &mut street,
                120,
                student(),
                OracleTeacher::perfect(5),
            )
            .unwrap();
        assert!(
            rs.key_frame_ratio_percent() >= rp.key_frame_ratio_percent(),
            "street {}% vs people {}%",
            rs.key_frame_ratio_percent(),
            rp.key_frame_ratio_percent()
        );
    }
}
