//! The two-process live runtime: client and server pool as separate OS
//! processes over the shared-memory ring transport.
//!
//! [`run_live`](crate::runtime::live::run_live) proves the protocol under
//! real concurrency, but both roles still share one address space — nothing
//! stops a message from smuggling a pointer. This module runs the same
//! client state machine (`drive_client`) against the same
//! [`ServerPool`], with an [`st_net::ShmTransport`] ring as the only thing
//! connecting them, so every message really is a sequence of bytes produced
//! by the versioned wire codec ([`st_net::Wire`]) and the traffic numbers
//! are *measured* (encoded frame sizes), not modelled.
//!
//! Topology:
//!
//! * **Host process** ([`host_stream_over_shm`]) — creates the shared-memory
//!   segment, spawns the server pool, connects one pool stream, and runs a
//!   bridge loop pumping uplink messages ring → pool and downlink messages
//!   pool → ring until the peer process closes its side.
//! * **Client process** ([`run_shm_client`]) — opens the segment, wraps the
//!   transport in the [`st_net::connect`] builder's endpoint, and drives the
//!   unmodified Algorithm-4 client over it. Both processes generate the
//!   stream's frames from the same deterministic [`st_video`] spec, so no
//!   frame content needs a side channel beyond the pool's ordinary
//!   connect-time pre-share.
//!
//! How the child reports back is also the wire format's job: the client
//! process writes its [`ExperimentRecord`] as one framed
//! [`st_net::wire::encode_frame`] blob, which the host decodes — a run
//! record crosses the process boundary the same way a key frame does.

use crate::config::ShadowTutorConfig;
use crate::report::ExperimentRecord;
use crate::runtime::live::drive_client;
use crate::serve::{PoolConfig, PoolStats, ServerPool};
use crate::Result;
use st_net::transport::ClientEndpoint;
use st_net::{
    ClientToServer, ServerToClient, ShmConfig, ShmSide, ShmTransport, StreamId, Transport,
};
use st_nn::student::StudentNet;
use st_teacher::Teacher;
use st_tensor::TensorError;
use st_video::Frame;
use std::path::Path;
use std::time::{Duration, Instant};

/// How long the bridge keeps serving after the last activity before
/// concluding the peer died without closing its side.
const BRIDGE_QUIET_BUDGET: Duration = Duration::from_secs(60);

/// What the host side of a two-process session measured.
#[derive(Debug)]
pub struct ShmHostOutcome {
    /// Server-pool statistics (queueing, batching, per-stream counters,
    /// final server-side checkpoints) — the same shape the in-process
    /// multi-stream runtime reports.
    pub pool: PoolStats,
    /// Measured client→server bytes that crossed the ring: framed wire
    /// messages plus the 4-byte stream length prefix each one carries.
    pub wire_bytes_up: usize,
    /// Measured server→client bytes that crossed the ring.
    pub wire_bytes_down: usize,
    /// Uplink messages the bridge forwarded into the pool.
    pub messages_up: usize,
    /// Downlink messages the bridge forwarded onto the ring.
    pub messages_down: usize,
}

fn io_err(context: &str, e: std::io::Error) -> TensorError {
    TensorError::InvalidArgument(format!("{context}: {e}"))
}

/// Host one client stream whose peer lives in another process.
///
/// Creates the shared-memory segment at `segment_path` (the client process
/// opens it with [`ShmTransport::open`]), spawns a [`ServerPool`],
/// pre-shares `frames` for `stream_id`, and bridges ring ↔ pool until the
/// peer closes. Returns the joined pool statistics plus the measured ring
/// traffic.
#[allow(clippy::too_many_arguments)] // mirrors run_live's flat experiment-parameter style
pub fn host_stream_over_shm<T, F>(
    config: ShadowTutorConfig,
    pool_config: PoolConfig,
    template: StudentNet,
    distill_step_latency: f64,
    teacher_factory: F,
    stream_id: StreamId,
    frames: &[Frame],
    segment_path: &Path,
    shm: ShmConfig,
) -> Result<ShmHostOutcome>
where
    T: Teacher + Send + 'static,
    F: FnMut(usize) -> T,
{
    let mut ring =
        ShmTransport::<ServerToClient, ClientToServer>::create(segment_path, ShmSide::Server, shm)
            .map_err(|e| io_err("create shared-memory segment", e))?;
    let pool = ServerPool::spawn(
        config,
        pool_config,
        template,
        distill_step_latency,
        teacher_factory,
    )?;
    let mut client = pool.connect(stream_id, frames)?;

    let mut messages_up = 0usize;
    let mut messages_down = 0usize;
    let mut last_activity = Instant::now();
    let mut peer_done = false;
    while !peer_done {
        let mut idle = true;
        // Uplink: ring → pool. Forward with the measured frame length as the
        // modelled size, so the pool's per-message accounting and the ring's
        // byte counters agree on what a message costs.
        loop {
            match ring.try_recv() {
                Ok(Some(message)) => {
                    idle = false;
                    let bytes = st_net::wire::frame_len(&message);
                    if client.send(message, bytes).is_err() {
                        // Pool shut down under us; stop bridging uplink.
                        peer_done = true;
                        break;
                    }
                    messages_up += 1;
                }
                Ok(None) => break,
                Err(_) => {
                    // Peer closed its side; drain the pool's remaining
                    // downlink below, then exit.
                    peer_done = true;
                    break;
                }
            }
        }
        // Downlink: pool → ring.
        while let Ok(Some(message)) = client.try_recv() {
            idle = false;
            // The peer vanishing mid-send only loses its own updates.
            if ring.send(message, 0).is_err() {
                peer_done = true;
                break;
            }
            messages_down += 1;
        }
        if idle {
            if last_activity.elapsed() > BRIDGE_QUIET_BUDGET {
                return Err(TensorError::InvalidArgument(
                    "shm bridge: peer process went quiet without closing".into(),
                ));
            }
            std::thread::sleep(Duration::from_micros(200));
        } else {
            last_activity = Instant::now();
        }
    }
    let wire_bytes_up = ring.wire_received_bytes();
    let wire_bytes_down = ring.wire_sent_bytes();
    // Close our ring side *before* joining so a still-running peer errors
    // out fast instead of waiting on its 30 s receive budget.
    drop(ring);
    drop(client);
    let pool = pool.join()?;
    Ok(ShmHostOutcome {
        pool,
        wire_bytes_up,
        wire_bytes_down,
        messages_up,
        messages_down,
    })
}

/// Run the client role against a host process, over the segment the host
/// created at `segment_path`.
///
/// Drives the unmodified Algorithm-4 client state machine; the only change
/// from the in-process runtime is the endpoint underneath it. On return the
/// record's `uplink_bytes`/`downlink_bytes` hold *measured* wire bytes (the
/// endpoint's count of encoded frame sizes), not the modelled payload sizes.
pub fn run_shm_client(
    config: ShadowTutorConfig,
    frames: &[Frame],
    student: StudentNet,
    label: &str,
    segment_path: &Path,
    open_timeout: Duration,
) -> Result<ExperimentRecord> {
    let ring = ShmTransport::<ClientToServer, ServerToClient>::open(
        segment_path,
        ShmSide::Client,
        open_timeout,
    )
    .map_err(|e| io_err("open shared-memory segment", e))?;
    let mut endpoint = st_net::connect().with_transport(ring);
    let output = drive_client(config, frames, student, &mut endpoint, label, "shm", false)?;
    let mut record = output.record;
    record.uplink_bytes = endpoint.wire_sent_bytes();
    record.downlink_bytes = endpoint.wire_received_bytes();
    Ok(record)
}

#[cfg(test)]
#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use st_nn::student::{StudentConfig, StudentNet};
    use st_teacher::OracleTeacher;
    use st_video::dataset::tiny_stream;
    use st_video::SceneKind;

    /// Bridge + client over one segment, in two threads of one process (the
    /// cross-process variant is exercised by the `st-bench` e2e test, which
    /// spawns a real child binary). Byte conservation must hold exactly:
    /// what the client's endpoint counts, plus the ring's 4-byte stream
    /// prefix per message, is what the host measured.
    #[test]
    fn bridged_session_conserves_wire_bytes() {
        let config = ShadowTutorConfig::paper();
        let frames = tiny_stream(SceneKind::People, 24, 7);
        let path =
            st_net::shm::default_segment_path(&format!("st-shm-live-test-{}", std::process::id()));
        let client_frames = frames.clone();
        let client_path = path.clone();
        let client = std::thread::spawn(move || {
            run_shm_client(
                config,
                &client_frames,
                StudentNet::new(StudentConfig::tiny()).unwrap(),
                "fixed/people",
                &client_path,
                Duration::from_secs(10),
            )
        });
        let host = host_stream_over_shm(
            config,
            PoolConfig::with_shards(1),
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
            |_| OracleTeacher::perfect(7),
            0,
            &frames,
            &path,
            ShmConfig::default(),
        )
        .unwrap();
        let record = client.join().unwrap().unwrap();

        assert_eq!(record.frames, frames.len());
        assert!(record.uplink_bytes > 0, "client sent no measured bytes");
        assert!(record.downlink_bytes > 0, "client saw no measured bytes");
        // Every uplink message is framed + 4-byte stream prefix on the ring.
        assert_eq!(
            host.wire_bytes_up,
            record.uplink_bytes + 4 * host.messages_up,
            "uplink byte conservation"
        );
        assert_eq!(
            host.wire_bytes_down,
            record.downlink_bytes + 4 * host.messages_down,
            "downlink byte conservation"
        );
        // The pool served the stream's key frames (key frames the client
        // recorded are the updates it actually applied, so served >= applied).
        assert!(host.pool.total_key_frames() >= record.key_frames.len());
        assert!(host.pool.total_key_frames() > 0);
        // The pool's own wire meter saw the bridged traffic too.
        assert!(host.pool.wire_bytes_up > 0);
        assert!(host.pool.wire_bytes_down > 0);
    }
}
