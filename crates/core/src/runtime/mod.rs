//! Execution runtimes.
//!
//! Two runtimes drive the same client/server state machines:
//!
//! * [`sim`] — a deterministic virtual-time runtime. Student and teacher
//!   computations really run (so accuracy, distillation steps and key-frame
//!   decisions are genuine), but *time* advances according to a
//!   [`st_sim::LatencyProfile`] and a [`st_net::LinkModel`], so throughput
//!   and traffic results are independent of the host machine and reproduce
//!   the paper's timing model. Every table/figure bench uses this runtime.
//! * [`live`] — a threaded runtime where the client and server are real OS
//!   threads exchanging messages over crossbeam channels (the paper's
//!   OpenMPI ranks), optionally through a delay injector that emulates a
//!   bandwidth-limited link in wall-clock time. Used by the live example and
//!   the cross-crate integration tests that exercise real concurrency.
//!   Besides the paper's one-client topology ([`live::run_live`]) it can run
//!   M concurrent streams against a sharded server pool
//!   ([`live::run_live_multi`]), the scenario the `crate::serve` module
//!   exists for.

//! * [`shm_live`] — the two-process variant of the live runtime: the same
//!   client state machine in a *separate OS process*, connected to the
//!   server pool over a shared-memory ring ([`st_net::ShmTransport`]), so
//!   every message crosses a real process boundary through the versioned
//!   binary wire format and the traffic numbers are measured, not modelled.

pub mod live;
pub mod shm_live;
pub mod sim;
