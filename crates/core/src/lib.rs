//! # shadowtutor
//!
//! A Rust reproduction of **ShadowTutor: Distributed Partial Distillation for
//! Mobile Video DNN Inference** (Chung, Kim, Moon — ICPP 2020).
//!
//! ShadowTutor splits video DNN inference between a weak client and a strong
//! server: a tiny *student* network runs on the client for every frame, and
//! on sparse, adaptively chosen *key frames* the client ships the frame to
//! the server, where a large *teacher* produces a pseudo-label and the server
//! *partially distills* it into the student (training only the back-end
//! layers). The updated slice of weights returns asynchronously while the
//! client keeps processing frames with its slightly stale student, and the
//! distance to the next key frame is adapted from the post-training metric.
//!
//! This crate is the paper's contribution layer. It provides:
//!
//! * [`config`] — the algorithm parameters (THRESHOLD, MIN/MAX_STRIDE,
//!   MAX_UPDATES, distillation mode) with the paper's defaults.
//! * [`stride`] — the adaptive key-frame striding rule (Algorithm 2).
//! * [`train`] — server-side student training on one key frame (Algorithm 1).
//! * [`server`] / [`client`] — the per-role state machines (Algorithms 3, 4),
//!   shared by both runtimes.
//! * [`serve`] — the multi-stream server runtime: a sharded pool of worker
//!   threads, one distillation session per client stream, with teacher
//!   forward passes batched across co-scheduled key frames, fair
//!   deficit-round-robin batching, per-stream admission control,
//!   load-adaptive co-scheduling, cross-shard work stealing
//!   ([`config::PlacementPolicy::Rebalance`]) and LRU-bounded per-stream
//!   frame memory ([`serve::FrameStore`]). See `docs/ARCHITECTURE.md` at
//!   the workspace root for the full lifecycle of a key frame.
//! * [`steal`] — the cross-shard work-stealing coordination core
//!   ([`steal::StealCore`]): request slots, migration mailboxes and the
//!   handoff-under-lock discipline, generic over its payloads and built on
//!   the `st_check::sync` facade so the model-check suite explores the
//!   exact production protocol.
//! * [`timer`] — the hierarchical timer wheel backing the reactor's
//!   time-based state (batch windows, steal patience, NeedFrame retries).
//! * [`loadgen`] — an open-loop skewed load generator (one hot stream at a
//!   multiple of the base key-frame rate) measuring per-stream round trips
//!   against a live pool; used by the fairness tests and benches.
//! * [`runtime`] — a deterministic **virtual-time runtime** (used by every
//!   table/figure reproduction) and a **threaded live runtime** built on
//!   crossbeam channels (client and server as real threads).
//! * [`baseline`] — naive offloading and the untrained "wild" student.
//! * [`bounds`] — the closed-form network-traffic and throughput bounds of
//!   §4.4 (equations 8, 12, 14, 15).
//! * [`pretrain`] — "public education": offline pre-training of the student
//!   before deployment.
//! * [`report`] — experiment records, per-table summary rows and replay of a
//!   recorded trace under different link models (used for Figure 4).

pub mod baseline;
pub mod bounds;
pub mod client;
pub mod config;
pub mod loadgen;
pub mod pretrain;
pub mod report;
pub mod runtime;
pub mod serve;
pub mod server;
pub mod steal;
pub mod stride;
pub mod timer;
pub mod train;

pub use config::{DistillationMode, PaperConstants, PlacementPolicy, ShadowTutorConfig};
pub use report::{ExperimentRecord, FrameRecord, KeyFrameRecord, PoolReport, ShardReport};
pub use runtime::sim::{DelayModel, SimRuntime};
pub use stride::next_stride;
pub use train::{train_student, TrainOutcome};

/// Result alias re-using the tensor error type.
pub type Result<T> = st_tensor::Result<T>;
