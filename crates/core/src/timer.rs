//! Hierarchical timer wheel for the reactor server pool.
//!
//! The reactor ([`crate::serve`] with `PoolConfig::reactor_threads` set)
//! owns *all* time-based serving state — adaptive batch windows, steal
//! patience, `NeedFrame` re-request retries — in one place: a classic
//! hashed hierarchical timer wheel ([Varghese & Lauck 1987]-style), instead
//! of the ad-hoc `recv_timeout` / sleep ticks the thread-per-shard loop
//! uses. Scheduling and cancelling are O(1)-ish; advancing does
//! O(elapsed ticks) empty-slot checks plus O(k) work for the k timers it
//! fires or cascades — and skips straight to the target when no timers are
//! live — which is what makes thousands of mostly-idle timers cheap.
//!
//! The wheel has `LEVELS` levels of `SLOTS` slots each; a slot on level
//! `l` spans `SLOTS^l` ticks, so nearby deadlines sit in fine slots and far
//! deadlines in coarse ones, cascading down as time passes. Deadlines
//! beyond the top level's horizon wrap within it and are re-examined on
//! every cascade — they still fire at their exact tick, never early.
//!
//! Time is passed in explicitly ([`TimerWheel::advance`] takes `now`), so
//! the wheel is deterministic under test: no hidden clock reads.
//!
//! [Varghese & Lauck 1987]:
//!     https://dl.acm.org/doi/10.1145/41457.37504

use std::time::{Duration, Instant};

/// Slots per wheel level.
const SLOTS: u64 = 64;
/// Wheel levels; the fine-grained horizon is `SLOTS^LEVELS` ticks.
const LEVELS: usize = 4;

/// Handle for one scheduled timer, used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TimerId(u64);

/// One pending timer: absolute deadline in ticks plus its payload. The id
/// doubles as the schedule-order tiebreaker, so same-tick timers fire in
/// the order they were scheduled.
struct TimerEntry<E> {
    id: TimerId,
    deadline_tick: u64,
    event: E,
}

/// A hierarchical timer wheel dispatching events of type `E` in deadline
/// order.
///
/// ```
/// use shadowtutor::timer::TimerWheel;
/// use std::time::{Duration, Instant};
///
/// let start = Instant::now();
/// let mut wheel: TimerWheel<&str> = TimerWheel::new(start, Duration::from_millis(1));
/// wheel.schedule_after(Duration::from_millis(5), "batch window");
/// let later = wheel.schedule_after(Duration::from_millis(500), "steal patience");
/// wheel.cancel(later);
/// let fired = wheel.advance(start + Duration::from_millis(10));
/// assert_eq!(fired.len(), 1);
/// assert_eq!(fired[0].1, "batch window");
/// assert!(wheel.is_empty());
/// ```
pub struct TimerWheel<E> {
    /// `levels[l][s]` holds entries whose deadline lands in slot `s` of
    /// level `l`.
    levels: Vec<Vec<Vec<TimerEntry<E>>>>,
    /// The wheel's epoch: tick 0.
    start: Instant,
    /// Tick resolution.
    tick: Duration,
    /// Ticks fully processed so far.
    current_tick: u64,
    /// Next timer id (and schedule-order tiebreaker).
    next_id: u64,
    /// Live (scheduled, uncancelled, unfired) timer count.
    live: usize,
    /// Cached earliest live deadline tick; `None` means "stale, rescan".
    min_deadline: Option<Option<u64>>,
}

impl<E> TimerWheel<E> {
    /// An empty wheel whose tick 0 is `start`, with `tick` resolution.
    ///
    /// Panics if `tick` is zero — a zero-width slot cannot order deadlines.
    pub fn new(start: Instant, tick: Duration) -> Self {
        assert!(!tick.is_zero(), "timer wheel tick must be non-zero");
        TimerWheel {
            levels: (0..LEVELS)
                .map(|_| (0..SLOTS).map(|_| Vec::new()).collect())
                .collect(),
            start,
            tick,
            current_tick: 0,
            next_id: 0,
            live: 0,
            min_deadline: Some(None),
        }
    }

    /// Number of live timers.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no timers are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Convert an instant to a tick, rounding up so a timer never fires
    /// before its deadline.
    fn tick_of(&self, at: Instant) -> u64 {
        let elapsed = at.saturating_duration_since(self.start);
        elapsed
            .as_nanos()
            .div_ceil(self.tick.as_nanos())
            .min(u128::from(u64::MAX)) as u64
    }

    /// Record a newly scheduled deadline in the cached minimum.
    fn note_scheduled(&mut self, deadline_tick: u64) {
        if let Some(cached) = &mut self.min_deadline {
            *cached = Some(cached.map_or(deadline_tick, |m| m.min(deadline_tick)));
        }
    }

    /// Schedule `event` to fire at `deadline` (deadlines already past fire
    /// on the next tick — never retroactively, never dropped). Returns the
    /// id to [`cancel`](TimerWheel::cancel) it with.
    pub fn schedule(&mut self, deadline: Instant, event: E) -> TimerId {
        let tick = self.tick_of(deadline).max(self.current_tick + 1);
        self.insert(tick, event)
    }

    /// Schedule `event` to fire `after` the wheel's current position.
    pub fn schedule_after(&mut self, after: Duration, event: E) -> TimerId {
        let delta = after
            .as_nanos()
            .div_ceil(self.tick.as_nanos())
            .min(u128::from(u64::MAX)) as u64;
        let tick = self
            .current_tick
            .saturating_add(delta)
            .max(self.current_tick + 1);
        self.insert(tick, event)
    }

    fn insert(&mut self, deadline_tick: u64, event: E) -> TimerId {
        let id = TimerId(self.next_id);
        self.next_id += 1;
        self.place(TimerEntry {
            id,
            deadline_tick,
            event,
        });
        self.live += 1;
        self.note_scheduled(deadline_tick);
        id
    }

    /// Drop a scheduled timer. Returns whether it was still live.
    pub fn cancel(&mut self, id: TimerId) -> bool {
        for level in &mut self.levels {
            for slot in level.iter_mut() {
                if let Some(pos) = slot.iter().position(|e| e.id == id) {
                    slot.remove(pos);
                    self.live -= 1;
                    self.min_deadline = None; // the cached minimum may be gone
                    return true;
                }
            }
        }
        false
    }

    /// The earliest live deadline as an instant, or `None` when the wheel is
    /// empty. [`advance`](TimerWheel::advance)-ing to (at least) this instant
    /// fires that timer — this is what a reactor's poll timeout should be.
    pub fn next_deadline(&mut self) -> Option<Instant> {
        let cached = match self.min_deadline {
            Some(cached) => cached,
            None => {
                let mut min: Option<u64> = None;
                for level in &self.levels {
                    for slot in level {
                        for entry in slot {
                            min = Some(
                                min.map_or(entry.deadline_tick, |m| m.min(entry.deadline_tick)),
                            );
                        }
                    }
                }
                self.min_deadline = Some(min);
                min
            }
        };
        cached.map(|tick| self.start + self.tick.mul_f64(tick as f64))
    }

    /// Advance the wheel to `now`, returning every timer whose deadline has
    /// passed, in deadline order (ties in schedule order). Timers never fire
    /// early and are never lost or duplicated across cascades.
    pub fn advance(&mut self, now: Instant) -> Vec<(TimerId, E)> {
        let target = self.tick_of(now);
        if target <= self.current_tick {
            return Vec::new();
        }
        let mut due: Vec<TimerEntry<E>> = Vec::new();
        while self.current_tick < target {
            if self.live == 0 {
                // Nothing can fire or cascade; jump straight to the target.
                self.current_tick = target;
                break;
            }
            self.current_tick += 1;
            // Level 0 holds only deadlines within SLOTS ticks, so the slot
            // for this exact tick fires wholesale.
            let slot0 = (self.current_tick % SLOTS) as usize;
            self.live -= self.levels[0][slot0].len();
            due.append(&mut self.levels[0][slot0]);
            // Coarser levels cascade when their finer wheel wraps around.
            let mut span = SLOTS;
            for level in 1..LEVELS {
                if !self.current_tick.is_multiple_of(span) {
                    break;
                }
                let slot = ((self.current_tick / span) % SLOTS) as usize;
                let entries: Vec<TimerEntry<E>> = std::mem::take(&mut self.levels[level][slot]);
                for entry in entries {
                    if entry.deadline_tick <= self.current_tick {
                        self.live -= 1;
                        due.push(entry);
                    } else {
                        // Re-place by remaining distance; a cascade moves a
                        // timer, it never fires or drops it.
                        self.place(entry);
                    }
                }
                span *= SLOTS;
            }
        }
        if !due.is_empty() {
            // The earliest deadline just fired, so the cached minimum is
            // stale until the next rescan.
            self.min_deadline = None;
        }
        due.sort_by_key(|e| (e.deadline_tick, e.id));
        due.into_iter().map(|e| (e.id, e.event)).collect()
    }

    /// Put an entry in the finest level that can hold its remaining
    /// distance. Deadlines beyond the top level's span wrap within it; the
    /// cascade re-places them until their tick comes in range, and the
    /// `deadline_tick <= current_tick` check in [`advance`] keeps wrapped
    /// entries from firing early.
    ///
    /// [`advance`]: TimerWheel::advance
    fn place(&mut self, entry: TimerEntry<E>) {
        let delta = entry.deadline_tick - self.current_tick;
        let mut span = 1u64;
        for level in 0..LEVELS {
            if delta < span * SLOTS || level == LEVELS - 1 {
                let slot = ((entry.deadline_tick / span) % SLOTS) as usize;
                self.levels[level][slot].push(entry);
                return;
            }
            span *= SLOTS;
        }
        unreachable!("the top level accepts every delta");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    fn wheel() -> (Instant, TimerWheel<usize>) {
        let start = Instant::now();
        (start, TimerWheel::new(start, Duration::from_millis(1)))
    }

    #[test]
    fn fires_in_deadline_order_with_fifo_ties() {
        let (start, mut wheel) = wheel();
        wheel.schedule(start + Duration::from_millis(30), 0);
        wheel.schedule(start + Duration::from_millis(10), 1);
        wheel.schedule(start + Duration::from_millis(10), 2);
        wheel.schedule(start + Duration::from_millis(20), 3);
        assert_eq!(wheel.len(), 4);
        let fired: Vec<usize> = wheel
            .advance(start + Duration::from_millis(40))
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        assert_eq!(fired, vec![1, 2, 3, 0]);
        assert!(wheel.is_empty());
    }

    #[test]
    fn never_fires_early() {
        let (start, mut wheel) = wheel();
        wheel.schedule(start + Duration::from_millis(10), 0);
        assert!(wheel.advance(start + Duration::from_millis(5)).is_empty());
        assert_eq!(wheel.len(), 1);
        assert_eq!(wheel.advance(start + Duration::from_millis(10)).len(), 1);
    }

    #[test]
    fn cancel_drops_a_timer_and_reports_liveness() {
        let (start, mut wheel) = wheel();
        let keep = wheel.schedule(start + Duration::from_millis(5), 0);
        let gone = wheel.schedule(start + Duration::from_millis(5), 1);
        assert!(wheel.cancel(gone));
        assert!(!wheel.cancel(gone), "double cancel reports dead");
        let fired = wheel.advance(start + Duration::from_millis(10));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0], (keep, 0));
        assert!(!wheel.cancel(keep), "fired timers are dead");
    }

    #[test]
    fn next_deadline_drives_poll_timeouts() {
        let (start, mut wheel) = wheel();
        assert_eq!(wheel.next_deadline(), None);
        wheel.schedule(start + Duration::from_millis(50), 0);
        let early = wheel.schedule(start + Duration::from_millis(20), 1);
        let next = wheel.next_deadline().expect("timers live");
        assert!(next >= start + Duration::from_millis(20));
        assert!(next < start + Duration::from_millis(25));
        // Advancing to the reported deadline fires the earliest timer…
        let fired = wheel.advance(next);
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0], (early, 1));
        // …and the cache recomputes to the survivor.
        let next = wheel.next_deadline().expect("one timer left");
        assert!(next >= start + Duration::from_millis(50));
    }

    #[test]
    fn far_deadlines_cascade_down_and_fire_exactly_once() {
        let (start, mut wheel) = wheel();
        // Span several levels: past level 0 (64 ticks), past level 1
        // (4096 ticks), and past level 2 (262144 ticks ≈ 262 s at 1 ms).
        let far = [70u64, 5_000, 300_000];
        let mut ids = Vec::new();
        for (i, &t) in far.iter().enumerate() {
            ids.push(wheel.schedule(start + Duration::from_millis(t), i));
        }
        // Step in uneven chunks so cascades happen mid-walk.
        let mut fired = Vec::new();
        for stop in [100u64, 4_096, 200_000, 300_001] {
            fired.extend(wheel.advance(start + Duration::from_millis(stop)));
        }
        assert_eq!(fired.len(), 3);
        assert_eq!(
            fired.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            ids,
            "deadline order across cascades"
        );
        assert!(wheel.is_empty());
    }

    #[test]
    fn schedule_after_is_relative_to_the_wheel_position() {
        let (start, mut wheel) = wheel();
        wheel.advance(start + Duration::from_millis(100));
        wheel.schedule_after(Duration::from_millis(10), 0);
        assert!(wheel.advance(start + Duration::from_millis(105)).is_empty());
        assert_eq!(wheel.advance(start + Duration::from_millis(111)).len(), 1);
    }

    #[test]
    fn past_deadlines_fire_on_the_next_tick() {
        let (start, mut wheel) = wheel();
        wheel.advance(start + Duration::from_millis(50));
        wheel.schedule(start + Duration::from_millis(10), 7); // already past
        let fired = wheel.advance(start + Duration::from_millis(51));
        assert_eq!(fired.len(), 1);
        assert_eq!(fired[0].1, 7);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The wheel's contract under arbitrary schedules, cancels and
        /// uneven advances: every surviving timer fires exactly once, never
        /// early, in deadline order; every cancelled timer never fires.
        #[test]
        fn property_no_lost_duplicate_or_early_fires(
            delays in prop::collection::vec(1u64..6_000, 1..40),
            cancel_mask in prop::collection::vec(any::<bool>(), 40..41),
            steps in prop::collection::vec(1u64..1_500, 1..12),
        ) {
            let start = Instant::now();
            let mut wheel: TimerWheel<usize> =
                TimerWheel::new(start, Duration::from_millis(1));
            let mut ids = Vec::new();
            for (i, &d) in delays.iter().enumerate() {
                ids.push((wheel.schedule(start + Duration::from_millis(d), i), d));
            }
            let mut cancelled: HashSet<usize> = HashSet::new();
            for (i, (id, _)) in ids.clone().iter().enumerate() {
                if cancel_mask[i % cancel_mask.len()] && i % 3 == 0 {
                    prop_assert!(wheel.cancel(*id));
                    cancelled.insert(i);
                }
            }
            let mut now_ms = 0u64;
            let mut fired: Vec<(u64, usize)> = Vec::new();
            for &step in &steps {
                now_ms += step;
                for (id, event) in wheel.advance(start + Duration::from_millis(now_ms)) {
                    let (expected_id, deadline) = ids[event];
                    // Never early (tick rounding is up, so deadline ≤ now).
                    prop_assert!(deadline <= now_ms,
                        "timer {} fired at {} before {}", event, now_ms, deadline);
                    prop_assert_eq!(expected_id, id);
                    fired.push((deadline, event));
                }
            }
            // Finish the clock far past every deadline.
            now_ms += 7_000;
            for (_, event) in wheel.advance(start + Duration::from_millis(now_ms)) {
                fired.push((ids[event].1, event));
            }
            // No duplicates, no cancelled fires, nothing lost.
            let unique: HashSet<usize> = fired.iter().map(|&(_, e)| e).collect();
            prop_assert_eq!(unique.len(), fired.len(), "duplicate fire");
            for &(_, event) in &fired {
                prop_assert!(!cancelled.contains(&event), "cancelled timer fired");
            }
            prop_assert_eq!(fired.len(), delays.len() - cancelled.len(), "lost timer");
            prop_assert!(wheel.is_empty());
            // Fires arrive in global deadline order: batches concatenate in
            // time order and each batch is sorted by the wheel.
            let deadlines: Vec<u64> = fired.iter().map(|&(d, _)| d).collect();
            let mut sorted = deadlines.clone();
            sorted.sort_unstable();
            prop_assert_eq!(deadlines, sorted, "fired out of deadline order");
        }
    }
}
