//! The ShadowTutor client role (Algorithm 4).
//!
//! The client owns the serving copy of the student. It processes frames in
//! strict temporal order; on key frames it sends the frame to the server
//! *asynchronously* and keeps inferring subsequent frames with its current
//! (slightly stale) weights. The updated weights are applied whenever they
//! arrive, but no later than `MIN_STRIDE` frames after the key frame — at
//! that point the client blocks, because the next key frame may be due.
//!
//! The decision logic (when is a frame a key frame, when must the client
//! wait, when is an arrived update applied, how does the stride evolve) is
//! captured in [`ClientState`] independently of any transport or clock, so
//! the virtual-time and threaded runtimes share it and it can be unit-tested
//! exhaustively on its own.

use crate::config::ShadowTutorConfig;
use crate::stride::StridePolicy;
use serde::{Deserialize, Serialize};

/// What the client should do with the current frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FrameDecision {
    /// Whether this frame must be sent to the server as a key frame.
    pub is_key_frame: bool,
    /// Whether the client must block for the in-flight update *after*
    /// running inference on this frame (it has deferred applying the update
    /// for `MIN_STRIDE` frames already).
    pub must_wait_for_update: bool,
}

/// Client-side scheduling state (stride, step counter, in-flight update).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientState {
    /// Algorithm parameters.
    pub config: ShadowTutorConfig,
    /// Key-frame scheduling policy (Algorithm 2 by default).
    pub policy: StridePolicy,
    stride: usize,
    step: usize,
    update_outstanding: bool,
    frames_since_key: usize,
    key_frames_sent: usize,
    updates_applied: usize,
    updates_abandoned: usize,
    updates_throttled: usize,
    waits: usize,
}

impl ClientState {
    /// Fresh client state: the very first frame is a key frame
    /// (Algorithm 4 initialises `step = stride = MIN_STRIDE`).
    pub fn new(config: ShadowTutorConfig) -> Self {
        ClientState {
            stride: config.min_stride,
            step: config.min_stride,
            update_outstanding: false,
            frames_since_key: 0,
            key_frames_sent: 0,
            updates_applied: 0,
            updates_abandoned: 0,
            updates_throttled: 0,
            waits: 0,
            policy: StridePolicy::Adaptive,
            config,
        }
    }

    /// Use a non-default stride policy (ablations).
    pub fn with_policy(mut self, policy: StridePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Current stride in frames.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Whether a student update is still in flight.
    pub fn update_outstanding(&self) -> bool {
        self.update_outstanding
    }

    /// Number of key frames sent so far.
    pub fn key_frames_sent(&self) -> usize {
        self.key_frames_sent
    }

    /// Number of updates applied so far.
    pub fn updates_applied(&self) -> usize {
        self.updates_applied
    }

    /// Number of times the client had to block waiting for an update.
    pub fn forced_waits(&self) -> usize {
        self.waits
    }

    /// Decide what to do with the next frame (Algorithm 4, lines 6-17).
    ///
    /// Call once per frame, *before* running inference on it.
    pub fn begin_frame(&mut self) -> FrameDecision {
        let is_key_frame = self.step == self.stride;
        if is_key_frame {
            self.step = 0;
            self.frames_since_key = 0;
            self.update_outstanding = true;
            self.key_frames_sent += 1;
        }
        self.step += 1;
        self.frames_since_key += 1;
        let must_wait_for_update =
            self.update_outstanding && self.frames_since_key >= self.config.min_stride;
        if must_wait_for_update {
            self.waits += 1;
        }
        FrameDecision {
            is_key_frame,
            must_wait_for_update,
        }
    }

    /// Record that the in-flight update has been applied with the given
    /// post-training metric; advances the stride (Algorithm 4, lines 18-22).
    pub fn apply_update(&mut self, metric: f64) {
        debug_assert!(self.update_outstanding, "no update outstanding");
        self.stride = self.policy.next(&self.config, self.stride, metric);
        self.update_outstanding = false;
        self.updates_applied += 1;
    }

    /// Record that the in-flight update will never arrive — the server
    /// throttled or dropped the key frame — and fall back to local-only
    /// inference.
    ///
    /// The stride is left unchanged (there is no post-training metric to
    /// feed Algorithm 2), so the next key frame is still sent on the current
    /// schedule; the client just stops waiting for this one. A no-op when no
    /// update is outstanding, so late rejection messages are harmless.
    pub fn abandon_update(&mut self) {
        if self.update_outstanding {
            self.update_outstanding = false;
            self.updates_abandoned += 1;
        }
    }

    /// Record that the server *throttled* the in-flight key frame — it was
    /// rejected by admission control, not lost — and pace the client down.
    ///
    /// Like [`abandon_update`](Self::abandon_update) this unblocks the
    /// client, but it also stretches the key-frame stride (doubling, clamped
    /// to `MAX_STRIDE`): a throttle means the server's per-stream queue is
    /// full, so re-offering key frames on the same schedule would only be
    /// rejected again. Stretching the stride sheds server load at the source
    /// while the client keeps serving every frame locally; once the server
    /// accepts a key frame again, the post-training metric feeds Algorithm 2
    /// and the stride re-adapts from wherever the back-off left it. A no-op
    /// when no update is outstanding, so late Throttle messages are harmless.
    pub fn throttled_update(&mut self) {
        if self.update_outstanding {
            self.update_outstanding = false;
            self.updates_throttled += 1;
            self.stride = (self.stride * 2).min(self.config.max_stride);
        }
    }

    /// Number of in-flight updates abandoned after a server throttle/drop.
    pub fn updates_abandoned(&self) -> usize {
        self.updates_abandoned
    }

    /// Number of in-flight updates rejected by server admission control and
    /// answered with a stride back-off ([`throttled_update`](Self::throttled_update)).
    pub fn updates_throttled(&self) -> usize {
        self.updates_throttled
    }

    /// Number of frames processed since the last key frame (including it).
    pub fn frames_since_key(&self) -> usize {
        self.frames_since_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ClientState {
        ClientState::new(ShadowTutorConfig::paper())
    }

    /// Drive `n` frames, applying the update `delay` frames after each key
    /// frame with a constant metric; returns the indices of key frames.
    fn drive(state: &mut ClientState, n: usize, delay: usize, metric: f64) -> Vec<usize> {
        let mut keys = vec![];
        let mut pending: Option<usize> = None; // frames until arrival
        for i in 0..n {
            let d = state.begin_frame();
            if d.is_key_frame {
                keys.push(i);
                pending = Some(delay);
            }
            if let Some(ref mut left) = pending {
                if *left == 0 || d.must_wait_for_update {
                    state.apply_update(metric);
                    pending = None;
                } else {
                    *left -= 1;
                }
            }
        }
        keys
    }

    #[test]
    fn first_frame_is_a_key_frame() {
        let mut s = state();
        let d = s.begin_frame();
        assert!(d.is_key_frame);
        assert!(!d.must_wait_for_update);
        assert_eq!(s.key_frames_sent(), 1);
    }

    #[test]
    fn perfect_metric_stretches_strides_towards_max() {
        let mut s = state();
        let keys = drive(&mut s, 300, 1, 1.0);
        // The update from each key frame arrives one frame later and doubles
        // the stride before the next key frame is due, so key frames fall at
        // 0, 16, 48, 112, then every 64 frames (the clamp).
        assert_eq!(keys[0], 0);
        assert_eq!(keys[1], 16);
        assert_eq!(keys[2], 48);
        assert_eq!(keys[3], 112);
        assert_eq!(keys[4], 176);
        assert_eq!(s.stride(), 64);
    }

    #[test]
    fn poor_metric_keeps_strides_at_min() {
        let mut s = state();
        let keys = drive(&mut s, 100, 1, 0.0);
        // Every MIN_STRIDE frames.
        let expected: Vec<usize> = (0..13).map(|i| i * 8).collect();
        assert_eq!(keys, expected[..keys.len()].to_vec());
        assert_eq!(s.stride(), 8);
    }

    #[test]
    fn key_frame_ratio_tracks_metric_quality() {
        let ratio = |metric: f64| {
            let mut s = state();
            let keys = drive(&mut s, 1000, 1, metric);
            keys.len() as f64 / 1000.0
        };
        let good = ratio(0.95);
        let bad = ratio(0.3);
        assert!(good < bad, "good {good} vs bad {bad}");
        // With the paper's parameters the best possible ratio is 1/64 and the
        // worst is 1/8.
        assert!(good >= 1.0 / 64.0 - 1e-9);
        assert!(bad <= 1.0 / 8.0 + 1e-2);
    }

    #[test]
    fn must_wait_is_raised_after_min_stride_frames() {
        let mut s = state();
        // Key frame at frame 0; never apply the update.
        let d0 = s.begin_frame();
        assert!(d0.is_key_frame);
        for i in 1..8 {
            let d = s.begin_frame();
            assert!(!d.is_key_frame, "frame {i}");
            if i < 7 {
                assert!(!d.must_wait_for_update, "frame {i} should not wait yet");
            } else {
                // frames_since_key reaches MIN_STRIDE on the 8th frame.
                assert!(d.must_wait_for_update, "frame {i} should force a wait");
            }
        }
        assert_eq!(s.forced_waits(), 1);
    }

    #[test]
    fn update_applied_before_next_key_frame_even_with_max_delay() {
        let mut s = state();
        // With delay = MIN_STRIDE the update is always applied at the forced
        // wait, so the schedule never tries to send a key frame while one is
        // outstanding.
        let keys = drive(&mut s, 500, 8, 0.9);
        assert_eq!(s.key_frames_sent(), keys.len());
        assert_eq!(s.updates_applied(), keys.len());
        assert!(!s.update_outstanding());
    }

    #[test]
    fn fixed_policy_produces_fixed_spacing() {
        let mut s = ClientState::new(ShadowTutorConfig::paper())
            .with_policy(StridePolicy::Fixed { stride: 16 });
        let keys = drive(&mut s, 200, 1, 0.2);
        // The first update (arriving one frame after key frame 0) pins the
        // stride to 16, so key frames land every 16 frames from the start.
        assert_eq!(keys[0], 0);
        for pair in keys.windows(2) {
            assert_eq!(pair[1] - pair[0], 16);
        }
    }

    #[test]
    fn abandoned_update_unblocks_without_touching_the_stride() {
        let mut s = state();
        let d0 = s.begin_frame();
        assert!(d0.is_key_frame);
        assert!(s.update_outstanding());
        let stride_before = s.stride();
        // The server throttled the key frame: local fallback.
        s.abandon_update();
        assert!(!s.update_outstanding());
        assert_eq!(s.stride(), stride_before);
        assert_eq!(s.updates_abandoned(), 1);
        assert_eq!(s.updates_applied(), 0);
        // Abandoning again is a no-op (late Throttle after the fact).
        s.abandon_update();
        assert_eq!(s.updates_abandoned(), 1);
        // With nothing outstanding, even the deferral-deadline frame
        // (frames_since_key == MIN_STRIDE) does not force a wait.
        for i in 1..s.config.min_stride {
            let d = s.begin_frame();
            assert!(!d.is_key_frame, "frame {i}");
            assert!(!d.must_wait_for_update, "frame {i}");
        }
        assert_eq!(s.forced_waits(), 0);
        // The schedule still sends the next key frame on the unchanged stride.
        let d = s.begin_frame();
        assert!(d.is_key_frame);
        assert_eq!(s.key_frames_sent(), 2);
    }

    #[test]
    fn throttled_update_stretches_the_stride_and_clamps_at_max() {
        let mut s = state();
        let d0 = s.begin_frame();
        assert!(d0.is_key_frame);
        assert_eq!(s.stride(), 8);
        // Admission control rejected the key frame: back off.
        s.throttled_update();
        assert!(!s.update_outstanding());
        assert_eq!(s.stride(), 16);
        assert_eq!(s.updates_throttled(), 1);
        assert_eq!(s.updates_abandoned(), 0);
        // A late Throttle with nothing outstanding is a no-op.
        s.throttled_update();
        assert_eq!(s.stride(), 16);
        assert_eq!(s.updates_throttled(), 1);
        // Repeated throttles double toward MAX_STRIDE and stop there.
        for _ in 0..4 {
            while !s.begin_frame().is_key_frame {}
            s.throttled_update();
        }
        assert_eq!(s.stride(), s.config.max_stride);
        assert_eq!(s.updates_throttled(), 5);
    }

    #[test]
    fn throttled_stream_recovers_once_updates_resume() {
        let mut s = state();
        // Two throttled key frames: stride backs off 8 -> 16 -> 32, and the
        // client never blocks (nothing stays outstanding).
        for expected in [16usize, 32] {
            let d = s.begin_frame();
            assert!(d.is_key_frame);
            s.throttled_update();
            assert_eq!(s.stride(), expected);
            for _ in 0..expected - 1 {
                let d = s.begin_frame();
                assert!(!d.is_key_frame);
                assert!(!d.must_wait_for_update);
            }
        }
        assert_eq!(s.forced_waits(), 0);
        // The server accepts again; a poor metric walks the stride back down
        // through Algorithm 2 (metric 0.4 -> ratio 0.5, i.e. halving per
        // update, floored at MIN_STRIDE).
        for expected in [16usize, 8, 8] {
            let d = s.begin_frame();
            assert!(d.is_key_frame);
            s.apply_update(0.4);
            assert_eq!(s.stride(), expected);
            for _ in 0..expected - 1 {
                assert!(!s.begin_frame().is_key_frame);
            }
        }
        assert_eq!(s.updates_throttled(), 2);
        assert_eq!(s.updates_applied(), 3);
        assert_eq!(s.updates_abandoned(), 0);
    }

    #[test]
    fn state_is_serializable() {
        // serde_json is not a dependency; a trait-bound check is enough to
        // guarantee the derive stays in place for downstream consumers.
        fn assert_serialize<T: serde::Serialize>(_: &T) {}
        assert_serialize(&state());
    }
}
