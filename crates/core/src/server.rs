//! The ShadowTutor server role (Algorithm 3).
//!
//! The server owns the teacher and a copy of the student. For every key
//! frame received from the client it (1) runs teacher inference to obtain a
//! pseudo-label, (2) trains its student copy on that pseudo-label with
//! [`crate::train::train_student`], and (3) returns the updated (partial or
//! full) weights plus the post-training metric. The same state machine is
//! used by the virtual-time runtime (which calls [`ServerState::handle_key_frame`]
//! directly) and the threaded live runtime (which drives it from a message
//! loop).
//!
//! The per-stream half of that state — the trainable student copy, its
//! optimizer, and the counters — lives in [`DistillSession`] so the
//! multi-stream server pool ([`crate::serve`]) can keep one session per
//! client stream while sharing a single teacher across the streams of a
//! shard. [`ServerState`] composes one teacher with one session and is the
//! single-stream view used by the original runtimes.

use crate::config::{DistillationMode, ShadowTutorConfig};
use crate::train::{train_student, TrainOutcome};
use crate::Result;
use st_nn::optim::Adam;
use st_nn::snapshot::{PayloadSizes, SnapshotScope, WeightSnapshot};
use st_nn::student::StudentNet;
use st_teacher::Teacher;
use st_video::Frame;
use std::time::Duration;

/// Server-side counters for one stream, reported when the stream finishes.
///
/// The distillation counters come straight from the stream's
/// [`DistillSession`] ([`DistillSession::stats`]); the queueing/backpressure
/// fields are filled in by the pool worker that scheduled the stream, which
/// is the only place wall-clock waits and admission decisions are visible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamServerStats {
    /// Key frames the stream's session processed.
    pub key_frames: usize,
    /// Total distillation steps the session took.
    pub distill_steps: usize,
    /// Total wall-clock time the stream's key frames spent queued before
    /// service began.
    pub queue_wait_total: Duration,
    /// Largest single queue wait one of the stream's key frames observed.
    pub queue_wait_max: Duration,
    /// Key frames rejected by per-stream admission control
    /// (`ServerToClient::Throttle`).
    pub throttled: usize,
    /// Key frames dropped because the stream or frame was unknown
    /// (`ServerToClient::Dropped`).
    pub dropped: usize,
}

impl StreamServerStats {
    /// Mean wall-clock queue wait per serviced key frame in seconds.
    pub fn mean_queue_wait_secs(&self) -> f64 {
        if self.key_frames == 0 {
            0.0
        } else {
            self.queue_wait_total.as_secs_f64() / self.key_frames as f64
        }
    }
}

/// The server's response to one key frame.
#[derive(Debug, Clone)]
pub struct KeyFrameResponse {
    /// The updated weights to ship to the client (trainable subset under
    /// partial distillation, everything under full distillation).
    pub update: WeightSnapshot,
    /// Post-training metric on the key frame (drives Algorithm 2).
    pub metric: f64,
    /// Training details (steps taken, initial metric, loss).
    pub outcome: TrainOutcome,
    /// Virtual time the server spent on this key frame: teacher inference
    /// plus `steps` distillation steps, per the latency profile in use.
    pub server_time: f64,
}

/// The teacher-independent, per-stream half of the server: the trainable
/// student copy, its optimizer, and the distillation counters.
///
/// One session exists per client stream. The single-stream [`ServerState`]
/// owns exactly one; the multi-stream shard in [`crate::serve`] owns one per
/// stream and feeds them pseudo-labels produced by a shared teacher.
pub struct DistillSession {
    /// Algorithm parameters.
    pub config: ShadowTutorConfig,
    student: StudentNet,
    optimizer: Adam,
    /// Latency of one distillation step (seconds of virtual time).
    distill_step_latency: f64,
    total_key_frames: usize,
    total_distill_steps: usize,
}

impl DistillSession {
    /// Create a session from a pre-trained student checkpoint.
    ///
    /// The student's freeze point is set according to the configured
    /// distillation mode.
    pub fn new(
        config: ShadowTutorConfig,
        mut student: StudentNet,
        distill_step_latency: f64,
    ) -> Self {
        student.freeze = config.mode.freeze_point();
        let optimizer = Adam::new(config.learning_rate);
        DistillSession {
            config,
            student,
            optimizer,
            distill_step_latency,
            total_key_frames: 0,
            total_distill_steps: 0,
        }
    }

    /// Rebuild a session from a replicated checkpoint during shard failover.
    ///
    /// `snapshot` (a `Full`-scope replica published by the dead shard) is
    /// applied to a fresh student, and the distillation counters are restored
    /// from the replica's metadata. The Adam optimizer starts cold: the paper
    /// replicates only the student weights, so the first post-takeover key
    /// frame retrains moment estimates from zero — acceptable because the
    /// per-key-frame training loop (Algorithm 3) converges on the frame's
    /// metric threshold, not on a fixed step count.
    pub fn resume(
        config: ShadowTutorConfig,
        mut student: StudentNet,
        snapshot: &WeightSnapshot,
        distill_step_latency: f64,
        key_frames: usize,
        distill_steps: usize,
    ) -> Result<Self> {
        student.freeze = config.mode.freeze_point();
        snapshot.apply(&mut student)?;
        let optimizer = Adam::new(config.learning_rate);
        Ok(DistillSession {
            config,
            student,
            optimizer,
            distill_step_latency,
            total_key_frames: key_frames,
            total_distill_steps: distill_steps,
        })
    }

    /// The initial full student checkpoint the server sends when the stream
    /// is registered (Algorithm 3, line 1).
    pub fn initial_checkpoint(&mut self) -> WeightSnapshot {
        WeightSnapshot::capture(&mut self.student, SnapshotScope::Full)
    }

    /// Capture a full-scope checkpoint of the session's current student for
    /// checkpoint replication to a buddy shard.
    pub fn replica_checkpoint(&mut self) -> WeightSnapshot {
        WeightSnapshot::capture(&mut self.student, SnapshotScope::Full)
    }

    /// Mutable access to the session's student, for storage-identity memory
    /// accounting against the shard template ([`st_nn::store::SessionMemory`]).
    pub fn student_mut(&mut self) -> &mut StudentNet {
        &mut self.student
    }

    /// Wire sizes of the per-key-frame student payload under the current mode.
    pub fn update_payload_bytes(&mut self) -> usize {
        let sizes = PayloadSizes::of(&mut self.student);
        match self.config.mode {
            DistillationMode::Partial => sizes.partial_bytes,
            DistillationMode::Full => sizes.full_bytes,
        }
    }

    /// Train the session's student on one key frame against an
    /// already-computed pseudo-label (Algorithm 3, lines 4-6).
    ///
    /// `teacher_time` is the virtual time charged for producing the
    /// pseudo-label — the full `t_ti` for a solo inference, or the amortized
    /// share of a batched teacher forward pass under the multi-stream pool.
    pub fn distill(
        &mut self,
        frame: &Frame,
        pseudo_label: &[usize],
        teacher_time: f64,
    ) -> Result<KeyFrameResponse> {
        let outcome = train_student(
            &mut self.student,
            &mut self.optimizer,
            frame,
            pseudo_label,
            &self.config,
        )?;
        let scope = match self.config.mode {
            DistillationMode::Partial => SnapshotScope::TrainableOnly,
            DistillationMode::Full => SnapshotScope::Full,
        };
        let update = WeightSnapshot::capture(&mut self.student, scope);
        self.total_key_frames += 1;
        self.total_distill_steps += outcome.steps;
        Ok(KeyFrameResponse {
            update,
            metric: outcome.best_metric,
            outcome,
            server_time: teacher_time + outcome.steps as f64 * self.distill_step_latency,
        })
    }

    /// Total key frames processed so far.
    pub fn key_frames_processed(&self) -> usize {
        self.total_key_frames
    }

    /// Total distillation steps taken so far.
    pub fn distill_steps_taken(&self) -> usize {
        self.total_distill_steps
    }

    /// Mean distillation steps per key frame (Table 2's second row).
    pub fn mean_distill_steps(&self) -> f64 {
        if self.total_key_frames == 0 {
            0.0
        } else {
            self.total_distill_steps as f64 / self.total_key_frames as f64
        }
    }

    /// The session's counters as the distillation half of
    /// [`StreamServerStats`] (queueing/backpressure fields are zero; the pool
    /// worker that owns the stream merges those in).
    pub fn stats(&self) -> StreamServerStats {
        StreamServerStats {
            key_frames: self.total_key_frames,
            distill_steps: self.total_distill_steps,
            ..StreamServerStats::default()
        }
    }
}

/// Server-side state: teacher + trainable student copy + optimizer.
pub struct ServerState<T: Teacher> {
    /// Algorithm parameters.
    pub config: ShadowTutorConfig,
    teacher: T,
    session: DistillSession,
}

impl<T: Teacher> ServerState<T> {
    /// Create a server from a pre-trained student checkpoint and a teacher.
    ///
    /// The student's freeze point is set according to the configured
    /// distillation mode.
    pub fn new(
        config: ShadowTutorConfig,
        student: StudentNet,
        teacher: T,
        distill_step_latency: f64,
    ) -> Self {
        ServerState {
            config,
            teacher,
            session: DistillSession::new(config, student, distill_step_latency),
        }
    }

    /// The initial full student checkpoint the server sends when the system
    /// starts (Algorithm 3, line 1).
    pub fn initial_checkpoint(&mut self) -> WeightSnapshot {
        self.session.initial_checkpoint()
    }

    /// Wire sizes of the per-key-frame student payload under the current mode.
    pub fn update_payload_bytes(&mut self) -> usize {
        self.session.update_payload_bytes()
    }

    /// Handle one key frame (Algorithm 3, lines 3-6).
    pub fn handle_key_frame(&mut self, frame: &Frame) -> Result<KeyFrameResponse> {
        let pseudo_label = self.teacher.pseudo_label(frame)?;
        self.session
            .distill(frame, &pseudo_label, self.teacher.inference_latency())
    }

    /// The teacher owned by the server (e.g. to label evaluation frames).
    pub fn teacher_mut(&mut self) -> &mut T {
        &mut self.teacher
    }

    /// Total key frames processed so far.
    pub fn key_frames_processed(&self) -> usize {
        self.session.key_frames_processed()
    }

    /// Total distillation steps taken so far.
    pub fn distill_steps_taken(&self) -> usize {
        self.session.distill_steps_taken()
    }

    /// Mean distillation steps per key frame (Table 2's second row).
    pub fn mean_distill_steps(&self) -> f64 {
        self.session.mean_distill_steps()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

    fn generator() -> VideoGenerator {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::Animals,
        };
        VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, 3)).unwrap()
    }

    fn server(mode: DistillationMode) -> ServerState<OracleTeacher> {
        let config = ShadowTutorConfig {
            mode,
            ..ShadowTutorConfig::paper()
        };
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        ServerState::new(config, student, OracleTeacher::perfect(7), 0.013)
    }

    #[test]
    fn key_frame_handling_trains_and_reports() {
        let mut s = server(DistillationMode::Partial);
        let mut gen = generator();
        let frame = gen.next_frame();
        let resp = s.handle_key_frame(&frame).unwrap();
        assert!(resp.outcome.steps >= 1);
        assert!(resp.metric >= resp.outcome.initial_metric);
        assert!(resp.server_time >= 0.044);
        assert_eq!(s.key_frames_processed(), 1);
        assert_eq!(s.distill_steps_taken(), resp.outcome.steps);
        assert!((s.mean_distill_steps() - resp.outcome.steps as f64).abs() < 1e-12);
    }

    #[test]
    fn distill_session_matches_server_state_on_the_same_stream() {
        // ServerState is DistillSession + a teacher; driving the session
        // directly with the teacher's labels must be weight-for-weight
        // identical to the composed state machine.
        let mut composed = server(DistillationMode::Partial);
        let mut session = DistillSession::new(
            composed.config,
            StudentNet::new(StudentConfig::tiny()).unwrap(),
            0.013,
        );
        let mut teacher = OracleTeacher::perfect(7);
        let mut gen = generator();
        for _ in 0..3 {
            let frame = gen.next_frame();
            let via_state = composed.handle_key_frame(&frame).unwrap();
            let label = teacher.pseudo_label(&frame).unwrap();
            let via_session = session
                .distill(&frame, &label, teacher.inference_latency())
                .unwrap();
            assert_eq!(via_state.outcome.steps, via_session.outcome.steps);
            assert!((via_state.metric - via_session.metric).abs() < 1e-12);
            assert!((via_state.server_time - via_session.server_time).abs() < 1e-12);
            assert!(via_state.update.distance(&via_session.update).unwrap() < 1e-9);
        }
        assert_eq!(
            session.key_frames_processed(),
            composed.key_frames_processed()
        );
        assert_eq!(
            session.distill_steps_taken(),
            composed.distill_steps_taken()
        );
        // The session's exported stats carry the distillation half and leave
        // the pool-worker half (waits, throttles, drops) zeroed.
        let stats = session.stats();
        assert_eq!(stats.key_frames, session.key_frames_processed());
        assert_eq!(stats.distill_steps, session.distill_steps_taken());
        assert_eq!(stats.throttled, 0);
        assert_eq!(stats.dropped, 0);
        assert_eq!(stats.mean_queue_wait_secs(), 0.0);
    }

    #[test]
    fn partial_update_payload_is_smaller_than_full() {
        let mut partial = server(DistillationMode::Partial);
        let mut full = server(DistillationMode::Full);
        assert!(partial.update_payload_bytes() < full.update_payload_bytes());
    }

    #[test]
    fn initial_checkpoint_is_full_scope() {
        let mut s = server(DistillationMode::Partial);
        let ckpt = s.initial_checkpoint();
        assert_eq!(ckpt.scope(), SnapshotScope::Full);
        assert!(ckpt.entry_count() > 0);
    }

    #[test]
    fn metric_improves_over_repeated_key_frames_of_a_static_scene() {
        let mut s = server(DistillationMode::Partial);
        let mut gen = generator();
        let mut last_initial = 0.0;
        for i in 0..5 {
            let frame = gen.next_frame();
            let resp = s.handle_key_frame(&frame).unwrap();
            if i == 4 {
                last_initial = resp.outcome.initial_metric;
            }
        }
        let first_frame_metric = {
            let mut fresh = server(DistillationMode::Partial);
            let mut gen2 = generator();
            let frame = gen2.next_frame();
            fresh
                .handle_key_frame(&frame)
                .unwrap()
                .outcome
                .initial_metric
        };
        // After several key frames of a coherent scene the student's
        // *pre-training* metric should exceed a fresh student's.
        assert!(
            last_initial > first_frame_metric,
            "no specialisation: {last_initial} vs {first_frame_metric}"
        );
        assert_eq!(s.key_frames_processed(), 5);
    }
}
