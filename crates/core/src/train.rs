//! Server-side student training on one key frame (Algorithm 1).
//!
//! Given a key frame and the teacher's pseudo-label, the server repeatedly
//! takes optimization steps on the student until either the student's metric
//! on that frame exceeds the threshold or `MAX_UPDATES` steps have been
//! taken, keeping the best-performing weights seen. If the student already
//! beats the threshold before any step, training is skipped entirely (the
//! `d = 0` case that the traffic upper bound of §4.4 relies on).

use crate::config::ShadowTutorConfig;
use crate::Result;
use serde::{Deserialize, Serialize};
use st_nn::loss::{weighted_cross_entropy, WeightMap};
use st_nn::metrics::miou;
use st_nn::optim::Adam;
use st_nn::snapshot::{SnapshotScope, WeightSnapshot};
use st_nn::student::StudentNet;
use st_video::Frame;

/// Outcome of one key-frame training call.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrainOutcome {
    /// Student metric (mean IoU vs the pseudo-label) before any update.
    pub initial_metric: f64,
    /// Best metric achieved (what the client's stride scheduler receives).
    pub best_metric: f64,
    /// Number of optimization steps actually taken (0 ≤ steps ≤ MAX_UPDATES).
    pub steps: usize,
    /// Final training loss of the last step taken (0 when no step was taken).
    pub final_loss: f32,
}

/// Train the student on a key frame against a pseudo-label (Algorithm 1).
///
/// The student is left holding the best weights observed during the loop
/// (which may be the initial weights if no step improved on them).
pub fn train_student(
    student: &mut StudentNet,
    optimizer: &mut Adam,
    frame: &Frame,
    pseudo_label: &[usize],
    config: &ShadowTutorConfig,
) -> Result<TrainOutcome> {
    config.validate()?;
    let classes = student.config.num_classes;
    let weights = WeightMap::from_labels(
        pseudo_label,
        frame.height,
        frame.width,
        0,
        config.loss_weight_radius,
    )?;

    // Line 1-2: initial prediction and metric.
    let prediction = student.predict(&frame.image)?;
    let initial_metric = miou(&prediction, pseudo_label, classes)?.value;
    let mut best_metric = initial_metric;
    let mut steps = 0usize;
    let mut final_loss = 0.0f32;

    // Line 4: skip training entirely when the student is already good enough.
    if best_metric < config.threshold {
        // Snapshot the starting weights so that a loop in which *every* step
        // degrades the metric still restores them at the end (the doc promise
        // "left holding the best weights observed" includes the initial ones).
        let mut best_weights: WeightSnapshot =
            WeightSnapshot::capture(student, SnapshotScope::TrainableOnly);
        // Whether `best_weights` already equals the student's live weights
        // (true after every capture, false after every optimizer step) — lets
        // the final restore be skipped when the last step was the best.
        let mut best_is_current = true;
        for _ in 0..config.max_updates {
            // Lines 6-9: one optimization step on the distillation loss.
            let logits = student.forward_train(&frame.image)?;
            let (loss, grad) = weighted_cross_entropy(&logits, pseudo_label, &weights)?;
            student.backward(&grad)?;
            optimizer.step(student);
            best_is_current = false;
            steps += 1;
            final_loss = loss;

            // Lines 9-14: re-evaluate and keep the best student. Ties keep
            // the *latest* weights: the argmax-based metric often plateaus
            // while the loss still falls, and rolling back to the first
            // plateau snapshot would silently discard that progress on every
            // key frame (the student would never escape the plateau no
            // matter how many key frames it trains on).
            let prediction = student.predict(&frame.image)?;
            let metric = miou(&prediction, pseudo_label, classes)?.value;
            if metric >= best_metric {
                best_metric = metric;
                best_weights = WeightSnapshot::capture(student, SnapshotScope::TrainableOnly);
                best_is_current = true;
            }
            // Lines 15-17: early exit once the threshold is reached.
            if metric > config.threshold {
                break;
            }
        }
        // Restore the best weights if the last step was not the best.
        if !best_is_current {
            best_weights.apply(student)?;
        }
    }

    Ok(TrainOutcome {
        initial_metric,
        best_metric,
        steps,
        final_loss,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DistillationMode;
    use st_nn::student::StudentConfig;
    use st_teacher::{OracleTeacher, Teacher};
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

    fn setup(mode: DistillationMode) -> (StudentNet, Adam, Frame, Vec<usize>, ShadowTutorConfig) {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::People,
        };
        let mut gen = VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, 5)).unwrap();
        let frame = gen.next_frame();
        let mut teacher = OracleTeacher::perfect(1);
        let label = teacher.pseudo_label(&frame).unwrap();
        let mut student = StudentNet::new(StudentConfig::tiny()).unwrap();
        student.freeze = mode.freeze_point();
        let config = ShadowTutorConfig {
            mode,
            ..ShadowTutorConfig::paper()
        };
        (
            student,
            Adam::new(config.learning_rate),
            frame,
            label,
            config,
        )
    }

    #[test]
    fn training_improves_the_key_frame_metric() {
        let (mut student, mut opt, frame, label, config) = setup(DistillationMode::Partial);
        let out = train_student(&mut student, &mut opt, &frame, &label, &config).unwrap();
        assert!(out.steps >= 1, "an untrained student should need steps");
        assert!(out.steps <= config.max_updates);
        assert!(
            out.best_metric >= out.initial_metric,
            "best metric {} must not be below initial {}",
            out.best_metric,
            out.initial_metric
        );
        assert!(out.final_loss.is_finite());
    }

    #[test]
    fn repeated_training_on_same_frame_converges_and_then_skips() {
        let (mut student, mut opt, frame, label, config) = setup(DistillationMode::Partial);
        let mut last = 0.0f64;
        for _ in 0..6 {
            let out = train_student(&mut student, &mut opt, &frame, &label, &config).unwrap();
            last = out.best_metric;
        }
        // After several key-frame trainings on the *same* frame the student
        // should overfit it well (this is exactly the paper's premise).
        assert!(
            last > 0.5,
            "student failed to overfit a single frame: {last}"
        );
        // And once the threshold is exceeded, training is skipped (d = 0).
        if last > config.threshold {
            let out = train_student(&mut student, &mut opt, &frame, &label, &config).unwrap();
            assert_eq!(out.steps, 0);
            assert_eq!(out.initial_metric, out.best_metric);
        }
    }

    #[test]
    fn full_distillation_takes_at_least_as_many_params_along() {
        let (mut student, mut opt, frame, label, config) = setup(DistillationMode::Full);
        let out = train_student(&mut student, &mut opt, &frame, &label, &config).unwrap();
        assert!(out.steps >= 1);
        assert_eq!(student.freeze, st_nn::student::FreezePoint::None);
    }

    #[test]
    fn already_good_student_skips_training() {
        let (mut student, mut opt, frame, label, _config) = setup(DistillationMode::Partial);
        // With a threshold of 0 every student is "good enough".
        let lenient = ShadowTutorConfig {
            threshold: 0.0,
            ..ShadowTutorConfig::paper()
        };
        let out = train_student(&mut student, &mut opt, &frame, &label, &lenient).unwrap();
        assert_eq!(out.steps, 0);
        assert_eq!(out.initial_metric, out.best_metric);
    }

    #[test]
    fn steps_capped_by_max_updates() {
        let (mut student, mut opt, frame, label, _config) = setup(DistillationMode::Partial);
        let strict = ShadowTutorConfig {
            threshold: 0.999, // effectively unreachable in a couple of steps
            max_updates: 3,
            ..ShadowTutorConfig::paper()
        };
        let out = train_student(&mut student, &mut opt, &frame, &label, &strict).unwrap();
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (mut student, mut opt, frame, label, _config) = setup(DistillationMode::Partial);
        let bad = ShadowTutorConfig {
            threshold: 2.0,
            ..ShadowTutorConfig::paper()
        };
        assert!(train_student(&mut student, &mut opt, &frame, &label, &bad).is_err());
    }
}
