//! Experiment records and table-row summaries.
//!
//! One [`ExperimentRecord`] captures everything a single run of ShadowTutor
//! (or a baseline) over one video stream produced: per-frame accuracy, the
//! key-frame trace (which frames were key frames, how many distillation
//! steps each took, the post-training metric), message sizes, and the total
//! virtual time. The summary methods compute exactly the quantities the
//! paper's tables report — FPS, key-frame ratio, traffic in Mbps, mean IoU —
//! and [`ExperimentRecord::replay_fps`] re-evaluates the same trace under a
//! different link model, which is how Figure 4's bandwidth sweep is produced
//! without re-running distillation per bandwidth point.

use crate::config::ShadowTutorConfig;
use serde::{Deserialize, Serialize};
use st_net::{LinkModel, Wire, WireError};
use st_sim::{Concurrency, LatencyProfile};

/// Per-frame record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrameRecord {
    /// Frame index in the stream.
    pub index: usize,
    /// Whether this frame was sent to the server as a key frame.
    pub is_key_frame: bool,
    /// Mean IoU of the client's prediction against the teacher's label for
    /// this frame (the paper's accuracy metric).
    pub miou: f64,
    /// Whether the client had to block for an in-flight update after this
    /// frame.
    pub waited: bool,
}

/// Per-key-frame record (the distillation trace).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KeyFrameRecord {
    /// Frame index of the key frame.
    pub frame_index: usize,
    /// Distillation steps the server took.
    pub steps: usize,
    /// Student metric on the key frame before training.
    pub initial_metric: f64,
    /// Best student metric after training (what the stride scheduler saw).
    pub metric: f64,
    /// Stride chosen after applying this update.
    pub stride_after: usize,
}

/// A complete record of one experiment run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Label of the video / experiment (e.g. `"fixed/animals"`).
    pub label: String,
    /// Label of the system variant (e.g. `"partial"`, `"full"`, `"naive"`, `"wild"`).
    pub variant: String,
    /// Number of frames processed.
    pub frames: usize,
    /// Per-frame records.
    pub frame_records: Vec<FrameRecord>,
    /// Key-frame trace.
    pub key_frames: Vec<KeyFrameRecord>,
    /// Uplink bytes per key frame (the encoded video frame).
    pub frame_bytes: usize,
    /// Downlink bytes per key frame (the weight update), or per frame for
    /// the naive baseline.
    pub update_bytes: usize,
    /// Total bytes sent client → server over the run.
    pub uplink_bytes: usize,
    /// Total bytes sent server → client over the run.
    pub downlink_bytes: usize,
    /// Total virtual execution time in seconds.
    pub total_time: f64,
    /// The algorithm configuration the run used.
    pub config: ShadowTutorConfig,
    /// The latency profile the clock used.
    pub latency: LatencyProfile,
}

impl ExperimentRecord {
    /// Frames processed per second of virtual time.
    pub fn fps(&self) -> f64 {
        if self.total_time <= 0.0 {
            0.0
        } else {
            self.frames as f64 / self.total_time
        }
    }

    /// Number of key frames.
    pub fn key_frame_count(&self) -> usize {
        self.key_frames.len()
    }

    /// Fraction of frames that were key frames, as a percentage
    /// (Table 5's "Key frame ratio").
    pub fn key_frame_ratio_percent(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            100.0 * self.key_frames.len() as f64 / self.frames as f64
        }
    }

    /// Total distillation steps over the run.
    pub fn total_distill_steps(&self) -> usize {
        self.key_frames.iter().map(|k| k.steps).sum()
    }

    /// Mean distillation steps per key frame (Table 2).
    pub fn mean_distill_steps(&self) -> f64 {
        if self.key_frames.is_empty() {
            0.0
        } else {
            self.total_distill_steps() as f64 / self.key_frames.len() as f64
        }
    }

    /// Mean IoU over every frame, as a percentage (Tables 6 and 7).
    pub fn mean_miou_percent(&self) -> f64 {
        if self.frame_records.is_empty() {
            return 0.0;
        }
        100.0 * self.frame_records.iter().map(|f| f.miou).sum::<f64>()
            / self.frame_records.len() as f64
    }

    /// Total data transferred over the run in megabytes.
    pub fn total_data_mb(&self) -> f64 {
        (self.uplink_bytes + self.downlink_bytes) as f64 / 1e6
    }

    /// Data transferred per key frame in MB `(to server, to client, total)` —
    /// Table 4's row for this variant.
    pub fn per_key_frame_mb(&self) -> (f64, f64, f64) {
        let up = self.frame_bytes as f64 / 1e6;
        let down = self.update_bytes as f64 / 1e6;
        (up, down, up + down)
    }

    /// Network traffic in Mbps: total transferred bits divided by total
    /// virtual time (Table 5's "Network traffic").
    pub fn traffic_mbps(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        (self.uplink_bytes + self.downlink_bytes) as f64 * 8.0 / 1e6 / self.total_time
    }

    /// Average data transferred per frame in MB (used for the "reduction in
    /// network transfer per frame" claim of §6.2).
    pub fn data_per_frame_mb(&self) -> f64 {
        if self.frames == 0 {
            0.0
        } else {
            self.total_data_mb() / self.frames as f64
        }
    }

    /// Return a copy of this record with the per-key-frame payload sizes
    /// replaced (e.g. by the paper's 720p/paper-scale-student sizes), so a
    /// trace collected at a reduced experiment resolution can be replayed at
    /// paper scale. Cumulative byte counters are rescaled consistently.
    pub fn with_payload_sizes(&self, frame_bytes: usize, update_bytes: usize) -> ExperimentRecord {
        let k = self.key_frames.len();
        ExperimentRecord {
            frame_bytes,
            update_bytes,
            uplink_bytes: k * frame_bytes,
            downlink_bytes: k * update_bytes,
            ..self.clone()
        }
    }

    /// Re-evaluate the total execution time of this run's trace under a
    /// different link model / concurrency assumption, following the paper's
    /// execution-time model (equation 3):
    ///
    /// `t_tot = (n − k·MIN_STRIDE)·t_si + d·t_sd + k·t_c`
    ///
    /// where `t_c` depends on the concurrency assumption (§4.4). This is the
    /// basis of the Figure 4 bandwidth sweep: the distillation trace (which
    /// frames were key frames and how many steps each took) is reused, only
    /// the timing is recomputed.
    pub fn replay_total_time(&self, link: &LinkModel, concurrency: Concurrency) -> f64 {
        let n = self.frames as f64;
        let k = self.key_frames.len() as f64;
        let d = self.total_distill_steps() as f64;
        let t_si = self.latency.student_inference;
        let partial = matches!(self.config.mode, crate::config::DistillationMode::Partial);
        let t_sd = self.latency.distill_step(partial);
        let t_net = link.key_frame_round_trip(self.frame_bytes, self.update_bytes);
        let round_trip = t_net + self.latency.teacher_inference;
        let t_c = concurrency.t_c(self.config.min_stride, t_si, round_trip);
        let serial_frames = (n - k * self.config.min_stride as f64).max(0.0);
        serial_frames * t_si + d * t_sd + k * t_c
    }

    /// Throughput of this trace under a different link model (Figure 4).
    pub fn replay_fps(&self, link: &LinkModel, concurrency: Concurrency) -> f64 {
        let t = self.replay_total_time(link, concurrency);
        if t <= 0.0 {
            0.0
        } else {
            self.frames as f64 / t
        }
    }
}

impl Wire for FrameRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.index.encode_into(out);
        self.is_key_frame.encode_into(out);
        self.miou.encode_into(out);
        self.waited.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, WireError> {
        Ok(FrameRecord {
            index: usize::decode(input)?,
            is_key_frame: bool::decode(input)?,
            miou: f64::decode(input)?,
            waited: bool::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 1 + 8 + 1
    }
}

impl Wire for KeyFrameRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.frame_index.encode_into(out);
        self.steps.encode_into(out);
        self.initial_metric.encode_into(out);
        self.metric.encode_into(out);
        self.stride_after.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, WireError> {
        Ok(KeyFrameRecord {
            frame_index: usize::decode(input)?,
            steps: usize::decode(input)?,
            initial_metric: f64::decode(input)?,
            metric: f64::decode(input)?,
            stride_after: usize::decode(input)?,
        })
    }

    fn encoded_len(&self) -> usize {
        8 + 8 + 8 + 8 + 8
    }
}

/// The cross-process encoding of a finished run: every scalar field in
/// declaration order, the two record traces as count-prefixed vectors, the
/// algorithm config (see `ShadowTutorConfig`'s `Wire` impl), and the latency
/// profile flattened to its four `f64` fields — st-sim stays wire-agnostic.
impl Wire for ExperimentRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        self.label.encode_into(out);
        self.variant.encode_into(out);
        self.frames.encode_into(out);
        self.frame_records.encode_into(out);
        self.key_frames.encode_into(out);
        self.frame_bytes.encode_into(out);
        self.update_bytes.encode_into(out);
        self.uplink_bytes.encode_into(out);
        self.downlink_bytes.encode_into(out);
        self.total_time.encode_into(out);
        self.config.encode_into(out);
        self.latency.student_inference.encode_into(out);
        self.latency.distill_step_partial.encode_into(out);
        self.latency.distill_step_full.encode_into(out);
        self.latency.teacher_inference.encode_into(out);
    }

    fn decode(input: &mut &[u8]) -> std::result::Result<Self, WireError> {
        Ok(ExperimentRecord {
            label: String::decode(input)?,
            variant: String::decode(input)?,
            frames: usize::decode(input)?,
            frame_records: Vec::<FrameRecord>::decode(input)?,
            key_frames: Vec::<KeyFrameRecord>::decode(input)?,
            frame_bytes: usize::decode(input)?,
            update_bytes: usize::decode(input)?,
            uplink_bytes: usize::decode(input)?,
            downlink_bytes: usize::decode(input)?,
            total_time: f64::decode(input)?,
            config: ShadowTutorConfig::decode(input)?,
            latency: LatencyProfile {
                student_inference: f64::decode(input)?,
                distill_step_partial: f64::decode(input)?,
                distill_step_full: f64::decode(input)?,
                teacher_inference: f64::decode(input)?,
            },
        })
    }

    fn encoded_len(&self) -> usize {
        self.label.encoded_len()
            + self.variant.encoded_len()
            + 8
            + self.frame_records.encoded_len()
            + self.key_frames.encoded_len()
            + 8 * 4
            + 8
            + self.config.encoded_len()
            + 8 * 4
    }
}

/// One shard's row in the operator report ([`PoolReport`]).
///
/// Everything an operator dashboards per worker: how much it served, how
/// elastic it was (steals in/out, forwarded traffic), how the frame-memory
/// bound behaved (evictions, re-shares, peak resident bytes), and what its
/// clients experienced (p50/p99 queue waits, drops, throttles).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Key frames served.
    pub key_frames: usize,
    /// Batched teacher forwards taken.
    pub teacher_batches: usize,
    /// Mean co-scheduled batch size.
    pub mean_batch: f64,
    /// Median wall-clock queue wait, milliseconds.
    pub queue_p50_ms: f64,
    /// 99th-percentile wall-clock queue wait, milliseconds.
    pub queue_p99_ms: f64,
    /// Wall-clock seconds the worker spent actively processing batches
    /// (run wall time minus this is the shard's idle time).
    pub busy_secs: f64,
    /// Measured wall-clock seconds inside batched teacher forwards.
    pub teacher_wall_secs: f64,
    /// Key frames rejected by admission control.
    pub throttled: usize,
    /// Key-frame jobs dropped (all acked, never silent).
    pub dropped: usize,
    /// Frames evicted from per-stream caches that finished here.
    pub frame_evictions: usize,
    /// Jobs parked while their evicted frame was re-requested.
    pub need_frame_requests: usize,
    /// Frames restored by client re-shares.
    pub reshared_frames: usize,
    /// Largest per-stream frame-cache watermark, bytes.
    pub frame_bytes_peak: usize,
    /// Streams this shard stole from busier shards.
    pub streams_stolen_in: usize,
    /// Streams this shard handed off to idle thieves.
    pub streams_donated: usize,
    /// Uplink messages forwarded onward after their stream migrated.
    pub forwarded_messages: usize,
    /// Handler events dispatched (uplink envelopes, migrations, timer
    /// fires) — the event loop's measure of work.
    pub events_dispatched: usize,
    /// Timer-wheel fires dispatched to this shard (reactor driver only).
    pub timer_fires: usize,
    /// Readiness wakeups that dispatched a pass on this shard (reactor
    /// driver only).
    pub poll_wakeups: usize,
    /// Peak idle-stream count: registered sessions with no queued key
    /// frame. High values with low thread counts are the reactor working
    /// as intended.
    pub idle_streams: usize,
    /// Dead wards this shard adopted as the warm standby (usually 0 or 1).
    pub failovers: usize,
    /// Streams re-homed onto this shard by failover takeovers.
    pub streams_adopted: usize,
    /// Frames that could not be recovered from replicas or re-shares during
    /// a takeover; their jobs were drop-acked with `ShardFailed`.
    pub frames_lost_on_failover: usize,
}

/// The serializable operator report condensed from a pool run
/// (`PoolStats::snapshot()` in `shadowtutor::serve`).
///
/// The vendored `serde` is marker-only (no registry access in the build
/// environment), so [`PoolReport::to_json`] hand-rolls the export; the
/// schema is one object with a `shards` array and a `totals` object.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PoolReport {
    /// Per-shard rows, indexed by shard.
    pub shards: Vec<ShardReport>,
    /// Key frames served across the pool.
    pub total_key_frames: usize,
    /// Streams migrated by work stealing.
    pub streams_stolen: usize,
    /// Frames evicted across every stream.
    pub frame_evictions: usize,
    /// Frames restored by re-shares.
    pub reshared_frames: usize,
    /// Key frames dropped (all acked).
    pub dropped_jobs: usize,
    /// Key frames throttled by admission control.
    pub throttled: usize,
    /// Largest per-stream frame-cache watermark anywhere, bytes.
    pub frame_bytes_peak: usize,
    /// Pool-wide median queue wait, milliseconds.
    pub queue_p50_ms: f64,
    /// Pool-wide 99th-percentile queue wait, milliseconds.
    pub queue_p99_ms: f64,
    /// Measured wall-clock teacher seconds across the pool.
    pub teacher_wall_secs: f64,
    /// Handler events dispatched across the pool.
    pub events_dispatched: usize,
    /// Timer-wheel fires across the pool (reactor driver only).
    pub timer_fires: usize,
    /// Readiness wakeups dispatched across the pool (reactor driver only).
    pub poll_wakeups: usize,
    /// Largest per-shard peak idle-stream count.
    pub idle_streams: usize,
    /// Measured client→server bytes as they would appear on the wire: the
    /// sum of [`st_net::wire::frame_len`] over every uplink message the pool
    /// ingested. Zero when the runtime in use does not meter frames.
    pub wire_bytes_up: usize,
    /// Measured server→client wire bytes (framed downlink messages).
    pub wire_bytes_down: usize,
    /// Shard deaths recovered by a warm standby takeover.
    pub failovers: usize,
    /// Streams adopted across every takeover.
    pub streams_adopted: usize,
    /// Frames lost (drop-acked `ShardFailed`) across every takeover.
    pub frames_lost_on_failover: usize,
    /// 99th-percentile takeover latency — death detection to the standby
    /// finishing adoption — in milliseconds. `NaN` when no failover ran.
    pub takeover_latency_p99_ms: f64,
    /// Bytes of new (previously unseen) checkpoint chunks published to the
    /// replica store over the run.
    pub replica_bytes_published: usize,
    /// Bytes of checkpoint chunks deduplicated by content hash (frozen
    /// partial-distillation stages shared instead of recopied).
    pub replica_bytes_shared: usize,
    /// Streams the pool served over the run.
    pub streams: usize,
    /// Bytes of session weight storage still shared with the shard template
    /// (copy-on-write stages never written), summed over live sessions at
    /// the last per-shard measurement.
    pub session_bytes_shared: usize,
    /// Bytes of private session weight storage — stages the optimizer wrote,
    /// splitting them off the template.
    pub session_bytes_private: usize,
    /// Peak of the private-bytes measurement over the run.
    pub session_bytes_private_peak: usize,
    /// Chunk bytes resident in the content-addressed weight store at join
    /// (each distinct chunk counted once, however many refs share it).
    pub store_resident_bytes: usize,
    /// Distinct chunks resident in the weight store at join.
    pub store_chunk_count: usize,
    /// Student updates sent as sparse delta envelopes.
    pub delta_updates_sent: usize,
    /// Student updates sent as full-snapshot envelopes (initial checkpoints
    /// after a restore, plus every update on non-negotiated streams).
    pub full_updates_sent: usize,
    /// Bytes actually placed on downlinks for weight updates when delta
    /// encoding was negotiated.
    pub update_bytes_sent: usize,
    /// Bytes the same updates would have cost as full-snapshot envelopes —
    /// the A/B denominator for the delta savings.
    pub update_bytes_full_equiv: usize,
}

impl PoolReport {
    /// Total bytes of weight state resident for the stream population: the
    /// content-addressed store (each template chunk counted once, however
    /// many sessions share it) plus every session's private storage.
    pub fn weights_resident_bytes(&self) -> usize {
        self.store_resident_bytes + self.session_bytes_private
    }

    /// Streams hosted per GiB of resident weight state — the capacity
    /// headline of the content-keyed store. `NaN` when the pool never
    /// measured session memory (no streams, or a zero-sized store).
    pub fn streams_per_gb(&self) -> f64 {
        let resident = self.weights_resident_bytes();
        if resident == 0 || self.streams == 0 {
            f64::NAN
        } else {
            self.streams as f64 * (1u64 << 30) as f64 / resident as f64
        }
    }

    /// Render the report as a JSON object (hand-rolled; see the type docs).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn num(value: f64) -> String {
            if value.is_finite() {
                format!("{value}")
            } else {
                "null".to_string()
            }
        }
        let mut out = String::from("{\"shards\":[");
        for (i, s) in self.shards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"shard\":{},\"key_frames\":{},\"teacher_batches\":{},\"mean_batch\":{},\
                 \"queue_p50_ms\":{},\"queue_p99_ms\":{},\"busy_secs\":{},\
                 \"teacher_wall_secs\":{},\"throttled\":{},\"dropped\":{},\
                 \"frame_evictions\":{},\"need_frame_requests\":{},\"reshared_frames\":{},\
                 \"frame_bytes_peak\":{},\"streams_stolen_in\":{},\"streams_donated\":{},\
                 \"forwarded_messages\":{},\"events_dispatched\":{},\"timer_fires\":{},\
                 \"poll_wakeups\":{},\"idle_streams\":{},\"failovers\":{},\
                 \"streams_adopted\":{},\"frames_lost_on_failover\":{}}}",
                s.shard,
                s.key_frames,
                s.teacher_batches,
                num(s.mean_batch),
                num(s.queue_p50_ms),
                num(s.queue_p99_ms),
                num(s.busy_secs),
                num(s.teacher_wall_secs),
                s.throttled,
                s.dropped,
                s.frame_evictions,
                s.need_frame_requests,
                s.reshared_frames,
                s.frame_bytes_peak,
                s.streams_stolen_in,
                s.streams_donated,
                s.forwarded_messages,
                s.events_dispatched,
                s.timer_fires,
                s.poll_wakeups,
                s.idle_streams,
                s.failovers,
                s.streams_adopted,
                s.frames_lost_on_failover,
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{{\"key_frames\":{},\"streams_stolen\":{},\"frame_evictions\":{},\
             \"reshared_frames\":{},\"dropped_jobs\":{},\"throttled\":{},\
             \"frame_bytes_peak\":{},\"queue_p50_ms\":{},\"queue_p99_ms\":{},\
             \"teacher_wall_secs\":{},\"events_dispatched\":{},\"timer_fires\":{},\
             \"poll_wakeups\":{},\"idle_streams\":{},\
             \"wire_bytes_up\":{},\"wire_bytes_down\":{},\
             \"failovers\":{},\"streams_adopted\":{},\"frames_lost_on_failover\":{},\
             \"takeover_latency_p99_ms\":{},\"replica_bytes_published\":{},\
             \"replica_bytes_shared\":{},\"streams\":{},\
             \"session_bytes_shared\":{},\"session_bytes_private\":{},\
             \"session_bytes_private_peak\":{},\"store_resident_bytes\":{},\
             \"store_chunk_count\":{},\"streams_per_gb\":{},\
             \"delta_updates_sent\":{},\"full_updates_sent\":{},\
             \"update_bytes_sent\":{},\"update_bytes_full_equiv\":{}}}}}",
            self.total_key_frames,
            self.streams_stolen,
            self.frame_evictions,
            self.reshared_frames,
            self.dropped_jobs,
            self.throttled,
            self.frame_bytes_peak,
            num(self.queue_p50_ms),
            num(self.queue_p99_ms),
            num(self.teacher_wall_secs),
            self.events_dispatched,
            self.timer_fires,
            self.poll_wakeups,
            self.idle_streams,
            self.wire_bytes_up,
            self.wire_bytes_down,
            self.failovers,
            self.streams_adopted,
            self.frames_lost_on_failover,
            num(self.takeover_latency_p99_ms),
            self.replica_bytes_published,
            self.replica_bytes_shared,
            self.streams,
            self.session_bytes_shared,
            self.session_bytes_private,
            self.session_bytes_private_peak,
            self.store_resident_bytes,
            self.store_chunk_count,
            num(self.streams_per_gb()),
            self.delta_updates_sent,
            self.full_updates_sent,
            self.update_bytes_sent,
            self.update_bytes_full_equiv,
        );
        out
    }
}

/// One column of [`format_table`]: a header plus the closure extracting the
/// cell value from a record.
pub type TableColumn<'a> = (&'a str, &'a dyn Fn(&ExperimentRecord) -> String);

/// Format a set of records as an aligned text table, one record per row.
///
/// `columns` maps a header to a closure extracting the cell value.
pub fn format_table(
    title: &str,
    records: &[ExperimentRecord],
    columns: &[TableColumn<'_>],
) -> String {
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut widths: Vec<usize> = columns.iter().map(|(h, _)| h.len()).collect();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for record in records {
        let row: Vec<String> = columns.iter().map(|(_, f)| f(record)).collect();
        for (w, cell) in widths.iter_mut().zip(row.iter()) {
            *w = (*w).max(cell.len());
        }
        rows.push(row);
    }
    let header: Vec<String> = columns
        .iter()
        .zip(widths.iter())
        .map(|((h, _), w)| format!("{h:<w$}"))
        .collect();
    out.push_str(&header.join("  "));
    out.push('\n');
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        out.push_str(&line.join("  "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    fn record(
        frames: usize,
        key_frames: usize,
        steps_per_key: usize,
        time: f64,
    ) -> ExperimentRecord {
        let frame_records = (0..frames)
            .map(|i| FrameRecord {
                index: i,
                is_key_frame: key_frames > 0 && i % (frames / key_frames.max(1)).max(1) == 0,
                miou: 0.7,
                waited: false,
            })
            .collect();
        let key_frame_records = (0..key_frames)
            .map(|i| KeyFrameRecord {
                frame_index: i * (frames / key_frames.max(1)).max(1),
                steps: steps_per_key,
                initial_metric: 0.5,
                metric: 0.85,
                stride_after: 16,
            })
            .collect();
        ExperimentRecord {
            label: "test".into(),
            variant: "partial".into(),
            frames,
            frame_records,
            key_frames: key_frame_records,
            frame_bytes: 2_637_000,
            update_bytes: 395_000,
            uplink_bytes: key_frames * 2_637_000,
            downlink_bytes: key_frames * 395_000,
            total_time: time,
            config: ShadowTutorConfig::paper(),
            latency: LatencyProfile::paper(),
        }
    }

    #[test]
    fn summary_quantities() {
        let r = record(1000, 50, 4, 150.0);
        assert!((r.fps() - 1000.0 / 150.0).abs() < 1e-9);
        assert_eq!(r.key_frame_count(), 50);
        assert!((r.key_frame_ratio_percent() - 5.0).abs() < 1e-9);
        assert_eq!(r.total_distill_steps(), 200);
        assert!((r.mean_distill_steps() - 4.0).abs() < 1e-9);
        assert!((r.mean_miou_percent() - 70.0).abs() < 1e-9);
        let (up, down, total) = r.per_key_frame_mb();
        assert!((up - 2.637).abs() < 1e-9);
        assert!((down - 0.395).abs() < 1e-9);
        assert!((total - 3.032).abs() < 1e-9);
        assert!(r.traffic_mbps() > 0.0);
        assert!(r.data_per_frame_mb() > 0.0);
    }

    #[test]
    fn empty_record_is_safe() {
        let r = record(0, 0, 0, 0.0);
        assert_eq!(r.fps(), 0.0);
        assert_eq!(r.key_frame_ratio_percent(), 0.0);
        assert_eq!(r.mean_distill_steps(), 0.0);
        assert_eq!(r.mean_miou_percent(), 0.0);
    }

    #[test]
    fn replay_matches_paper_scale_throughput() {
        // A paper-scale trace: 5000 frames, 5.38% key frames, 3.83 mean steps.
        let r = ExperimentRecord {
            key_frames: (0..269)
                .map(|i| KeyFrameRecord {
                    frame_index: i * 18,
                    steps: 4,
                    initial_metric: 0.6,
                    metric: 0.85,
                    stride_after: 18,
                })
                .collect(),
            frames: 5000,
            ..record(5000, 269, 4, 1.0)
        };
        let link = LinkModel::paper_default();
        let fps = r.replay_fps(&link, Concurrency::Full);
        // Paper Table 3 average: 6.54 FPS. The model reproduces it within ~10%.
        assert!((fps - 6.54).abs() < 0.7, "replayed fps {fps}");
        // Narrowing the link reduces throughput (Figure 4's qualitative shape),
        // and with full concurrency the drop at 40 Mbps is modest.
        let slow = r.replay_fps(&LinkModel::symmetric_mbps(8.0), Concurrency::Full);
        assert!(slow < fps);
        let at40 = r.replay_fps(&LinkModel::symmetric_mbps(40.0), Concurrency::Full);
        assert!(
            at40 > 0.85 * fps,
            "throughput should be retained at 40 Mbps: {at40} vs {fps}"
        );
    }

    #[test]
    fn replay_concurrency_ordering() {
        let r = record(1000, 50, 4, 150.0);
        let link = LinkModel::paper_default();
        let full = r.replay_fps(&link, Concurrency::Full);
        let none = r.replay_fps(&link, Concurrency::None);
        assert!(full >= none);
    }

    #[test]
    fn pool_report_renders_valid_json() {
        let shard = ShardReport {
            shard: 0,
            key_frames: 10,
            teacher_batches: 4,
            mean_batch: 2.5,
            queue_p50_ms: 1.25,
            queue_p99_ms: 9.5,
            busy_secs: 0.5,
            teacher_wall_secs: 0.25,
            throttled: 1,
            dropped: 0,
            frame_evictions: 3,
            need_frame_requests: 2,
            reshared_frames: 2,
            frame_bytes_peak: 30720,
            streams_stolen_in: 1,
            streams_donated: 0,
            forwarded_messages: 2,
            events_dispatched: 25,
            timer_fires: 3,
            poll_wakeups: 12,
            idle_streams: 7,
            failovers: 1,
            streams_adopted: 2,
            frames_lost_on_failover: 1,
        };
        let report = PoolReport {
            shards: vec![shard.clone(), ShardReport { shard: 1, ..shard }],
            total_key_frames: 20,
            streams_stolen: 1,
            frame_evictions: 6,
            reshared_frames: 4,
            dropped_jobs: 0,
            throttled: 2,
            frame_bytes_peak: 30720,
            queue_p50_ms: 1.25,
            queue_p99_ms: f64::NAN,
            teacher_wall_secs: 0.5,
            events_dispatched: 50,
            timer_fires: 6,
            poll_wakeups: 24,
            idle_streams: 7,
            wire_bytes_up: 123456,
            wire_bytes_down: 654321,
            failovers: 1,
            streams_adopted: 2,
            frames_lost_on_failover: 1,
            takeover_latency_p99_ms: 4.75,
            replica_bytes_published: 2048,
            replica_bytes_shared: 1024,
            streams: 8,
            session_bytes_shared: 4096,
            session_bytes_private: 512,
            session_bytes_private_peak: 768,
            store_resident_bytes: 2048,
            store_chunk_count: 6,
            delta_updates_sent: 15,
            full_updates_sent: 5,
            update_bytes_sent: 900,
            update_bytes_full_equiv: 3000,
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"shards\":[{\"shard\":0,"));
        assert!(json.contains("\"streams_stolen_in\":1"));
        // Reactor loop-health fields are visible to operators.
        assert!(json.contains("\"events_dispatched\":50"));
        assert!(json.contains("\"timer_fires\":6"));
        assert!(json.contains("\"poll_wakeups\":24"));
        assert!(json.contains("\"idle_streams\":7"));
        assert!(json.contains("\"wire_bytes_up\":123456"));
        assert!(json.contains("\"wire_bytes_down\":654321"));
        // Failover accounting is exported for operators.
        assert!(json.contains("\"failovers\":1"));
        assert!(json.contains("\"streams_adopted\":2"));
        assert!(json.contains("\"frames_lost_on_failover\":1"));
        assert!(json.contains("\"takeover_latency_p99_ms\":4.75"));
        assert!(json.contains("\"replica_bytes_published\":2048"));
        assert!(json.contains("\"replica_bytes_shared\":1024"));
        // Weight-store residency and delta-wire accounting are exported.
        assert!(json.contains("\"streams\":8"));
        assert!(json.contains("\"session_bytes_shared\":4096"));
        assert!(json.contains("\"session_bytes_private\":512"));
        assert!(json.contains("\"session_bytes_private_peak\":768"));
        assert!(json.contains("\"store_resident_bytes\":2048"));
        assert!(json.contains("\"store_chunk_count\":6"));
        assert!(json.contains("\"delta_updates_sent\":15"));
        assert!(json.contains("\"full_updates_sent\":5"));
        assert!(json.contains("\"update_bytes_sent\":900"));
        assert!(json.contains("\"update_bytes_full_equiv\":3000"));
        // streams_per_gb = 8 streams / ((2048 + 512) bytes / 1 GiB).
        assert_eq!(report.weights_resident_bytes(), 2560);
        assert!((report.streams_per_gb() - 8.0 * 1073741824.0 / 2560.0).abs() < 1e-6);
        assert!(json.contains("\"streams_per_gb\":"));
        assert!(json.contains("\"totals\":{\"key_frames\":20,"));
        assert!(json.contains("\"frame_bytes_peak\":30720"));
        // Non-finite values render as null, not invalid JSON.
        assert!(json.contains("\"queue_p99_ms\":null"));
        // Balanced braces/brackets (a cheap structural check).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let records = vec![record(100, 10, 3, 20.0), record(200, 5, 2, 30.0)];
        let fps_fn = |r: &ExperimentRecord| format!("{:.2}", r.fps());
        let label_fn = |r: &ExperimentRecord| r.label.clone();
        let table = format_table(
            "Table X",
            &records,
            &[("video", &label_fn), ("fps", &fps_fn)],
        );
        assert!(table.contains("Table X"));
        assert!(table.contains("video"));
        assert!(table.lines().count() >= 4);
    }
}
