//! The cross-shard work-stealing coordination core, extracted from the
//! server pool so the *protocol* — request slots, migration mailboxes, and
//! the handoff-under-lock discipline — is a small, generic, model-checkable
//! unit.
//!
//! [`StealCore<S, E>`] is generic over the migrated-stream payload `S` and
//! the forwarded-envelope payload `E`: the production pool instantiates it
//! with whole serving sessions and uplink envelopes
//! (`serve::StealRegistry`), while the model-check suite
//! (`tests/model_steal.rs`) instantiates it with small integers and drives
//! it from instrumented threads. Same code either way — the sync primitives
//! come from the `st_check::sync` facade, which is plain `std` in normal
//! builds and the deterministic model checker under `--features
//! model-check`.
//!
//! # The protocol
//!
//! Each shard owns one *request slot* (`Mutex<Option<usize>>`) and one
//! *mailbox*. A thief asks a victim for work by writing its own index into
//! the victim's slot ([`post_request`](StealCore::post_request)); the victim
//! answers by moving a stream into the thief's mailbox and clearing the slot
//! — all under the slot's lock ([`fulfil_request`](StealCore::fulfil_request)).
//! The thief cancels by clearing the slot itself
//! ([`withdraw_request`](StealCore::withdraw_request)).
//!
//! That single lock is what makes the handoff race-free: a thief that
//! observes its request gone from the slot is guaranteed the fulfilment (if
//! any) is already visible in its mailbox, and a victim that wins the slot
//! lock against a withdrawing thief is guaranteed the thief has not exited —
//! exit requires a successful withdraw first. The model-check suite proves
//! both properties under every bounded interleaving, and proves that
//! weakening the exit discipline (closing the mailbox before withdrawing)
//! is caught as a stranded stream.

use std::sync::atomic::Ordering;

use st_check::sync::{AtomicUsize, Mutex, MutexGuard};

/// A thief only asks a shard for work when at least this many jobs are
/// published as queued there — a single queued job is cheaper to serve
/// locally than to migrate.
pub const MIN_STEAL_BACKLOG: usize = 2;

/// One shard's migration mailbox: streams handed to it by donating shards
/// and envelopes forwarded to it (traffic that reached the old shard after
/// a migration).
struct Mailbox<S, E> {
    streams: Vec<S>,
    envelopes: Vec<E>,
    /// Set by the owning worker on exit (under the mailbox lock, after a
    /// final drain). A forwarder that finds the mailbox closed keeps its
    /// envelope and accounts for the loss itself instead of posting into a
    /// dead letter box.
    closed: bool,
}

impl<S, E> Default for Mailbox<S, E> {
    fn default() -> Self {
        Mailbox {
            streams: Vec::new(),
            envelopes: Vec::new(),
            closed: false,
        }
    }
}

/// Outcome of a donation attempt ([`StealCore::fulfil_request`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FulfilOutcome {
    /// No thief is waiting at this shard.
    NoRequest,
    /// The slot named this shard itself; cleared defensively — a
    /// self-request can never be fulfilled meaningfully.
    SelfRequest,
    /// A thief is waiting but the donor kept its work (the prepare callback
    /// declined); the request stays pending.
    Kept,
    /// The stream is in the thief's mailbox and the request slot is cleared.
    Delivered {
        /// The shard that received the stream.
        thief: usize,
    },
    /// The thief's mailbox is already closed (the thief died and a standby
    /// is taking it over, or it exited): the donor keeps the stream and the
    /// stale request slot is cleared. Nothing is ever pushed into a closed
    /// mailbox, so a buddy adoption racing a concurrent steal can neither
    /// double-own nor strand the stream.
    ThiefGone,
}

/// How a pending steal request looks to the thief that posted it
/// ([`StealCore::review_request`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestReview {
    /// The slot no longer names the thief: the victim fulfilled (the stream
    /// is already in — or on its way to — the mailbox) or exited.
    Gone,
    /// Still posted, still waiting.
    Pending,
    /// The thief asked to withdraw and the slot was still its own: cleared.
    Withdrawn,
}

/// Shared coordination state for cross-shard work stealing. Plain shared
/// memory, deliberately *not* channels: workers polling each other through
/// channel handles would keep every uplink alive and deadlock the
/// disconnect-based shutdown.
pub struct StealCore<S, E> {
    /// Registered-session count per shard — the placement signal.
    loads: Vec<AtomicUsize>,
    /// Queued jobs per shard — the steal signal, published by each worker
    /// once per drain pass.
    backlog: Vec<AtomicUsize>,
    /// Pending steal request at each (victim) shard: `Some(thief)` while a
    /// thief is waiting for a handoff from that victim.
    requests: Vec<Mutex<Option<usize>>>,
    /// Per-shard migration mailbox.
    mailboxes: Vec<Mutex<Mailbox<S, E>>>,
}

/// Lock a mutex, recovering the data if another worker panicked while
/// holding it: the coordination state must outlive any one worker, and
/// every protocol invariant is re-established before a guard drops.
fn locked<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl<S, E> StealCore<S, E> {
    /// Coordination state for `shards` shards, all idle and empty.
    pub fn new(shards: usize) -> Self {
        StealCore {
            loads: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            backlog: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            requests: (0..shards).map(|_| Mutex::new(None)).collect(),
            mailboxes: (0..shards)
                .map(|_| Mutex::new(Mailbox::default()))
                .collect(),
        }
    }

    /// Number of shards this core coordinates.
    pub fn shards(&self) -> usize {
        self.loads.len()
    }

    /// Registered-session count of one shard.
    pub fn load(&self, shard: usize) -> usize {
        self.loads[shard].load(Ordering::SeqCst)
    }

    /// Registered-session count of every shard.
    pub fn loads_snapshot(&self) -> Vec<usize> {
        self.loads
            .iter()
            .map(|load| load.load(Ordering::SeqCst))
            .collect()
    }

    /// The shard with the fewest registered sessions (ties toward the lowest
    /// index) — the placement signal for least-loaded policies.
    pub fn least_loaded(&self) -> usize {
        self.loads
            .iter()
            .enumerate()
            .min_by_key(|(_, load)| load.load(Ordering::SeqCst))
            .map(|(index, _)| index)
            .unwrap_or(0)
    }

    /// A session registered at `shard`.
    pub fn load_inc(&self, shard: usize) {
        self.loads[shard].fetch_add(1, Ordering::SeqCst);
    }

    /// A session retired (or its registration rolled back) at `shard`.
    pub fn load_dec(&self, shard: usize) {
        self.loads[shard].fetch_sub(1, Ordering::SeqCst);
    }

    /// Publish `shard`'s queued-job count — the signal thieves pick victims
    /// by. Workers publish once per drain pass, and zero it on exit.
    pub fn publish_backlog(&self, shard: usize, depth: usize) {
        self.backlog[shard].store(depth, Ordering::SeqCst);
    }

    /// Post a steal request from `thief` at the shard with the deepest
    /// published backlog (ties toward the lowest index). Returns the victim
    /// whose request slot now names `thief`, or `None` when no other shard
    /// publishes at least `min_backlog` jobs or the best victim already has
    /// a request parked at it.
    pub fn post_request(&self, thief: usize, min_backlog: usize) -> Option<usize> {
        let (victim, backlog) = self
            .backlog
            .iter()
            .enumerate()
            .filter(|(index, _)| *index != thief)
            .map(|(index, backlog)| (index, backlog.load(Ordering::SeqCst)))
            .max_by_key(|&(index, backlog)| (backlog, std::cmp::Reverse(index)))?;
        if backlog < min_backlog {
            return None;
        }
        let mut slot = locked(&self.requests[victim]);
        if slot.is_some() {
            return None;
        }
        *slot = Some(thief);
        Some(victim)
    }

    /// How `thief`'s pending request at `victim` stands; with `withdraw`,
    /// additionally clear it if it still stands. A [`RequestReview::Gone`]
    /// answer means any fulfilment is already in (or on its way to) the
    /// thief's mailbox — drain it rather than re-posting elsewhere.
    pub fn review_request(&self, victim: usize, thief: usize, withdraw: bool) -> RequestReview {
        let mut slot = locked(&self.requests[victim]);
        if *slot != Some(thief) {
            RequestReview::Gone
        } else if withdraw {
            *slot = None;
            RequestReview::Withdrawn
        } else {
            RequestReview::Pending
        }
    }

    /// Cancel `thief`'s request at `victim`. Returns `true` when the slot
    /// still named the thief and was cleared — after which no fulfilment
    /// can ever land, so the thief may exit. A `false` answer means the
    /// victim already fulfilled (or exited): the thief's mailbox must be
    /// drained again before exiting.
    ///
    /// Cancelling under the slot's lock is the exit half of the handoff
    /// discipline: a victim mid-fulfilment holds the lock, so the thief's
    /// withdraw cannot interleave into the middle of a handoff.
    pub fn withdraw_request(&self, victim: usize, thief: usize) -> bool {
        let mut slot = locked(&self.requests[victim]);
        if *slot == Some(thief) {
            *slot = None;
            true
        } else {
            false
        }
    }

    /// Clear any request parked at `victim` (the victim is exiting and
    /// refuses it; the thief observes `Gone` and re-targets).
    pub fn clear_request(&self, victim: usize) {
        *locked(&self.requests[victim]) = None;
    }

    /// Fulfil a pending steal request against `victim`, if one exists and
    /// the donor can spare a stream. `prepare(thief)` decides: it returns
    /// the stream to donate plus the donor's remaining backlog depth, or
    /// `None` to keep the request pending. On donation the stream is pushed
    /// into the thief's mailbox, `delivered(thief)` runs (the donor flips
    /// its routing there), the load/backlog signals are updated, and only
    /// then does the slot clear.
    ///
    /// The entire handoff happens under the victim's request-slot lock: a
    /// thief that later observes the slot cleared is guaranteed to find the
    /// stream in its mailbox (the cancel/fulfil race resolves under that
    /// one lock). The thief's mailbox is locked *before* the prepare
    /// callback runs and held until the stream is pushed, so the push and
    /// the closed-flag check are one atomic step against
    /// [`close_mailbox`](Self::close_mailbox): a mailbox closed by the
    /// thief's own exit — or by a standby taking over a dead thief — is
    /// refused with [`FulfilOutcome::ThiefGone`] and the donor's state is
    /// left untouched. A delivery can therefore never land in a dead letter
    /// box, under the cooperative exit protocol *and* under failover.
    pub fn fulfil_request<F, G>(&self, victim: usize, prepare: F, delivered: G) -> FulfilOutcome
    where
        F: FnOnce(usize) -> Option<(S, usize)>,
        G: FnOnce(usize),
    {
        let mut slot = locked(&self.requests[victim]);
        let Some(thief) = *slot else {
            return FulfilOutcome::NoRequest;
        };
        if thief == victim {
            *slot = None;
            return FulfilOutcome::SelfRequest;
        }
        {
            let mut mailbox = locked(&self.mailboxes[thief]);
            if mailbox.closed {
                // The thief is gone (exit or takeover): the request is
                // stale. Refuse before `prepare` runs so nothing was moved
                // out of the donor, and clear the slot so the donor stops
                // reconsidering a dead shard's request.
                *slot = None;
                return FulfilOutcome::ThiefGone;
            }
            let Some((stream, backlog)) = prepare(thief) else {
                return FulfilOutcome::Kept;
            };
            mailbox.streams.push(stream);
            self.backlog[victim].store(backlog, Ordering::SeqCst);
        }
        delivered(thief);
        self.loads[victim].fetch_sub(1, Ordering::SeqCst);
        self.loads[thief].fetch_add(1, Ordering::SeqCst);
        *slot = None;
        FulfilOutcome::Delivered { thief }
    }

    /// Forward an envelope to `shard`'s mailbox (traffic for a stream that
    /// migrated there). `Err` hands the envelope back when the mailbox is
    /// closed — the owning worker exited, no ack can ever be delivered, and
    /// the caller accounts for the loss.
    pub fn forward_envelope(&self, shard: usize, envelope: E) -> Result<(), E> {
        let mut mailbox = locked(&self.mailboxes[shard]);
        if mailbox.closed {
            Err(envelope)
        } else {
            mailbox.envelopes.push(envelope);
            Ok(())
        }
    }

    /// Take everything currently in `shard`'s mailbox: migrated streams and
    /// forwarded envelopes, each in arrival order.
    pub fn drain_mailbox(&self, shard: usize) -> (Vec<S>, Vec<E>) {
        let mut mailbox = locked(&self.mailboxes[shard]);
        (
            std::mem::take(&mut mailbox.streams),
            std::mem::take(&mut mailbox.envelopes),
        )
    }

    /// Whether `shard`'s mailbox holds no migrated streams — the final
    /// exit check after a successful withdraw.
    pub fn mailbox_streams_empty(&self, shard: usize) -> bool {
        locked(&self.mailboxes[shard]).streams.is_empty()
    }

    /// Close `shard`'s mailbox and take whatever is still in it. Future
    /// [`forward_envelope`](Self::forward_envelope) calls to this shard are
    /// refused. Returns `(stranded_streams, leftover_envelopes)`; by the
    /// exit protocol the stream list must be empty (the caller asserts).
    pub fn close_mailbox(&self, shard: usize) -> (Vec<S>, Vec<E>) {
        let mut mailbox = locked(&self.mailboxes[shard]);
        mailbox.closed = true;
        (
            std::mem::take(&mut mailbox.streams),
            std::mem::take(&mut mailbox.envelopes),
        )
    }
}
