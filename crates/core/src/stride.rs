//! Adaptive key-frame striding (Algorithm 2 of the paper).
//!
//! After training on a key frame, the stride to the next key frame is scaled
//! by a ratio derived from the post-training metric: a piecewise-linear map
//! that passes through `(0, 0)`, `(THRESHOLD, 1)` and `(1, 2)`. Students that
//! beat the threshold earn a longer stride (up to 2× per key frame); students
//! that miss it get a proportionally shorter one. The result is clamped to
//! `[MIN_STRIDE, MAX_STRIDE]`.
//!
//! Alternative policies from prior work (fixed stride, exponential back-off)
//! are provided for the ablation benches — the paper's §4.1.5 argues they are
//! either not adaptive or too coarse.

use crate::config::ShadowTutorConfig;
use serde::{Deserialize, Serialize};

/// Compute the next key-frame stride (Algorithm 2).
///
/// `stride` is the current stride in frames, `metric` the student's
/// post-training metric in `[0, 1]`.
pub fn next_stride(config: &ShadowTutorConfig, stride: usize, metric: f64) -> usize {
    let metric = metric.clamp(0.0, 1.0);
    let threshold = config.threshold;
    let ratio = if metric < threshold {
        // Linear through (0,0) and (THRESHOLD, 1).
        metric / threshold
    } else {
        // Linear through (THRESHOLD, 1) and (1, 2).
        (metric - 2.0 * threshold + 1.0) / (1.0 - threshold)
    };
    let next = (stride as f64 * ratio).round() as i64;
    (next.max(config.min_stride as i64) as usize).min(config.max_stride)
}

/// A key-frame scheduling policy. [`StridePolicy::Adaptive`] is the paper's
/// Algorithm 2; the others are the ablation baselines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StridePolicy {
    /// Algorithm 2: metric-proportional scaling, clamped.
    Adaptive,
    /// Always use the same stride (Zhu et al., "deep feature flow").
    Fixed {
        /// The constant stride in frames.
        stride: usize,
    },
    /// Double the stride when the metric beats the threshold, reset to the
    /// minimum otherwise (Mullapudi et al.'s exponential back-off).
    ExponentialBackoff,
}

impl StridePolicy {
    /// Next stride under this policy.
    pub fn next(&self, config: &ShadowTutorConfig, stride: usize, metric: f64) -> usize {
        match self {
            StridePolicy::Adaptive => next_stride(config, stride, metric),
            StridePolicy::Fixed { stride } => (*stride).clamp(config.min_stride, config.max_stride),
            StridePolicy::ExponentialBackoff => {
                if metric >= config.threshold {
                    (stride * 2).clamp(config.min_stride, config.max_stride)
                } else {
                    config.min_stride
                }
            }
        }
    }

    /// Short label used in ablation output.
    pub fn label(&self) -> String {
        match self {
            StridePolicy::Adaptive => "adaptive".to_string(),
            StridePolicy::Fixed { stride } => format!("fixed-{stride}"),
            StridePolicy::ExponentialBackoff => "exp-backoff".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ShadowTutorConfig {
        ShadowTutorConfig::paper()
    }

    #[test]
    fn metric_at_threshold_keeps_stride() {
        let c = cfg();
        // ratio = 1 exactly at the threshold.
        assert_eq!(next_stride(&c, 16, 0.8), 16);
        assert_eq!(next_stride(&c, 32, 0.8), 32);
    }

    #[test]
    fn perfect_metric_doubles_stride() {
        let c = cfg();
        assert_eq!(next_stride(&c, 16, 1.0), 32);
        // ...but never beyond MAX_STRIDE.
        assert_eq!(next_stride(&c, 48, 1.0), 64);
        assert_eq!(next_stride(&c, 64, 1.0), 64);
    }

    #[test]
    fn zero_metric_collapses_to_min_stride() {
        let c = cfg();
        assert_eq!(next_stride(&c, 64, 0.0), c.min_stride);
        assert_eq!(next_stride(&c, 8, 0.0), c.min_stride);
    }

    #[test]
    fn below_threshold_shrinks_proportionally() {
        let c = cfg();
        // metric = 0.4 -> ratio 0.5 -> stride 32 -> 16.
        assert_eq!(next_stride(&c, 32, 0.4), 16);
        // metric = 0.6 -> ratio 0.75 -> stride 32 -> 24.
        assert_eq!(next_stride(&c, 32, 0.6), 24);
    }

    #[test]
    fn above_threshold_grows_linearly() {
        let c = cfg();
        // metric = 0.9 -> ratio = (0.9 - 1.6 + 1)/0.2 = 1.5.
        assert_eq!(next_stride(&c, 16, 0.9), 24);
    }

    #[test]
    fn always_within_bounds_property() {
        let c = cfg();
        for stride in [1usize, 8, 13, 32, 64, 500] {
            for m in 0..=20 {
                let metric = m as f64 / 20.0;
                let next = next_stride(&c, stride, metric);
                assert!(next >= c.min_stride && next <= c.max_stride);
            }
        }
    }

    #[test]
    fn metric_out_of_range_is_clamped() {
        let c = cfg();
        assert_eq!(next_stride(&c, 16, 1.5), next_stride(&c, 16, 1.0));
        assert_eq!(next_stride(&c, 16, -0.2), c.min_stride);
    }

    #[test]
    fn fixed_policy_ignores_metric() {
        let c = cfg();
        let p = StridePolicy::Fixed { stride: 20 };
        assert_eq!(p.next(&c, 8, 0.1), 20);
        assert_eq!(p.next(&c, 64, 0.99), 20);
        // Fixed strides outside the clamp range are clamped.
        assert_eq!(StridePolicy::Fixed { stride: 1000 }.next(&c, 8, 0.5), 64);
    }

    #[test]
    fn backoff_policy_doubles_or_resets() {
        let c = cfg();
        let p = StridePolicy::ExponentialBackoff;
        assert_eq!(p.next(&c, 16, 0.9), 32);
        assert_eq!(p.next(&c, 16, 0.5), 8);
        assert_eq!(p.next(&c, 64, 0.9), 64);
    }

    #[test]
    fn labels() {
        assert_eq!(StridePolicy::Adaptive.label(), "adaptive");
        assert_eq!(StridePolicy::Fixed { stride: 8 }.label(), "fixed-8");
        assert_eq!(StridePolicy::ExponentialBackoff.label(), "exp-backoff");
    }
}
