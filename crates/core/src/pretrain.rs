//! "Public education": offline pre-training of the student.
//!
//! Section 4.1.3 of the paper requires the student to be pre-trained on data
//! relevant to the task (the paper uses 30 epochs of COCO) before deployment
//! — a one-time cost paid when the system is first organised. Here the
//! student is pre-trained on frames drawn from a *mixture* of generated
//! categories with ground-truth supervision, which plays the same role: the
//! student acquires generic features, but lacks the capacity to excel on any
//! specific stream without shadow education (as Table 6's "Wild" column
//! shows).

use crate::Result;
use st_nn::loss::{weighted_cross_entropy, WeightMap};
use st_nn::metrics::{miou, MiouAccumulator};
use st_nn::optim::Adam;
use st_nn::student::{FreezePoint, StudentConfig, StudentNet};
use st_video::dataset::{category_videos, Resolution};
use st_video::VideoGenerator;

/// Configuration of the pre-training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainConfig {
    /// Resolution to pre-train at.
    pub resolution: Resolution,
    /// Number of optimization steps (one frame per step, cycling categories).
    pub steps: usize,
    /// Frames to skip between sampled training frames within each stream
    /// (larger values increase scene diversity per step).
    pub frame_skip: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Seed for the video mixture.
    pub seed: u64,
}

impl PretrainConfig {
    /// A quick pre-training pass suitable for CPU-scale experiments.
    pub fn quick() -> Self {
        PretrainConfig {
            resolution: Resolution::Tiny,
            steps: 60,
            frame_skip: 5,
            learning_rate: 0.02,
            seed: 2000,
        }
    }

    /// A longer pre-training pass for the benchmark harness.
    pub fn standard() -> Self {
        PretrainConfig {
            resolution: Resolution::Small,
            steps: 150,
            frame_skip: 7,
            learning_rate: 0.02,
            seed: 2000,
        }
    }
}

/// Statistics of a pre-training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PretrainReport {
    /// Number of optimization steps taken.
    pub steps: usize,
    /// Mean training loss over the final quarter of the run.
    pub final_loss: f32,
    /// Mean IoU over the final quarter of the run (against ground truth).
    pub final_miou: f64,
}

/// Pre-train a fresh student ("public education") and return it with the
/// report. The student is trained with *all* parameters trainable; the caller
/// sets the deployment freeze point afterwards.
pub fn pretrain_student(
    config: StudentConfig,
    pretrain: &PretrainConfig,
) -> Result<(StudentNet, PretrainReport)> {
    let mut student = StudentNet::new(config)?;
    student.freeze = FreezePoint::None;
    let mut optimizer = Adam::new(pretrain.learning_rate);

    // A mixture of all seven categories, cycled round-robin.
    let descriptors = category_videos(pretrain.resolution, pretrain.seed);
    let mut generators: Vec<VideoGenerator> = descriptors
        .iter()
        .map(|d| VideoGenerator::new(d.config).expect("valid descriptor config"))
        .collect();

    let tail_start = pretrain.steps - pretrain.steps / 4;
    let mut tail_loss = 0.0f32;
    let mut tail_count = 0usize;
    let mut tail_miou = MiouAccumulator::new();
    let generator_count = generators.len();
    for step in 0..pretrain.steps {
        let gen = &mut generators[step % generator_count];
        // Skip frames to decorrelate successive samples from the same stream.
        for _ in 0..pretrain.frame_skip {
            let _ = gen.next_frame();
        }
        let frame = gen.next_frame();
        let weights = WeightMap::from_labels(&frame.ground_truth, frame.height, frame.width, 0, 1)?;
        let logits = student.forward_train(&frame.image)?;
        let (loss, grad) = weighted_cross_entropy(&logits, &frame.ground_truth, &weights)?;
        student.backward(&grad)?;
        optimizer.step(&mut student);
        if step >= tail_start {
            tail_loss += loss;
            tail_count += 1;
            let pred = student.predict(&frame.image)?;
            tail_miou.push(miou(
                &pred,
                &frame.ground_truth,
                student.config.num_classes,
            )?);
        }
    }

    let report = PretrainReport {
        steps: pretrain.steps,
        final_loss: if tail_count > 0 {
            tail_loss / tail_count as f32
        } else {
            0.0
        },
        final_miou: tail_miou.average(),
    };
    Ok((student, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretraining_produces_a_finite_student() {
        let cfg = PretrainConfig {
            steps: 8,
            frame_skip: 1,
            ..PretrainConfig::quick()
        };
        let (mut student, report) = pretrain_student(StudentConfig::tiny(), &cfg).unwrap();
        assert_eq!(report.steps, 8);
        assert!(report.final_loss.is_finite());
        assert!(report.final_miou >= 0.0 && report.final_miou <= 1.0);
        // All weights finite after training.
        let mut finite = true;
        let mut v = |p: &mut st_nn::Param, _: bool| finite &= p.value.all_finite();
        student.visit_params(&mut v);
        assert!(finite);
    }

    #[test]
    fn longer_pretraining_improves_generic_miou() {
        let short = PretrainConfig {
            steps: 4,
            frame_skip: 0,
            ..PretrainConfig::quick()
        };
        let long = PretrainConfig {
            steps: 40,
            frame_skip: 0,
            ..PretrainConfig::quick()
        };
        let (_, short_report) = pretrain_student(StudentConfig::tiny(), &short).unwrap();
        let (_, long_report) = pretrain_student(StudentConfig::tiny(), &long).unwrap();
        assert!(
            long_report.final_miou >= short_report.final_miou * 0.8,
            "longer pre-training should not be dramatically worse: {} vs {}",
            long_report.final_miou,
            short_report.final_miou
        );
    }

    #[test]
    fn presets_are_consistent() {
        let q = PretrainConfig::quick();
        let s = PretrainConfig::standard();
        assert!(s.steps > q.steps);
        assert!(q.learning_rate > 0.0);
    }
}
