//! Comparison baselines: naive offloading and the "wild" student.
//!
//! The paper compares ShadowTutor mainly against *naive offloading* — every
//! frame is sent to the server, the teacher runs on it, and the prediction is
//! sent back — and motivates shadow education by showing how badly the
//! pre-trained student does *without* any key-frame updates ("Wild" in
//! Table 6). Both baselines are expressed here as [`ExperimentRecord`]s so
//! the report/bench machinery treats them uniformly.

use crate::config::ShadowTutorConfig;
use crate::report::{ExperimentRecord, FrameRecord};
use crate::Result;
use st_net::{LinkModel, NaiveTraffic};
use st_nn::metrics::miou;
use st_nn::student::StudentNet;
use st_sim::{EventKind, LatencyProfile, VirtualClock};
use st_teacher::Teacher;
use st_video::Frame;

/// Run the naive-offloading baseline: every frame is uploaded, the teacher
/// labels it, and the label is downloaded. Accuracy against the teacher is
/// 100% by construction (the teacher's own output comes back).
pub fn run_naive<T, V>(
    label: &str,
    video: &mut V,
    frames: usize,
    mut teacher: T,
    latency: &LatencyProfile,
    link: &LinkModel,
) -> Result<ExperimentRecord>
where
    T: Teacher,
    V: Iterator<Item = Frame>,
{
    let mut clock = VirtualClock::new();
    let mut frame_records = Vec::with_capacity(frames);
    let mut uplink_bytes = 0usize;
    let mut downlink_bytes = 0usize;
    let mut traffic = NaiveTraffic::for_frame(1, 1);
    for _ in 0..frames {
        let Some(frame) = video.next() else { break };
        traffic = NaiveTraffic::for_frame(frame.width, frame.height);
        // Every frame: upload, teacher inference, download. No overlap is
        // possible because the client cannot show a result before it returns.
        clock.advance(
            link.uplink_time(traffic.to_server_bytes),
            EventKind::NetworkTransfer,
        );
        let _label = teacher.pseudo_label(&frame)?;
        clock.advance(latency.teacher_inference, EventKind::TeacherInference);
        clock.advance(
            link.downlink_time(traffic.to_client_bytes),
            EventKind::NetworkTransfer,
        );
        uplink_bytes += traffic.to_server_bytes;
        downlink_bytes += traffic.to_client_bytes;
        frame_records.push(FrameRecord {
            index: frame.index,
            is_key_frame: true,
            miou: 1.0,
            waited: false,
        });
    }
    Ok(ExperimentRecord {
        label: label.to_string(),
        variant: "naive".to_string(),
        frames: frame_records.len(),
        frame_records,
        key_frames: Vec::new(),
        frame_bytes: traffic.to_server_bytes,
        update_bytes: traffic.to_client_bytes,
        uplink_bytes,
        downlink_bytes,
        total_time: clock.now(),
        config: ShadowTutorConfig::paper(),
        latency: *latency,
    })
}

/// Run the "wild" baseline: the pre-trained student serves every frame with
/// no server contact at all. This isolates how much of ShadowTutor's accuracy
/// comes from shadow education rather than from pre-training.
pub fn run_wild<T, V>(
    label: &str,
    video: &mut V,
    frames: usize,
    student: &StudentNet,
    mut teacher: T,
    latency: &LatencyProfile,
) -> Result<ExperimentRecord>
where
    T: Teacher,
    V: Iterator<Item = Frame>,
{
    let mut clock = VirtualClock::new();
    let mut frame_records = Vec::with_capacity(frames);
    for _ in 0..frames {
        let Some(frame) = video.next() else { break };
        let prediction = student.predict(&frame.image)?;
        clock.advance(latency.student_inference, EventKind::StudentInference);
        let reference = teacher.pseudo_label(&frame)?;
        let value = miou(&prediction, &reference, student.config.num_classes)?.value;
        frame_records.push(FrameRecord {
            index: frame.index,
            is_key_frame: false,
            miou: value,
            waited: false,
        });
    }
    Ok(ExperimentRecord {
        label: label.to_string(),
        variant: "wild".to_string(),
        frames: frame_records.len(),
        frame_records,
        key_frames: Vec::new(),
        frame_bytes: 0,
        update_bytes: 0,
        uplink_bytes: 0,
        downlink_bytes: 0,
        total_time: clock.now(),
        config: ShadowTutorConfig::paper(),
        latency: *latency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_nn::student::StudentConfig;
    use st_teacher::OracleTeacher;
    use st_video::{CameraMotion, SceneKind, VideoCategory, VideoConfig, VideoGenerator};

    fn video(seed: u64) -> VideoGenerator {
        let cat = VideoCategory {
            camera: CameraMotion::Fixed,
            scene: SceneKind::Animals,
        };
        VideoGenerator::new(VideoConfig::for_category(cat, 32, 24, seed)).unwrap()
    }

    #[test]
    fn naive_baseline_is_perfectly_accurate_but_heavy() {
        let mut gen = video(1);
        let record = run_naive(
            "naive",
            &mut gen,
            20,
            OracleTeacher::perfect(1),
            &LatencyProfile::paper(),
            &LinkModel::paper_default(),
        )
        .unwrap();
        assert_eq!(record.frames, 20);
        assert!((record.mean_miou_percent() - 100.0).abs() < 1e-9);
        // Every frame crossed the network.
        assert_eq!(record.uplink_bytes, 20 * record.frame_bytes);
        assert!(record.fps() > 0.0);
        assert_eq!(record.variant, "naive");
    }

    #[test]
    fn wild_baseline_transfers_nothing_and_is_inaccurate() {
        let mut gen = video(2);
        let student = StudentNet::new(StudentConfig::tiny()).unwrap();
        let record = run_wild(
            "wild",
            &mut gen,
            20,
            &student,
            OracleTeacher::perfect(2),
            &LatencyProfile::paper(),
        )
        .unwrap();
        assert_eq!(record.uplink_bytes + record.downlink_bytes, 0);
        assert_eq!(record.key_frame_count(), 0);
        // A random-weight student must be far from the teacher.
        assert!(record.mean_miou_percent() < 60.0);
        assert_eq!(record.variant, "wild");
    }

    #[test]
    fn naive_throughput_matches_latency_model() {
        // At the paper's scale: ~0.36 s network + 0.044 s teacher per 720p
        // frame gives ~2.1-2.5 FPS. At the tiny test resolution the network
        // part is negligible so FPS ≈ 1 / t_ti.
        let mut gen = video(3);
        let record = run_naive(
            "naive",
            &mut gen,
            10,
            OracleTeacher::perfect(3),
            &LatencyProfile::paper(),
            &LinkModel::paper_default(),
        )
        .unwrap();
        let per_frame = record.total_time / record.frames as f64;
        assert!(
            per_frame > 0.044 && per_frame < 0.08,
            "per frame {per_frame}"
        );
    }

    #[test]
    fn naive_slows_down_when_bandwidth_shrinks() {
        // Figure 4's naive curve: with no mechanism to hide network latency,
        // the naive baseline's throughput falls as soon as the link narrows.
        let mut gen_a = video(4);
        let mut gen_b = video(4);
        let fast = run_naive(
            "n80",
            &mut gen_a,
            10,
            OracleTeacher::perfect(4),
            &LatencyProfile::paper(),
            &LinkModel::symmetric_mbps(80.0),
        )
        .unwrap();
        let slow = run_naive(
            "n1",
            &mut gen_b,
            10,
            OracleTeacher::perfect(4),
            &LatencyProfile::paper(),
            &LinkModel::symmetric_mbps(1.0),
        )
        .unwrap();
        assert!(
            slow.fps() < fast.fps(),
            "slow {} vs fast {}",
            slow.fps(),
            fast.fps()
        );
    }
}
